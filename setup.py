"""Legacy setup shim so editable installs work without the `wheel`
package (this environment is fully offline)."""

from setuptools import setup

setup()
