"""Figure 8: BFS running time vs m for different average out degrees.

Paper: top-5 full paths, n=1000, g=2, m from 5 to 25, d in {3, 5, 7};
running times positively correlated with d (more edges).

Scaled to n=100.  Asserted shapes: cost grows with m at every d, and
the d=7 series dominates d=3 at the largest m.
"""

from __future__ import annotations

import pytest

from repro.core import bfs_stable_clusters
from repro.datagen import synthetic_cluster_graph

MS = [5, 10, 15, 20, 25]
DEGREES = [3, 5, 7]
N, G, K = 100, 2, 5

_TIMES = {}


@pytest.mark.parametrize("d", DEGREES)
@pytest.mark.parametrize("m", MS)
def test_fig8_bfs_degree(benchmark, series, m, d):
    graph = synthetic_cluster_graph(m=m, n=N, d=d, g=G, seed=808)
    paths = benchmark.pedantic(
        lambda: bfs_stable_clusters(graph, l=m - 1, k=K),
        rounds=2, iterations=1)
    assert len(paths) == K
    _TIMES[(d, m)] = benchmark.stats["mean"]
    series("Figure 8 (BFS vs m per degree, seconds)",
           f"d={d} m={m} ({graph.num_edges} edges)",
           benchmark.stats["mean"])


def test_fig8_shapes(shape):
    if len(_TIMES) < len(MS) * len(DEGREES):
        pytest.skip("run the full module to check shapes")

    def check():
        for d in DEGREES:
            assert _TIMES[(d, MS[-1])] > _TIMES[(d, MS[0])]
        assert _TIMES[(7, MS[-1])] > _TIMES[(3, MS[-1])]

    shape(check)
