"""Corpus-adapter ingest: docs/s and constant-memory verification.

The DBLP adapter's contract (docs/corpora.md) is that it streams a
publication file of any size in constant memory —
``xml.etree.iterparse`` with consumed records cleared, entity
recovery in the byte domain.  This harness generates a synthetic
DBLP-style XML file (100k records at full scale), measures each
adapter's ingest throughput on the same record set (XML vs the
JSONL/CSV renditions), and asserts the DBLP pass's tracemalloc peak
stays under :data:`PEAK_ALLOC_BOUND` however many records stream by
(the constant-memory acceptance bound; ``ru_maxrss`` is reported
alongside).  Locally the bound is enforced; under CI (``CI`` env
var) a miss is a warning, matching the other harnesses.  Runs under
pytest and standalone::

    PYTHONPATH=src python benchmarks/bench_corpus_ingest.py --smoke
    PYTHONPATH=src python benchmarks/bench_corpus_ingest.py \\
        --json BENCH_corpus.json
"""

from __future__ import annotations

import csv
import json
import os
import random
import resource
import tempfile
import time
import tracemalloc
from typing import Callable, List, Optional

from repro.corpus import CSVAdapter, DBLPAdapter, JSONLAdapter

RECORDS = 100_000
SMOKE_SCALE = dict(records=6_000)

# The constant-memory acceptance bound for one full DBLP ingest pass:
# peak tracemalloc bytes, independent of file size (the iterparse
# tree is cleared per record).  Generously above the measured ~2MiB
# peak so allocator noise never flakes the build.
PEAK_ALLOC_BOUND = 24 * 1024 * 1024

YEARS = list(range(1970, 2010))
TOPICS = ["spatial join", "view maintenance", "xml stream",
          "query optimization", "transaction recovery",
          "index compression", "graph reachability",
          "skyline computation"]
FILLERS = ["parallel", "adaptive", "distributed", "incremental",
           "approximate", "scalable", "secure", "streaming",
           "versioned", "partitioned"]


def generate_dblp_xml(path: str, records: int,
                      seed: int = 2007) -> None:
    """A synthetic DBLP-style publication file of *records* entries."""
    rng = random.Random(seed)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('<?xml version="1.0" encoding="UTF-8"?>\n<dblp>\n')
        for n in range(records):
            year = rng.choice(YEARS)
            title = (f"{rng.choice(FILLERS).title()} "
                     f"{rng.choice(TOPICS)} techniques "
                     f"{rng.choice(FILLERS)} {n}")
            fh.write(f'<article key="journals/synth/r{n}" '
                     f'mdate="{year}-01-01">'
                     f"<author>Author {n % 997}</author>"
                     f"<title>{title}</title>"
                     f"<year>{year}</year>"
                     f"<journal>Synth</journal></article>\n")
        fh.write("</dblp>\n")


def _renditions(xml_path: str, directory: str) -> dict:
    """JSONL/CSV files holding the same records as *xml_path*."""
    jsonl_path = os.path.join(directory, "corpus.jsonl")
    csv_path = os.path.join(directory, "corpus.csv")
    with open(jsonl_path, "w", encoding="utf-8") as jf, \
            open(csv_path, "w", encoding="utf-8", newline="") as cf:
        writer = csv.writer(cf)
        writer.writerow(["id", "year", "text"])
        for year, doc in DBLPAdapter(xml_path):
            json.dump({"id": doc.doc_id, "year": year,
                       "text": doc.text}, jf)
            jf.write("\n")
            writer.writerow([doc.doc_id, year, doc.text])
    return {"jsonl": jsonl_path, "csv": csv_path}


def _drain(adapter) -> int:
    """Stream the adapter without retaining documents."""
    count = 0
    for _ in adapter:
        count += 1
    return count


def bench_throughput(record, xml_path: str, files: dict,
                     records: int) -> dict:
    """Ingest docs/s for each adapter over the same record set."""
    experiment = "Corpus ingest: throughput"
    from repro.corpus import IntervalBucketing
    year = IntervalBucketing(mode="year")
    adapters = {
        "dblp xml": lambda: DBLPAdapter(xml_path),
        "jsonl": lambda: JSONLAdapter(files["jsonl"], bucketing=year,
                                      time_field="year"),
        "csv": lambda: CSVAdapter(files["csv"], bucketing=year,
                                  time_field="year"),
    }
    rates = {}
    for label, build in adapters.items():
        adapter = build()
        started = time.perf_counter()
        count = _drain(adapter)
        elapsed = time.perf_counter() - started
        assert count == records, (label, count)
        rate = count / elapsed
        rates[f"{label.split()[0]}_docs_per_s"] = round(rate)
        record(experiment, label,
               f"{count} docs in {elapsed:.2f}s ({rate:,.0f} docs/s)")
    return rates


def bench_memory(record, xml_path: str, records: int) -> dict:
    """Peak allocation of one full DBLP pass (the constant-memory
    claim) plus the process high-water mark for context."""
    experiment = "Corpus ingest: memory"
    tracemalloc.start()
    tracemalloc.reset_peak()
    count = _drain(DBLPAdapter(xml_path))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert count == records
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    record(experiment, "tracemalloc peak",
           f"{peak / (1 << 20):.2f}MiB over {records} records "
           f"(bound {PEAK_ALLOC_BOUND / (1 << 20):.0f}MiB)")
    record(experiment, "process ru_maxrss", f"{rss_kib / 1024:.0f}MiB")
    return {"peak_alloc_bytes": peak,
            "peak_alloc_bound_bytes": PEAK_ALLOC_BOUND,
            "ru_maxrss_kib": rss_kib}


def run_ingest_bench(record: Callable[[str, str, object], None],
                     records: int = RECORDS) -> dict:
    """Generate the corpus, run both experiments, return figures."""
    with tempfile.TemporaryDirectory(prefix="repro-corpus-") as tmp:
        xml_path = os.path.join(tmp, "synth_dblp.xml")
        generate_dblp_xml(xml_path, records)
        record("Corpus ingest: workload", "synthetic dblp xml",
               f"{records} records, "
               f"{os.path.getsize(xml_path) / (1 << 20):.1f}MiB")
        files = _renditions(xml_path, tmp)
        results = {"records": records}
        results.update(bench_throughput(record, xml_path, files,
                                        records))
        results.update(bench_memory(record, xml_path, records))
    return results


def _assert_outcomes(results: dict) -> str:
    """Enforce the constant-memory bound (warning-only under CI)."""
    peak = results["peak_alloc_bytes"]
    if peak > PEAK_ALLOC_BOUND and os.environ.get("CI"):
        print(f"WARNING: ingest peak {peak / (1 << 20):.1f}MiB above "
              f"the {PEAK_ALLOC_BOUND / (1 << 20):.0f}MiB "
              f"constant-memory bound — tolerated under CI")
        return "tolerated"
    assert peak <= PEAK_ALLOC_BOUND, (
        f"DBLP ingest peak allocation {peak / (1 << 20):.1f}MiB "
        f"exceeds the {PEAK_ALLOC_BOUND / (1 << 20):.0f}MiB "
        f"constant-memory bound")
    return "held"


def test_corpus_ingest_benchmark(series) -> None:
    """Benchmark entry point under pytest (smoke scale: the full
    100k-record run belongs to `make bench-json`)."""
    results = run_ingest_bench(series, **SMOKE_SCALE)
    outcome = _assert_outcomes(results)
    series("Corpus ingest: memory", "constant-memory bound", outcome)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone smoke/JSON mode for CI (no pytest required)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small shapes for CI smoke runs")
    parser.add_argument("--json", metavar="PATH",
                        help="write the perf-trajectory figures as "
                             "JSON (the BENCH_corpus.json artifact)")
    args = parser.parse_args(argv)
    rows: List[str] = []

    def record(experiment: str, label: str, value) -> None:
        rows.append(f"{experiment}: {label:<22} {value}")

    scale = dict(SMOKE_SCALE) if args.smoke else {}
    results = run_ingest_bench(record, **scale)
    for row in rows:
        print(row)
    if args.json:
        from _json import write_bench_json
        write_bench_json(args.json, "corpus", results)
        print(f"wrote {args.json}")
    outcome = _assert_outcomes(results)
    print(f"corpus ingest benchmark: {results['records']} records, "
          f"dblp {results['dblp_docs_per_s']:,} docs/s, "
          f"peak {results['peak_alloc_bytes'] / (1 << 20):.1f}MiB "
          f"({outcome})")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
