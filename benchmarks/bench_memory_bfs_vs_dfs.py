"""Section 5.2's memory comparison: BFS vs DFS working set.

Paper: "for finding top-3 paths of length 6 on a dataset with n=2000,
m=9 and g=0, DFS required less than 2MB RAM as compared to 35MB for
BFS" — BFS keeps per-node heaps for a window of intervals; DFS keeps
only the stack (<= m frames) plus one node annotation per frame, with
everything else on disk.

Scaled to n=200.  Both algorithms' peak in-memory state is measured by
pickling it (a portable proxy for resident bytes); the asserted shape
is DFS state an order of magnitude below BFS state.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import bfs_stable_clusters, dfs_stable_clusters
from repro.core.bfs import BFSEngine
from repro.core.dfs import DFSEngine
from repro.datagen import synthetic_cluster_graph
from repro.storage import DiskDict

M, N, D, G, L, K = 9, 200, 4, 0, 6, 3


@pytest.fixture(scope="module")
def graph():
    return synthetic_cluster_graph(m=M, n=N, d=D, g=G, seed=59)


def _bfs_peak_state_bytes(graph) -> int:
    engine = BFSEngine(l=L, k=K, gap=graph.gap)
    peak = 0
    for i in range(graph.num_intervals):
        engine.process_interval(
            i, [(node, graph.parents(node))
                for node in graph.nodes_at(i)])
        window_bytes = len(pickle.dumps(engine._window))
        peak = max(peak, window_bytes)
    return peak


def _dfs_peak_state_bytes(graph, tmp_path) -> int:
    peak = 0
    calls = 0
    original_consider = DFSEngine._consider_child

    def tracking_consider(self, stack, frame, child, weight):
        nonlocal peak, calls
        calls += 1
        # Pickling the whole stack is costly; sampling every 50th
        # consideration tracks the peak closely (state changes slowly).
        if calls % 50 == 0 or len(stack) >= graph.num_intervals:
            stack_bytes = len(pickle.dumps(
                [(f.node, f.annotation) for f in stack]))
            peak = max(peak, stack_bytes)
        return original_consider(self, stack, frame, child, weight)

    DFSEngine._consider_child = tracking_consider
    try:
        with DiskDict(str(tmp_path / "dfs-nodes.bin")) as store:
            # Unpruned: deterministic single exploration per node, so
            # the peak measures the algorithm's structural state (the
            # memory claim is independent of the pruning heuristic).
            engine = DFSEngine(graph, l=L, k=K, store=store,
                               prune=False)
            engine.run()
    finally:
        DFSEngine._consider_child = original_consider
    return peak


def test_memory_bfs_vs_dfs(benchmark, series, graph, tmp_path):
    bfs_bytes = _bfs_peak_state_bytes(graph)
    dfs_bytes = benchmark.pedantic(
        lambda: _dfs_peak_state_bytes(graph, tmp_path),
        rounds=1, iterations=1)
    ratio = bfs_bytes / max(dfs_bytes, 1)
    series("Memory (Section 5.2 note)",
           f"BFS window peak = {bfs_bytes / 1e6:.2f} MB; "
           f"DFS stack peak = {dfs_bytes / 1e3:.1f} KB; "
           f"ratio = {ratio:.0f}x", "")
    benchmark.extra_info["bfs_bytes"] = bfs_bytes
    benchmark.extra_info["dfs_bytes"] = dfs_bytes
    # Paper shape: DFS memory is a small fraction of BFS memory
    # (theirs: 2MB vs 35MB, ~17x).
    assert dfs_bytes * 5 < bfs_bytes


def test_bfs_results_unaffected_by_window_eviction(graph, shape):
    """Sanity: the sliding window (the thing that costs memory) does
    not change answers versus the DFS with everything on disk."""

    def check():
        paths = bfs_stable_clusters(graph, l=L, k=K)
        assert len(paths) == K
        dfs_paths = dfs_stable_clusters(graph, l=L, k=K)
        assert [p.nodes for p in dfs_paths] == [p.nodes for p in paths]

    shape(check)
