"""Figure 14: BFS seeking normalized stable clusters.

Paper: top-5 normalized stable clusters of length >= lmin, n=400, d=3,
g=0, m varying; "the algorithm ... needs to maintain paths of all
lengths (those which survive pruning).  This leads to an increase in
running times as m increases.  Running times are positively correlated
with lmin as larger values of lmin result in more paths being
maintained with each node."

Scaled to n=50.  Asserted shapes: cost grows with m at fixed lmin and
with lmin at fixed m; Theorem-1 reductions fire.
"""

from __future__ import annotations

import pytest

from repro.core import NormalizedStats, normalized_stable_clusters
from repro.datagen import synthetic_cluster_graph

N, D, G, K = 50, 3, 0, 5
M_SWEEP = [4, 5, 6, 7]     # at lmin=2
LMIN_SWEEP = [2, 3, 4]     # at m=6

_TIMES = {}


@pytest.mark.parametrize("m", M_SWEEP)
def test_fig14_vs_m(benchmark, series, m):
    graph = synthetic_cluster_graph(m=m, n=N, d=D, g=G, seed=1414)
    stats = NormalizedStats()
    paths = benchmark.pedantic(
        lambda: normalized_stable_clusters(graph, lmin=2, k=K,
                                           stats=stats),
        rounds=1, iterations=1)
    assert len(paths) == K
    _TIMES[("m", m)] = benchmark.stats["mean"]
    series("Figure 14 (normalized stable clusters, seconds)",
           f"lmin=2 m={m} ({stats.best_paths_held} best paths held, "
           f"{stats.theorem1_reductions} reductions)",
           benchmark.stats["mean"])


@pytest.mark.parametrize("lmin", LMIN_SWEEP)
def test_fig14_vs_lmin(benchmark, series, lmin):
    graph = synthetic_cluster_graph(m=6, n=N, d=D, g=G, seed=1414)
    stats = NormalizedStats()
    paths = benchmark.pedantic(
        lambda: normalized_stable_clusters(graph, lmin=lmin, k=K,
                                           stats=stats),
        rounds=1, iterations=1)
    assert len(paths) == K
    _TIMES[("lmin", lmin)] = benchmark.stats["mean"]
    series("Figure 14 (normalized stable clusters, seconds)",
           f"m=6 lmin={lmin} ({stats.small_paths_held} small paths "
           f"held)",
           benchmark.stats["mean"])


def test_fig14_shapes(shape):
    if len(_TIMES) < len(M_SWEEP) + len(LMIN_SWEEP):
        pytest.skip("run the full module to check shapes")

    def check():
        assert _TIMES[("m", M_SWEEP[-1])] > _TIMES[("m", M_SWEEP[0])]
        assert _TIMES[("lmin", LMIN_SWEEP[-1])] > \
            _TIMES[("lmin", LMIN_SWEEP[0])]

    shape(check)
