"""Figure 10: BFS seeking top-5 subpaths of length l.

Paper: m=15, d=5, g=2, n from 500 to 2500, l varying; "running times
increase as l increases due to the larger number of heaps maintained
with each node", and stay linear in n.

Scaled to n in {50, 100, 200}.  Asserted shapes: cost grows with l at
fixed n, and grows with n at fixed l.
"""

from __future__ import annotations

import pytest

from repro.core import BFSStats, bfs_stable_clusters
from repro.datagen import synthetic_cluster_graph

NS = [50, 100, 200]
LS = [3, 5, 7]
M, D, G, K = 15, 5, 2, 5

_TIMES = {}


@pytest.mark.parametrize("l", LS)
@pytest.mark.parametrize("n", NS)
def test_fig10_bfs_subpaths(benchmark, series, n, l):
    graph = synthetic_cluster_graph(m=M, n=n, d=D, g=G, seed=1010)
    stats = BFSStats()
    paths = benchmark.pedantic(
        lambda: bfs_stable_clusters(graph, l=l, k=K, stats=stats),
        rounds=1, iterations=1)
    assert len(paths) == K
    _TIMES[(n, l)] = benchmark.stats["mean"]
    series("Figure 10 (BFS subpaths, seconds)",
           f"n={n} l={l} ({stats.paths_generated} paths generated)",
           benchmark.stats["mean"])


def test_fig10_shapes(shape):
    if len(_TIMES) < len(NS) * len(LS):
        pytest.skip("run the full module to check shapes")

    def check():
        for n in NS:
            assert _TIMES[(n, LS[-1])] > _TIMES[(n, LS[0])], \
                f"cost should grow with l at n={n}"
        for l in LS:
            assert _TIMES[(NS[-1], l)] > _TIMES[(NS[0], l)], \
                f"cost should grow with n at l={l}"

    shape(check)
