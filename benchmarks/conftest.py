"""Shared fixtures and reporting helpers for the paper benchmarks.

Every benchmark regenerates one table or figure of the paper's
Section 5, scaled down from the paper's 2007-server workloads so the
whole suite runs in minutes of pure Python.  Shapes — who wins, how
costs scale with m, n, d, g, l — are asserted; absolute times are
reported for EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import pytest

from repro.engine import solve_report

# (experiment, row-label) -> value; printed at session end so every
# benchmark leaves a paper-style table in the terminal output.
_SERIES: Dict[str, List[Tuple[str, str]]] = defaultdict(list)


def record(experiment: str, label: str, value) -> None:
    """Record one row of an experiment's paper-style table."""
    if isinstance(value, float):
        value = f"{value:.4f}"
    _SERIES[experiment].append((label, str(value)))


@pytest.fixture
def series():
    """Fixture handing benchmarks the row recorder."""
    return record


@pytest.fixture
def engine_solve():
    """Route a benchmark's search through the unified engine layer.

    ``engine_solve(name, graph, query, backend=..., stats=...)``
    returns the :class:`repro.engine.SolveReport` (paths + execution
    plan + unified SolverStats), so benchmarks time solvers exactly
    the way the pipeline and CLI invoke them."""

    def run(name, graph, query, **kwargs):
        return solve_report(graph, query, solver=name, **kwargs)

    return run


@pytest.fixture
def shape(benchmark):
    """Run a shape-assertion callable so it executes (and fails
    loudly) even under ``--benchmark-only``, which skips tests that
    never invoke the benchmark fixture."""

    def runner(check):
        return benchmark.pedantic(check, rounds=1, iterations=1)

    return runner


def pytest_terminal_summary(terminalreporter):
    if not _SERIES:
        return
    terminalreporter.section("paper-series output")
    for experiment in sorted(_SERIES):
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {experiment} ==")
        width = max(len(label) for label, _ in _SERIES[experiment])
        for label, value in _SERIES[experiment]:
            terminalreporter.write_line(f"  {label:<{width}}  {value}")
