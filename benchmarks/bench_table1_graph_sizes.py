"""Table 1: sizes of single-day keyword graphs.

Paper (BlogScope, Jan 6/7 2007, after stemming and stop-word removal):

    Date    File Size   # keywords   # edges
    Jan 6   3027 MB     2,889,449    138,340,942
    Jan 7   2968 MB     2,872,363    135,869,146

We regenerate the same table for two synthetic "days" (the crawl is
private; see docs/architecture.md).  The shape to reproduce: two
comparable days;
edges two orders of magnitude above keywords; the pair file dominating
the raw text size.
"""

from __future__ import annotations

import os

import pytest

from repro.cooccur import KeywordGraph, write_pair_file
from repro.datagen import (
    BlogosphereGenerator,
    Event,
    EventSchedule,
    ZipfVocabulary,
)

DAYS = {
    "Jan 6": 0,
    "Jan 7": 1,
}


def _corpus():
    schedule = (EventSchedule()
                .add(Event.persistent(
                    "somalia",
                    ["somalia", "mogadishu", "ethiopian", "islamist"],
                    start=0, duration=2, posts=60))
                .add(Event.burst(
                    "facup", ["liverpool", "arsenal", "anfield",
                              "rosicky"], 0, 60)))
    vocab = ZipfVocabulary(4000, seed=1601)
    generator = BlogosphereGenerator(vocab, schedule,
                                     background_posts=900, seed=1602)
    return generator.generate_corpus(2)


@pytest.fixture(scope="module")
def corpus():
    return _corpus()


@pytest.mark.parametrize("day", list(DAYS))
def test_table1_day(benchmark, corpus, series, tmp_path, day):
    interval = DAYS[day]
    keyword_sets = [doc.keywords() for doc in corpus.documents(interval)]

    graph = benchmark(lambda: KeywordGraph.from_keyword_sets(keyword_sets))

    pair_path = str(tmp_path / f"pairs-{interval}.tsv")
    write_pair_file(keyword_sets, pair_path)
    file_mb = os.path.getsize(pair_path) / (1024 * 1024)

    series("Table 1 (keyword-graph sizes)",
           f"{day}: file={file_mb:.1f}MB keywords={graph.num_keywords} "
           f"edges={graph.num_edges}", "")
    benchmark.extra_info["file_mb"] = round(file_mb, 2)
    benchmark.extra_info["keywords"] = graph.num_keywords
    benchmark.extra_info["edges"] = graph.num_edges

    # Shape assertions mirroring the paper's table: edges dominate
    # keywords by >= one order of magnitude; both days comparable.
    assert graph.num_edges > 10 * graph.num_keywords
    assert graph.num_keywords > 1000
