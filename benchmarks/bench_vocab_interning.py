"""Interned keyword ids vs raw strings: throughput and bytes.

The vocabulary refactor (see docs/architecture.md, "Vocabulary &
interning")
dictionary-encodes keywords into dense int ids before the Section-3
counting pipeline and keeps ids end-to-end through the affinity joins
and the streaming state store.  This benchmark measures what that
representation buys on a Figure-6-scale synthetic blogosphere:

* **throughput** — cluster generation (keyword sets -> clusters) and
  the window affinity join, string tokens vs interned ids, identical
  outputs asserted;
* **bytes** — the Section-3 pair file (string vs id records) and the
  streaming StateStore file (pickle vs the compact varint codec),
  whose combined reduction must reach ``BYTES_REDUCTION_FLOOR``.

The byte assertion is deterministic and always enforced locally; under
CI (``CI`` env var) a miss is reported as a warning instead, matching
``bench_parallel_scaling``.  Runs under pytest alongside the paper
benchmarks and standalone::

    PYTHONPATH=src python benchmarks/bench_vocab_interning.py --smoke
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Callable, List, Optional

from repro.cooccur.keyword_graph import KeywordGraph
from repro.cooccur.pairs import write_pair_file
from repro.datagen import (
    BlogosphereGenerator,
    Event,
    EventSchedule,
    ZipfVocabulary,
)
from repro.graph.clusters import KeywordCluster, extract_clusters
from repro.affinity.windowjoin import window_affinity_edges
from repro.storage.diskdict import DiskDict
from repro.streaming import StreamingDocumentPipeline
from repro.vocab import Vocabulary

INTERVALS = 5
BACKGROUND_POSTS = 420
VOCABULARY = 2800

SMOKE_SCALE = dict(intervals=3, background=300, vocabulary=1800)

# Combined (pair file + state store) size must shrink by at least
# this much — the acceptance floor of the interning refactor.
BYTES_REDUCTION_FLOOR = 0.30

# Wall-clock is noisy on shared runners; best-of-N per configuration.
TIMING_ATTEMPTS = 3


def interning_corpus(intervals: int = INTERVALS,
                     background: int = BACKGROUND_POSTS,
                     vocabulary: int = VOCABULARY):
    """Persistent events over Zipf chatter (the Figure-6 shape)."""
    schedule = (EventSchedule()
                .add(Event.persistent(
                    "somalia",
                    ["somalia", "mogadishu", "ethiopian", "islamist"],
                    0, intervals, 65))
                .add(Event.persistent(
                    "beckham",
                    ["beckham", "galaxy", "madrid", "soccer"],
                    0, intervals, 65)))
    vocab = ZipfVocabulary(vocabulary, seed=2007)
    generator = BlogosphereGenerator(vocab, schedule,
                                     background_posts=background,
                                     seed=2009)
    return generator.generate_corpus(intervals)


def _best_of(fn: Callable[[], object]):
    best = float("inf")
    result = None
    for _ in range(TIMING_ATTEMPTS):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _generation_stage(keyword_sets, interval, vocab=None):
    graph = KeywordGraph.from_keyword_sets(keyword_sets)
    return extract_clusters(graph.prune(), interval=interval,
                            vocab=vocab)


def _interned_corpus_clusters(corpus, string_sets):
    """The production interning path: interval-local vocabulary (ids
    in lexicographic order), then rebind into one corpus vocabulary."""
    corpus_vocab = Vocabulary()
    interval_clusters = []
    for i in corpus.interval_indices:
        local = Vocabulary()
        clusters = _generation_stage(local.intern_sets(string_sets[i]),
                                     i, vocab=local)
        interval_clusters.append(
            [cluster.rebind(corpus_vocab) for cluster in clusters])
    return interval_clusters


def bench_generation(record, corpus) -> float:
    """Cluster generation (keyword sets in, clusters out), string
    tokens vs interned ids; returns the speedup."""
    experiment = "Vocab interning: cluster generation"
    string_sets = {i: [doc.keywords() for doc in corpus.documents(i)]
                   for i in corpus.interval_indices}

    def run_strings():
        return [_generation_stage(string_sets[i], i)
                for i in corpus.interval_indices]

    def run_interned():
        return _interned_corpus_clusters(corpus, string_sets)

    string_seconds, string_clusters = _best_of(run_strings)
    interned_seconds, interned_clusters = _best_of(run_interned)
    # The guarantee the representation must keep: identical clusters.
    assert [[c.keywords for c in interval]
            for interval in interned_clusters] == \
        [[c.keywords for c in interval]
         for interval in string_clusters]
    speedup = string_seconds / interned_seconds
    record(experiment, "string tokens", f"{string_seconds:.3f}s")
    record(experiment, "interned ids",
           f"{interned_seconds:.3f}s (speedup {speedup:.2f}x, "
           f"best-of-{TIMING_ATTEMPTS})")
    return speedup


def bench_window_join(record, corpus) -> float:
    """The streaming window join over every consecutive interval pair,
    string-mode clusters vs interned; returns the speedup.

    Joins one cluster per *document* (hundreds of ~20-keyword sets per
    interval) rather than the few extracted event clusters, so the
    prefix-filter index and verification dominate the measurement the
    way they do on a dense serving workload.
    """
    experiment = "Vocab interning: window affinity join"
    string_clusters = []
    interned_clusters = []
    corpus_vocab = Vocabulary()
    for i in corpus.interval_indices:
        keyword_sets = [doc.keywords()
                        for doc in corpus.documents(i)]
        string_clusters.append(
            [KeywordCluster(keywords=kws, interval=i)
             for kws in keyword_sets])
        id_sets = corpus_vocab.intern_sets(keyword_sets)
        interned_clusters.append(
            [KeywordCluster(tokens=tuple(sorted(ids)), interval=i,
                            vocab=corpus_vocab)
             for ids in id_sets])

    def sweep(interval_clusters):
        edges = []
        for m in range(1, len(interval_clusters)):
            window = [(tuple((i, j) for j in
                             range(len(interval_clusters[i]))),
                       interval_clusters[i])
                      for i in range(max(0, m - 2), m)]
            edges.append(window_affinity_edges(
                window, interval_clusters[m], theta=0.1,
                use_simjoin=True))
        return edges

    string_seconds, string_edges = _best_of(
        lambda: sweep(string_clusters))
    interned_seconds, interned_edges = _best_of(
        lambda: sweep(interned_clusters))
    assert interned_edges == string_edges  # exact same join output
    speedup = string_seconds / interned_seconds
    record(experiment, "string tokens", f"{string_seconds:.3f}s")
    record(experiment, "interned ids",
           f"{interned_seconds:.3f}s (speedup {speedup:.2f}x)")
    return speedup


def bench_bytes(record, corpus, directory: str) -> float:
    """Pair-file + StateStore bytes, string era vs interned; returns
    the combined reduction (0..1)."""
    experiment = "Vocab interning: bytes on disk"
    interval = corpus.interval_indices[0]
    string_sets = [doc.keywords()
                   for doc in corpus.documents(interval)]
    vocab = Vocabulary()
    id_sets = vocab.intern_sets(string_sets)

    string_pairs = os.path.join(directory, "pairs-str.tsv")
    id_pairs = os.path.join(directory, "pairs-id.tsv")
    write_pair_file(string_sets, string_pairs)
    write_pair_file(id_sets, id_pairs)
    pair_str = os.path.getsize(string_pairs)
    pair_id = os.path.getsize(id_pairs)
    record(experiment, "pair file str/id",
           f"{pair_str}B / {pair_id}B "
           f"({100 * (1 - pair_id / pair_str):.0f}% smaller)")

    def stream_store_bytes(codec: str) -> int:
        store = DiskDict(os.path.join(directory, f"state-{codec}.bin"),
                         codec=codec)
        try:
            with StreamingDocumentPipeline(l=2, k=5, gap=1,
                                           store=store) as pipeline:
                for i in corpus.interval_indices:
                    pipeline.add_documents(corpus.documents(i))
            return store.file_bytes
        finally:
            store.close()

    state_pickle = stream_store_bytes("pickle")
    state_compact = stream_store_bytes("compact")
    record(experiment, "state store pickle/compact",
           f"{state_pickle}B / {state_compact}B "
           f"({100 * (1 - state_compact / state_pickle):.0f}% smaller)")

    before = pair_str + state_pickle
    after = pair_id + state_compact
    reduction = 1 - after / before
    record(experiment, "combined reduction",
           f"{100 * reduction:.0f}% (floor "
           f"{100 * BYTES_REDUCTION_FLOOR:.0f}%)")
    return reduction


def run_interning(record: Callable[[str, str, object], None],
                  intervals: int = INTERVALS,
                  background: int = BACKGROUND_POSTS,
                  vocabulary: int = VOCABULARY) -> dict:
    """All three experiments; returns their headline figures."""
    corpus = interning_corpus(intervals, background, vocabulary)
    with tempfile.TemporaryDirectory(prefix="repro-interning-") as tmp:
        return {
            "generation_speedup": bench_generation(record, corpus),
            "join_speedup": bench_window_join(record, corpus),
            "bytes_reduction": bench_bytes(record, corpus, tmp),
        }


def _assert_outcomes(results: dict) -> str:
    """Enforce the bytes floor (CI gets a warning instead, like
    bench_parallel_scaling: shared runners should not fail the build
    on an environment hiccup after equivalence already passed)."""
    reduction = results["bytes_reduction"]
    if reduction < BYTES_REDUCTION_FLOOR and os.environ.get("CI"):
        print(f"WARNING: combined bytes reduction "
              f"{100 * reduction:.0f}% below the "
              f"{100 * BYTES_REDUCTION_FLOOR:.0f}% floor — tolerated "
              f"under CI")
        return "tolerated"
    assert reduction >= BYTES_REDUCTION_FLOOR, (
        f"interned pair file + state store shrank only "
        f"{100 * reduction:.0f}% "
        f"(floor {100 * BYTES_REDUCTION_FLOOR:.0f}%)")
    return "held"


def test_vocab_interning_benchmark(series) -> None:
    """Benchmark entry point under pytest: equivalence always, byte
    floor asserted, throughput reported."""
    results = run_interning(series)
    outcome = _assert_outcomes(results)
    series("Vocab interning: bytes on disk", "bytes floor", outcome)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone smoke mode for CI (no pytest required)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small shapes for CI smoke runs")
    args = parser.parse_args(argv)
    rows: List[str] = []

    def record(experiment: str, label: str, value) -> None:
        rows.append(f"{experiment}: {label:<28} {value}")

    scale = dict(SMOKE_SCALE) if args.smoke else {}
    results = run_interning(record, **scale)
    for row in rows:
        print(row)
    outcome = _assert_outcomes(results)
    print(f"vocab interning benchmark: outputs identical, bytes "
          f"floor {outcome} "
          f"(generation {results['generation_speedup']:.2f}x, "
          f"join {results['join_speedup']:.2f}x, bytes "
          f"-{100 * results['bytes_reduction']:.0f}%)")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
