"""Streaming ingestion: per-interval latency vs window size.

The serving-tier question Section 4.6 raises but the paper never
benchmarks: what does one interval cost as the sliding window (gap)
grows, and does the indexed candidate join beat the all-pairs affinity
loop it replaced?  A synthetic cluster stream with persistent topics
is replayed through :class:`repro.core.online.StreamingAffinityPipeline`
at several gaps; per-interval link latency and the resident/stored
state are recorded.

Asserted shapes: per-interval state stays bounded by the ``g + 1``
window however many intervals stream past (the eviction guarantee),
and the prefix-filter join examines no more candidate pairs than the
all-pairs loop would.

Runs under pytest alongside the other paper benchmarks, and — because
the CI smoke job has no pytest — standalone::

    PYTHONPATH=src python benchmarks/bench_streaming_ingest.py --smoke
"""

from __future__ import annotations

import random
import time
from typing import Callable, List, Optional

from repro.core.online import StreamingAffinityPipeline
from repro.graph.clusters import KeywordCluster
from repro.storage import MemoryStore

INTERVALS = 14
GAPS = [0, 1, 2]
CLUSTERS_PER_INTERVAL = 60
KEYWORDS_PER_CLUSTER = 8
VOCABULARY = 600
L, K, THETA = 3, 5, 0.1

SMOKE_SCALE = dict(intervals=6, n=20)


def synthetic_cluster_stream(intervals: int, n: int,
                             seed: int = 2007) -> List[List[KeywordCluster]]:
    """Per-interval keyword clusters with persistent topics: half of
    each interval's clusters drift mildly from the previous interval
    (stable stories), half are fresh noise."""
    rng = random.Random(seed)
    vocabulary = [f"kw{i}" for i in range(VOCABULARY)]
    stream: List[List[KeywordCluster]] = []
    previous: List[KeywordCluster] = []
    for _ in range(intervals):
        clusters: List[KeywordCluster] = []
        for j in range(n):
            if previous and j < n // 2:
                # Drift one keyword of a persistent topic
                # (deterministically: sets iterate in hash order, so
                # pick the smallest and re-draw on collision).
                keywords = set(previous[j].keywords)
                keywords.discard(min(keywords))
                replacement = rng.choice(vocabulary)
                while replacement in keywords:
                    replacement = rng.choice(vocabulary)
                keywords.add(replacement)
            else:
                keywords = set(rng.sample(vocabulary,
                                          KEYWORDS_PER_CLUSTER))
            clusters.append(KeywordCluster(frozenset(keywords)))
        stream.append(clusters)
        previous = clusters
    return stream


def run_ingest(record: Callable[[str, str, object], None],
               intervals: int = INTERVALS,
               n: int = CLUSTERS_PER_INTERVAL) -> None:
    """Replay the stream per gap; record latency and state bounds."""
    stream = synthetic_cluster_stream(intervals, n)
    for gap in GAPS:
        for join in (False, True):
            store = MemoryStore()
            pipeline = StreamingAffinityPipeline(
                l=L, k=K, gap=gap, theta=THETA,
                store=store, use_simjoin=join)
            per_interval: List[float] = []
            max_store = 0
            for clusters in stream:
                started = time.perf_counter()
                pipeline.add_interval(clusters)
                per_interval.append(time.perf_counter() - started)
                max_store = max(max_store, len(store))
                # Eviction bound: the store never holds more than the
                # window's g + 1 intervals of node state.
                assert len(store) <= (gap + 1) * n
                intervals_in_store = {node[0] for node in store}
                assert len(intervals_in_store) <= gap + 1
            label = "simjoin" if join else "allpairs"
            mean_ms = 1000 * sum(per_interval) / len(per_interval)
            worst_ms = 1000 * max(per_interval)
            record("Streaming ingest (per-interval latency)",
                   f"g={gap} n={n} {label} mean", f"{mean_ms:.2f}ms")
            record("Streaming ingest (per-interval latency)",
                   f"g={gap} n={n} {label} worst", f"{worst_ms:.2f}ms")
            record("Streaming ingest (bounded state)",
                   f"g={gap} n={n} {label} max store keys",
                   f"{max_store} (cap {(gap + 1) * n})")


def test_streaming_ingest_latency(series) -> None:
    """Benchmark entry point under pytest (records paper-series
    rows; the eviction bound asserts inside the replay)."""
    run_ingest(series)


def test_streaming_latency_grows_with_gap() -> None:
    """A larger window means more candidate intervals per ingest:
    total link work for g=2 must exceed g=0 on the same stream.
    The join mode is pinned — otherwise the auto heuristic upgrades
    the larger window to the indexed join and can win outright."""
    stream = synthetic_cluster_stream(INTERVALS, CLUSTERS_PER_INTERVAL)
    totals = {}
    for gap in (0, 2):
        pipeline = StreamingAffinityPipeline(l=L, k=K, gap=gap,
                                             theta=THETA,
                                             use_simjoin=True)
        started = time.perf_counter()
        for clusters in stream:
            pipeline.add_interval(clusters)
        totals[gap] = time.perf_counter() - started
    assert totals[2] > totals[0]


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone smoke mode for CI (no pytest required)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small shapes for CI smoke runs")
    args = parser.parse_args(argv)
    rows: List[str] = []

    def record(experiment: str, label: str, value) -> None:
        rows.append(f"{experiment}: {label:<32} {value}")

    if args.smoke:
        run_ingest(record, **SMOKE_SCALE)
    else:
        run_ingest(record)
    for row in rows:
        print(row)
    print("streaming ingest benchmark: state bounds held")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
