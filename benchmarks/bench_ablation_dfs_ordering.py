"""Ablation: the DFS heuristics of Section 4.3.

Two design choices are benchmarked:

* child ordering — "while precomputing the list of children for all
  nodes, we sort them in the descending order of edge weights.  This
  will ensure that the children connected with edges of high weight
  are considered first" (better min-k earlier, better pruning);
* pruning itself — CanPrune with visited-unmarking vs exhaustive
  memoized DFS.

Both are measured by node reads (the paper's I/O unit), not wall
clock, so the comparison is noise-free.
"""

from __future__ import annotations

import pytest

from repro.core import DFSStats, dfs_stable_clusters
from repro.datagen import synthetic_cluster_graph

M, N, D, G, K = 8, 150, 4, 1, 5


def _graph(sort_children: bool):
    return synthetic_cluster_graph(m=M, n=N, d=D, g=G, seed=97,
                                   sort_children=sort_children)


@pytest.mark.parametrize("sort_children", [True, False],
                         ids=["weight-sorted", "arbitrary-order"])
def test_dfs_child_ordering(benchmark, series, sort_children):
    graph = _graph(sort_children)
    stats = DFSStats()
    paths = benchmark.pedantic(
        lambda: dfs_stable_clusters(graph, l=M - 1, k=K, stats=stats),
        rounds=1, iterations=1)
    assert len(paths) == K
    label = "sorted" if sort_children else "arbitrary"
    series("Ablation: DFS heuristics",
           f"child order {label}: reads={stats.node_reads} "
           f"prunes={stats.prunes}", benchmark.stats["mean"])


@pytest.mark.parametrize("prune", [True, False],
                         ids=["pruned", "exhaustive"])
def test_dfs_pruning(benchmark, series, prune):
    graph = _graph(sort_children=True)
    stats = DFSStats()
    paths = benchmark.pedantic(
        lambda: dfs_stable_clusters(graph, l=M - 1, k=K, prune=prune,
                                    stats=stats),
        rounds=1, iterations=1)
    assert len(paths) == K
    series("Ablation: DFS heuristics",
           f"pruning {'on' if prune else 'off'}: "
           f"reads={stats.node_reads} pops={stats.pops}",
           benchmark.stats["mean"])


def test_ordering_and_pruning_shapes(series, shape):
    """Results are identical across configurations; work differs."""

    def check():
        results = {}
        reads = {}
        for sort_children in (True, False):
            for prune in (True, False):
                graph = _graph(sort_children)
                stats = DFSStats()
                paths = dfs_stable_clusters(graph, l=M - 1, k=K,
                                            prune=prune, stats=stats)
                results[(sort_children, prune)] = \
                    [p.nodes for p in paths]
                reads[(sort_children, prune)] = stats.node_reads
        answers = list(results.values())
        assert all(answer == answers[0] for answer in answers)
        # The child-ordering heuristic pays off: fewer reads under
        # the weight-sorted order (both with and without pruning).
        assert reads[(True, True)] < reads[(False, True)]
        series("Ablation: DFS heuristics",
               f"shape: reads sorted+pruned={reads[(True, True)]} vs "
               f"sorted+exhaustive={reads[(True, False)]} vs "
               f"arbitrary+pruned={reads[(False, True)]}", "")
        # Reproduction finding (see EXPERIMENTS.md): with the
        # correctness-preserving pruning semantics — visited flags
        # unmarked on every prune so cut subtrees are re-explored on
        # later arrivals — the re-exploration tax exceeds the savings
        # on these dense workloads, so pruning *costs* reads here.
        # The paper's Example 2 regime (high min-k, sparse arrivals)
        # is where it wins; we record rather than assert the sign.
        verdict = ("saved" if reads[(True, True)] <= reads[(True, False)]
                   else "cost")
        series("Ablation: DFS heuristics",
               f"finding: pruning {verdict} reads on this workload "
               f"({reads[(True, True)]} vs {reads[(True, False)]})", "")

    shape(check)
