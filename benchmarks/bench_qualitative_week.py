"""Section 5.3: the qualitative week study, regenerated synthetically.

Paper (week of Jan 6 2007, daily intervals, rho=0.2, Jaccard affinity):
"Around 1100-1500 connected components (clusters) were produced for
each day ... and 42 full paths spanning the complete week were
discovered", with the qualitative figures:

* Figure 1/2 — single-day burst clusters (stem cell; Beckham);
* Figure 4  — a stable cluster with gaps (g=2);
* Figure 15 — topic drift (iPhone features -> Cisco lawsuit);
* Figure 16 — a full-week stable cluster (battle of Ras Kamboni).

The BlogScope crawl is private; the synthetic week scripts one event
per figure (docs/architecture.md).  Asserted: every scripted shape
is recovered —
exact keyword clusters for the bursts, a gap-jumping path, a drift
path chained by shared keywords, and full-week paths.
"""

from __future__ import annotations

import pytest

from repro.core import bfs_stable_clusters
from repro.datagen import (
    BlogosphereGenerator,
    Event,
    EventSchedule,
    ZipfVocabulary,
)
from repro.datagen.events import drifting_event
from repro.pipeline import find_stable_clusters
from repro.text import stem

STEMCELL = ["stem", "cell", "amniotic", "atala", "wake"]
SOMALIA = ["somalia", "mogadishu", "ethiopian", "islamist", "kamboni"]
FACUP = ["liverpool", "arsenal", "anfield", "rosicky"]


def _stems(words):
    return frozenset(stem(w) for w in words)


def _week_corpus():
    schedule = EventSchedule()
    schedule.add(Event.burst("stemcell", STEMCELL, 2, 70))
    schedule.add(Event.persistent(
        "somalia", SOMALIA, start=0, duration=7, posts=50,
        ramp=[1.0, 1.0, 1.6, 1.6, 1.3, 1.0, 1.0]))
    schedule.add(Event.with_gaps("facup", FACUP, [0, 3, 4], 60))
    schedule.extend(drifting_event(
        "iphone", shared=["apple", "iphone"],
        first_phase=["touchscreen", "keynote", "features"],
        second_phase=["cisco", "lawsuit", "trademark"],
        start=3, phase1_len=2, phase2_len=2, posts=60))
    vocab = ZipfVocabulary(3000, seed=2007)
    generator = BlogosphereGenerator(vocab, schedule,
                                     background_posts=600, seed=53)
    return generator.generate_corpus(7)


@pytest.fixture(scope="module")
def week_result():
    corpus = _week_corpus()
    return find_stable_clusters(corpus, l=4, k=40, gap=2)


def test_week_pipeline(benchmark, series):
    corpus = _week_corpus()
    result = benchmark.pedantic(
        lambda: find_stable_clusters(corpus, l=4, k=40, gap=2),
        rounds=1, iterations=1)
    cluster_counts = [len(c) for c in result.interval_clusters]
    full_paths = bfs_stable_clusters(result.cluster_graph,
                                     l=6, k=1000)
    series("Section 5.3 (qualitative week)",
           f"posts={corpus.num_documents} clusters/day={cluster_counts} "
           f"full-week paths={len(full_paths)}", "")
    # Paper shape: clusters every day; full-week paths exist (theirs:
    # 42 on 1100-1500 clusters/day; ours is a scaled-down week).
    assert all(count >= 1 for count in cluster_counts)
    assert len(full_paths) >= 1


def test_fig1_burst_cluster_exact(week_result, series, shape):
    def check():
        day2 = week_result.interval_clusters[2]
        keyword_sets = [c.keywords for c in day2]
        assert _stems(STEMCELL) in keyword_sets
        series("Section 5.3 (qualitative week)",
               "Fig 1 burst recovered exactly: "
               + " ".join(sorted(_stems(STEMCELL))), "")

    shape(check)


def test_fig16_full_week_story(week_result, series, shape):
    def check():
        somalia = _stems(SOMALIA)
        week_paths = [
            path for path in week_result.paths
            if all(somalia <= kws
                   for kws in week_result.path_keywords(path))]
        assert week_paths, "persistent story must yield stable paths"
        series("Section 5.3 (qualitative week)",
               f"Fig 16 persistent story: {len(week_paths)} stable "
               f"paths", "")

    shape(check)


def test_fig4_gapped_story(week_result, series, shape):
    def check():
        facup = _stems(FACUP)
        gapped = [
            path for path in week_result.paths
            if any(facup <= kws
                   for kws in week_result.path_keywords(path))
            and path.num_edges < path.length]
        assert gapped, "expected a stable path jumping dormant days"
        series("Section 5.3 (qualitative week)",
               f"Fig 4 gapped story: path {gapped[0].nodes} "
               f"({gapped[0].num_edges} edges over length "
               f"{gapped[0].length})", "")

    shape(check)


def test_fig15_topic_drift(week_result, series, shape):
    def check():
        shared = _stems(["apple", "iphone"])
        # The drift story spans days 3-6: a length-3 path.  Search
        # length-3 paths on the same cluster graph (the week_result's
        # l=4 answers cannot contain a 4-day-old story).
        paths = bfs_stable_clusters(week_result.cluster_graph,
                                    l=3, k=60)
        drift_paths = []
        for path in paths:
            keyword_sets = week_result.path_keywords(path)
            if not all(shared <= kws for kws in keyword_sets):
                continue
            starts_features = stem("touchscreen") in keyword_sets[0]
            ends_lawsuit = stem("lawsuit") in keyword_sets[-1]
            if starts_features and ends_lawsuit:
                drift_paths.append(path)
        assert drift_paths, "expected the drifting story as one path"
        series("Section 5.3 (qualitative week)",
               "Fig 15 drift: features -> lawsuit chained by "
               "{appl, iphon}", "")

    shape(check)
