"""Figure 7: BFS running time vs m for different gap sizes.

Paper: top-5 full paths, n=1000 nodes/interval, d=5, m from 5 to 25,
g in {0, 1, 2}; running times grow with m and (mildly) with g, since a
larger gap adds edges.

Scaled to n=100 (pure Python).  Asserted shapes: time grows with m at
every g, and the g=2 series dominates the g=0 series (more interval
pairs, more edges).
"""

from __future__ import annotations

import pytest

from repro.core import BFSStats, bfs_stable_clusters
from repro.datagen import synthetic_cluster_graph

MS = [5, 10, 15, 20, 25]
GAPS = [0, 1, 2]
N, D, K = 100, 5, 5

_TIMES = {}


@pytest.mark.parametrize("g", GAPS)
@pytest.mark.parametrize("m", MS)
def test_fig7_bfs_full_paths(benchmark, series, m, g):
    graph = synthetic_cluster_graph(m=m, n=N, d=D, g=g, seed=707)
    stats = BFSStats()
    paths = benchmark.pedantic(
        lambda: bfs_stable_clusters(graph, l=m - 1, k=K, stats=stats),
        rounds=2, iterations=1)
    assert len(paths) == K
    _TIMES[(g, m)] = benchmark.stats["mean"]
    series("Figure 7 (BFS vs m per gap, seconds)",
           f"g={g} m={m} ({graph.num_edges} edges)",
           benchmark.stats["mean"])


def test_fig7_shapes(shape):
    if len(_TIMES) < len(MS) * len(GAPS):
        pytest.skip("run the full module to check shapes")

    def check():
        for g in GAPS:
            # Growing m grows cost (compare the extremes to stay
            # robust to timer noise at the small end).
            assert _TIMES[(g, MS[-1])] > _TIMES[(g, MS[0])]
        # Larger gap -> more edges -> more work at the largest m.
        assert _TIMES[(2, MS[-1])] > _TIMES[(0, MS[-1])]

    shape(check)
