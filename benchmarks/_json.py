"""Shared writer for the versioned ``BENCH_*.json`` artifacts.

Every benchmark harness with a ``--json PATH`` mode (simjoin, index
lifecycle, serving load) writes its headline figures through
:func:`write_bench_json`, so all the repo-root artifacts CI uploads
carry the same envelope::

    {
      "format": "repro-bench",
      "version": 1,
      "area": "serving",
      "results": { ...harness-specific figures... }
    }

Consumers (trajectory plots, regression diffing) key on ``format`` /
``version`` before reading ``results``; bumping ``BENCH_VERSION``
is the one place to declare a breaking envelope change.

(The module name shadows CPython's private ``_json`` accelerator
when a benchmark runs standalone from this directory; the stdlib
``json`` package detects that and falls back to its pure-Python
scanner, which is fine at artifact-writing volume.)
"""

from __future__ import annotations

import json
from typing import Any, Dict

BENCH_FORMAT = "repro-bench"
BENCH_VERSION = 1


def bench_envelope(area: str, results: Dict[str, Any]
                   ) -> Dict[str, Any]:
    """The envelope dict for one harness's *results* figures."""
    return {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "area": area,
        "results": results,
    }


def write_bench_json(path: str, area: str,
                     results: Dict[str, Any]) -> None:
    """Write *results* to *path* inside the versioned envelope."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bench_envelope(area, results), handle,
                  indent=2, sort_keys=True)
        handle.write("\n")
