"""Segmented index lifecycle: append, merge, serve — timed and gated.

The tiered segment lifecycle (see docs/index-serving.md, "Segment
lifecycle") seals an immutable segment every ``flush_intervals``
appends and compacts sealed segments with a size-tiered merge.  This
benchmark is the refactor's gate:

* **equivalence** — every query answer (per-interval clusters, point
  lookups, stable paths) must be identical before and after
  ``compact_index``; the merge copies cluster records byte-for-byte
  and keeps only the newest path generation;
* **compaction** — the merged index must be *strictly smaller* than
  the unmerged one (each sealed segment carries superseded path
  generations the merge drops), asserted deterministically;
* **trajectory** — ``--json PATH`` writes the headline figures
  (append throughput, merge duration, post-merge query p95, index
  bytes before/after) as the repo-root ``BENCH_index.json`` artifact
  that ``make bench-json`` versions.

Runs under pytest alongside the paper benchmarks and standalone::

    PYTHONPATH=src python benchmarks/bench_index_lifecycle.py --smoke
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.paths import Path
from repro.graph.clusters import KeywordCluster
from repro.index import ClusterIndexReader, ClusterIndexWriter
from repro.index.merge import compact_index
from repro.service import ClusterQueryService

INTERVALS = 48
CLUSTERS_PER_INTERVAL = 40
KEYWORD_POOL = 900
FLUSH_INTERVALS = 4
QUERY_ROUNDS = 400

SMOKE_SCALE = dict(intervals=12, per_interval=12, pool=250,
                   query_rounds=80)


def lifecycle_workload(intervals: int = INTERVALS,
                       per_interval: int = CLUSTERS_PER_INTERVAL,
                       pool: int = KEYWORD_POOL, seed: int = 11
                       ) -> Tuple[List[List[KeywordCluster]],
                                  List[List[Path]]]:
    """Per-interval clusters plus an evolving top-k, streaming style.

    Keywords are drawn Zipf-ish from a shared pool (low ranks
    frequent, so postings lists and the refiner have real overlap);
    each interval also carries a fresh top-k snapshot, the way a
    streaming writer re-publishes paths after every ingest — that is
    the garbage the merge must reclaim.
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 20) for rank in range(pool)]
    names = [f"kw{rank}" for rank in range(pool)]

    def draw_keywords(size: int) -> frozenset:
        out: set = set()
        while len(out) < size:
            out.update(rng.choices(names, weights=weights,
                                   k=size - len(out)))
        return frozenset(out)

    interval_clusters: List[List[KeywordCluster]] = []
    path_snapshots: List[List[Path]] = []
    for interval in range(intervals):
        clusters = []
        for _ in range(per_interval):
            keywords = sorted(draw_keywords(rng.randint(3, 8)))
            edges = tuple((keywords[i], keywords[i + 1],
                           round(rng.uniform(0.2, 0.9), 3))
                          for i in range(len(keywords) - 1))
            clusters.append(KeywordCluster(frozenset(keywords),
                                           edges=edges,
                                           interval=interval))
        interval_clusters.append(clusters)
        snapshot = []
        for k in range(3):
            if interval == 0:
                break
            nodes = tuple((t, (k + t) % per_interval)
                          for t in range(max(0, interval - 3),
                                         interval + 1))
            snapshot.append(Path(weight=round(rng.uniform(1, 4), 3),
                                 nodes=nodes))
        path_snapshots.append(sorted(snapshot, reverse=True))
    return interval_clusters, path_snapshots


def bench_append(record, directory: str,
                 workload: Tuple[List[List[KeywordCluster]],
                                 List[List[Path]]],
                 flush_intervals: int) -> float:
    """Streaming-style appends (clusters + top-k republish per
    interval) with periodic segment seals; returns intervals/s."""
    experiment = "Index lifecycle: append"
    interval_clusters, path_snapshots = workload
    started = time.perf_counter()
    with ClusterIndexWriter(directory, overwrite=True,
                            flush_intervals=flush_intervals,
                            merge_policy=None) as writer:
        for clusters, paths in zip(interval_clusters,
                                   path_snapshots):
            writer.append_interval(clusters)
            if paths:
                writer.set_paths(paths)
    seconds = time.perf_counter() - started
    throughput = len(interval_clusters) / seconds if seconds \
        else float("inf")
    record(experiment, "intervals appended",
           f"{len(interval_clusters)} "
           f"(seal every {flush_intervals})")
    record(experiment, "append throughput",
           f"{throughput:.0f} intervals/s ({seconds:.3f}s)")
    return throughput


def _answers(directory: str, sample: List[str]) -> Dict:
    """Every query surface's answers, for the equivalence bar."""
    with ClusterIndexReader(directory) as reader:
        return {
            "clusters": [reader.clusters_at(i)
                         for i in range(reader.num_intervals)],
            "paths": reader.paths(),
            "lookups": [reader.lookup(kw) for kw in sample],
            "postings": [reader.postings_for(kw) for kw in sample],
        }


def bench_merge(record, directory: str,
                sample: List[str]) -> Tuple[Dict, float]:
    """Full compaction: duration, strict size win, and answer
    equivalence asserted."""
    experiment = "Index lifecycle: merge"
    before = _answers(directory, sample)
    started = time.perf_counter()
    report = compact_index(directory, full=True)
    seconds = time.perf_counter() - started
    assert report["bytes_after"] < report["bytes_before"], (
        f"compaction did not shrink the index: "
        f"{report['bytes_before']} -> {report['bytes_after']} bytes")
    after = _answers(directory, sample)
    assert after == before, \
        "merged index diverged from the unmerged answers"
    record(experiment, "segments",
           f"{report['segments_before']} -> "
           f"{report['segments_after']} "
           f"in {report['merges']} merge(s)")
    reclaimed = 1 - report["bytes_after"] / report["bytes_before"]
    record(experiment, "index bytes",
           f"{report['bytes_before']} -> {report['bytes_after']} "
           f"({100 * reclaimed:.0f}% reclaimed)")
    record(experiment, "merge duration", f"{seconds:.3f}s")
    return report, seconds


def bench_queries(record, directory: str, sample: List[str],
                  rounds: int) -> float:
    """Post-merge serving latency: p95 of refine+lookup rounds."""
    experiment = "Index lifecycle: post-merge queries"
    latencies: List[float] = []
    with ClusterQueryService(directory) as service:
        for i in range(rounds):
            keyword = sample[i % len(sample)]
            interval = i % service.num_intervals
            started = time.perf_counter()
            service.refine(keyword, interval)
            service.lookup(keyword, interval)
            latencies.append(time.perf_counter() - started)
        stats = service.stats()
    latencies.sort()
    p95 = latencies[min(len(latencies) - 1,
                        int(round(0.95 * len(latencies))))]
    record(experiment, "p95 refine+lookup",
           f"{p95 * 1000:.2f}ms over {rounds} rounds")
    record(experiment, "refiner cache",
           f"{stats['refiner_hits']} hits / "
           f"{stats['refiner_misses']} misses")
    record(experiment, "mmap", "on" if stats["mmap_active"]
           else "off (buffered fallback)")
    return p95


def run_lifecycle_bench(record: Callable[[str, str, object], None],
                        intervals: int = INTERVALS,
                        per_interval: int = CLUSTERS_PER_INTERVAL,
                        pool: int = KEYWORD_POOL,
                        query_rounds: int = QUERY_ROUNDS,
                        flush_intervals: int = FLUSH_INTERVALS
                        ) -> dict:
    """Append -> merge -> serve over one temporary index."""
    workload = lifecycle_workload(intervals, per_interval, pool)
    sample = [f"kw{rank}" for rank in range(0, pool, 7)]
    directory = tempfile.mkdtemp(prefix="repro-bench-index-")
    try:
        throughput = bench_append(record, directory, workload,
                                  flush_intervals)
        report, merge_seconds = bench_merge(record, directory,
                                            sample)
        p95 = bench_queries(record, directory, sample, query_rounds)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return {
        "workload": {
            "intervals": intervals,
            "clusters_per_interval": per_interval,
            "keyword_pool": pool,
            "flush_intervals": flush_intervals,
        },
        "append_intervals_per_s": round(throughput, 1),
        "segments_before_merge": report["segments_before"],
        "segments_after_merge": report["segments_after"],
        "index_bytes_before_merge": report["bytes_before"],
        "index_bytes_after_merge": report["bytes_after"],
        "merge_seconds": round(merge_seconds, 4),
        "post_merge_query_p95_ms": round(p95 * 1000, 3),
        "answers_identical": True,
    }


def test_index_lifecycle_benchmark(series) -> None:
    """Benchmark entry point under pytest: equivalence and the
    strict compaction win asserted, timings reported."""
    results = run_lifecycle_bench(series)
    assert results["index_bytes_after_merge"] \
        < results["index_bytes_before_merge"]


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone smoke/JSON mode for CI (no pytest required)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small shapes for CI smoke runs")
    parser.add_argument("--json", metavar="PATH",
                        help="write the perf-trajectory figures as "
                             "JSON (the BENCH_index.json artifact)")
    args = parser.parse_args(argv)
    rows: List[str] = []

    def record(experiment: str, label: str, value) -> None:
        rows.append(f"{experiment}: {label:<24} {value}")

    scale = dict(SMOKE_SCALE) if args.smoke else {}
    results = run_lifecycle_bench(record, **scale)
    for row in rows:
        print(row)
    if args.json:
        from _json import write_bench_json
        write_bench_json(args.json, "index", results)
        print(f"wrote {args.json}")
    reclaimed = (1 - results["index_bytes_after_merge"]
                 / results["index_bytes_before_merge"])
    print(f"index lifecycle benchmark: answers identical, "
          f"{results['segments_before_merge']} -> "
          f"{results['segments_after_merge']} segments, "
          f"{100 * reclaimed:.0f}% bytes reclaimed, "
          f"post-merge p95 "
          f"{results['post_merge_query_p95_ms']:.2f}ms")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
