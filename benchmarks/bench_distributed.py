"""Distributed scatter-gather: identity, scaling, tail latency.

The distributed tier (see docs/distributed.md) fans each query out
over shard worker processes and merges the partials back into the
exact single-process answer.  This benchmark is that tier's gate:

* **identity** — a sample of coordinator answers must be
  byte-identical to the in-process
  :class:`~repro.service.ClusterQueryService` payloads over the same
  index (the contract the test suite pins case by case);
* **scaling** — uncached refine throughput at 1/2/4/8 workers over a
  hammer index where every query decodes the full posting list; the
  4-worker point must beat 1 worker by ``SCALING_FLOOR`` on a
  machine with >= 4 cores (skipped below that, warning-only under
  CI — a shared runner cannot promise real parallelism);
* **tail latency** — one worker is fault-injected ``SLOW_DELAY_S``
  slower than its peers; p99 with hedging must recover because the
  straggling partial is re-sent to a replica worker;
* **trajectory** — ``--json PATH`` writes the headline figures as
  the repo-root ``BENCH_distributed.json`` artifact (shared envelope
  from :mod:`_json`) that ``make bench-json`` versions.

Runs under pytest alongside the paper benchmarks and standalone::

    PYTHONPATH=src python benchmarks/bench_distributed.py --smoke
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from bench_serving_load import (
    build_hammer_index,
    build_index,
    percentile,
)
from repro.distributed import DistributedQueryService
from repro.service import ClusterQueryService
from repro.serving import (
    encode_payload,
    lookup_payload,
    paths_payload,
    refine_payload,
)

INTERVALS = 12
CLUSTERS_PER_INTERVAL = 20
KEYWORD_POOL = 400
HAMMER_CLUSTERS = 220
WORKER_COUNTS = (1, 2, 4, 8)
QUERIES = 60
TAIL_QUERIES = 40
TAIL_WORKERS = 4

# The injected straggler sleeps this long per batch; the hedged run
# re-sends its partial to a replica after HEDGE_DELAY_S instead of
# waiting it out.
SLOW_DELAY_S = 0.12
HEDGE_DELAY_S = 0.02

# 4 workers must beat 1 worker by this factor on >= 4 cores.
SCALING_FLOOR = 1.5

SMOKE_SCALE = dict(intervals=6, per_interval=10, pool=150,
                   hammer_clusters=60, queries=16, tail_queries=10,
                   worker_counts=(1, 2), tail_workers=2)


def bench_identity(record, directory: str, pool: int) -> int:
    """Coordinator answers vs the in-process service: identical."""
    experiment = "Distributed: identity"
    checked = 0
    with ClusterQueryService(directory) as service, \
            DistributedQueryService(directory, workers=2) as coord:
        probes: List[Tuple[str, Callable]] = []
        for rank in range(0, pool, max(1, pool // 8)):
            keyword = f"kw{rank}"
            probes.append((
                f"refine {keyword}",
                lambda svc, kw=keyword: refine_payload(svc, kw)))
            probes.append((
                f"lookup {keyword}@0",
                lambda svc, kw=keyword: lookup_payload(svc, kw, 0)))
        probes.append(("paths", lambda svc: paths_payload(svc)))
        probes.append(("paths kw0",
                       lambda svc: paths_payload(svc, "kw0")))
        for label, build in probes:
            expected = encode_payload(build(service))
            actual = encode_payload(build(coord))
            assert actual == expected, \
                f"scatter-gather diverged from in-process: {label}"
            checked += 1
    record(experiment, "answers checked",
           f"{checked} (all byte-identical, 2 workers)")
    return checked


def bench_scaling(record, directory: str, queries: int,
                  worker_counts) -> List[Dict]:
    """Uncached refine throughput at each worker count."""
    experiment = "Distributed: scaling efficiency"
    points: List[Dict] = []
    base_qps: Optional[float] = None
    for workers in worker_counts:
        with DistributedQueryService(
                directory, workers=workers, cache_size=0,
                cluster_cache_size=0,
                hedge_delay=30.0) as coordinator:
            coordinator.refine("kw0")  # warm pipes and page cache
            started = time.perf_counter()
            for _ in range(queries):
                coordinator.refine("kw0")
            wall = time.perf_counter() - started
        qps = queries / wall if wall else 0.0
        if base_qps is None:
            base_qps = qps or 1.0
        point = {
            "workers": workers,
            "queries": queries,
            "throughput_qps": round(qps, 1),
            "speedup": round(qps / base_qps, 3),
        }
        points.append(point)
        record(experiment, f"{workers} worker(s)",
               f"{qps:.0f} refine/s  "
               f"(x{point['speedup']:.2f} vs 1 worker)")
    return points


def _timed_queries(coordinator, queries: int) -> List[float]:
    per_query = []
    for _ in range(queries):
        started = time.perf_counter()
        coordinator.refine("kw0")
        per_query.append(time.perf_counter() - started)
    return per_query


def bench_tail(record, directory: str, queries: int,
               workers: int) -> Dict:
    """p99 with an injected straggler, unhedged vs hedged."""
    experiment = "Distributed: slow-worker tail"
    with DistributedQueryService(
            directory, workers=workers, cache_size=0,
            cluster_cache_size=0, hedge_delay=30.0) as coordinator:
        coordinator.set_worker_delay(0, SLOW_DELAY_S)
        unhedged = _timed_queries(coordinator, queries)
    with DistributedQueryService(
            directory, workers=workers, cache_size=0,
            cluster_cache_size=0,
            hedge_delay=HEDGE_DELAY_S) as coordinator:
        coordinator.set_worker_delay(0, SLOW_DELAY_S)
        hedged = _timed_queries(coordinator, queries)
        hedged_calls = coordinator.stats()["hedged_calls"]
    result = {
        "workers": workers,
        "delay_ms": round(SLOW_DELAY_S * 1000, 1),
        "hedge_ms": round(HEDGE_DELAY_S * 1000, 1),
        "unhedged_p99_ms": round(percentile(unhedged, 0.99), 2),
        "hedged_p99_ms": round(percentile(hedged, 0.99), 2),
        "hedged_calls": hedged_calls,
    }
    record(experiment, "workload",
           f"{workers} workers, worker 0 injected "
           f"+{result['delay_ms']:.0f}ms/batch")
    record(experiment, "p99",
           f"{result['unhedged_p99_ms']:.1f}ms unhedged -> "
           f"{result['hedged_p99_ms']:.1f}ms hedged at "
           f"{result['hedge_ms']:.0f}ms "
           f"({hedged_calls} partials hedged)")
    assert hedged_calls > 0, \
        "the delayed worker never drove a hedge"
    assert result["hedged_p99_ms"] < result["unhedged_p99_ms"], \
        "hedging did not improve the straggler p99"
    return result


def _check_scaling(results: Dict) -> str:
    """Enforce the 4-worker floor (CPU-gated, warning-only in CI)."""
    points = {point["workers"]: point
              for point in results["scaling"]}
    if 4 not in points:
        return "skipped (no 4-worker point at this scale)"
    speedup = points[4]["speedup"]
    cores = os.cpu_count() or 1
    if cores < 4:
        return (f"skipped ({cores} core(s) < 4; measured "
                f"x{speedup:.2f})")
    if speedup >= SCALING_FLOOR:
        return f"met (x{speedup:.2f} at 4 workers)"
    message = (f"4-worker speedup x{speedup:.2f} below the "
               f"x{SCALING_FLOOR:.1f} floor")
    if os.environ.get("CI"):
        print(f"warning: {message} [not enforced under CI]")
        return f"MISSED under CI (x{speedup:.2f})"
    raise AssertionError(message)


def run_distributed_bench(
        record: Callable[[str, str, object], None],
        intervals: int = INTERVALS,
        per_interval: int = CLUSTERS_PER_INTERVAL,
        pool: int = KEYWORD_POOL,
        hammer_clusters: int = HAMMER_CLUSTERS,
        queries: int = QUERIES,
        tail_queries: int = TAIL_QUERIES,
        worker_counts=WORKER_COUNTS,
        tail_workers: int = TAIL_WORKERS) -> dict:
    """Build the indexes, then identity -> scaling -> tail."""
    lifecycle_dir = tempfile.mkdtemp(prefix="repro-bench-dist-")
    hammer_dir = tempfile.mkdtemp(prefix="repro-bench-dist-hammer-")
    try:
        build_index(lifecycle_dir, intervals, per_interval, pool)
        checked = bench_identity(record, lifecycle_dir, pool)
        build_hammer_index(hammer_dir, hammer_clusters)
        scaling = bench_scaling(record, hammer_dir, queries,
                                worker_counts)
        tail = bench_tail(record, hammer_dir, tail_queries,
                          tail_workers)
    finally:
        shutil.rmtree(lifecycle_dir, ignore_errors=True)
        shutil.rmtree(hammer_dir, ignore_errors=True)
    return {
        "workload": {
            "intervals": intervals,
            "clusters_per_interval": per_interval,
            "keyword_pool": pool,
            "hammer_clusters": hammer_clusters,
            "queries": queries,
        },
        "answers_checked": checked,
        "answers_identical": True,
        "scaling": scaling,
        "slow_worker": tail,
    }


def test_distributed_benchmark(series) -> None:
    """Benchmark entry point under pytest: identity always, the
    scaling floor CPU-gated, the straggler recovery asserted."""
    results = run_distributed_bench(series, **SMOKE_SCALE)
    assert results["answers_identical"]
    results["scaling_floor"] = _check_scaling(results)
    series("Distributed: scaling efficiency", "scaling floor",
           results["scaling_floor"])


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone smoke/JSON mode for CI (no pytest required)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small shapes for CI smoke runs")
    parser.add_argument("--json", metavar="PATH",
                        help="write the perf-trajectory figures as "
                             "JSON (the BENCH_distributed.json "
                             "artifact)")
    args = parser.parse_args(argv)
    rows: List[str] = []

    def record(experiment: str, label: str, value) -> None:
        rows.append(f"{experiment}: {label:<16} {value}")

    scale = dict(SMOKE_SCALE) if args.smoke else {}
    results = run_distributed_bench(record, **scale)
    results["scaling_floor"] = _check_scaling(results)
    for row in rows:
        print(row)
    if args.json:
        from _json import write_bench_json
        write_bench_json(args.json, "distributed", results)
        print(f"wrote {args.json}")
    tail = results["slow_worker"]
    print(f"distributed benchmark: answers identical, scaling floor "
          f"{results['scaling_floor']}, straggler p99 "
          f"{tail['unhedged_p99_ms']:.1f}ms -> "
          f"{tail['hedged_p99_ms']:.1f}ms hedged")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
