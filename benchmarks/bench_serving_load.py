"""Concurrent serving load: the latency curve and batching win.

The serving tier (see docs/serving.md) shares one thread-safe
:class:`~repro.service.ClusterQueryService` across every HTTP
connection, with a hot-keyword LRU and single-flight request
batching in front of the index reads.  This benchmark is the tier's
gate:

* **equivalence** — a sample of HTTP answers must be byte-identical
  to the in-process payload builders over a second service on the
  same index (the contract the round-trip tests pin);
* **latency curve** — p50/p95/p99 latency and throughput measured at
  1, 4, 16 and 64 concurrent clients hammering a Zipf-skewed
  keyword mix over keep-alive connections, the saturation
  trajectory of the paper's "millions of users" serving scenario;
* **batching** — with the hot cache disabled and 64 clients on one
  keyword, single-flight coalescing must cut index reads by
  ``REDUCTION_FLOOR`` vs the unbatched server (warning-only under
  CI, where thread scheduling is too coarse to promise overlap);
* **trajectory** — ``--json PATH`` writes the headline figures as
  the repo-root ``BENCH_serving.json`` artifact (shared envelope
  from :mod:`_json`) that ``make bench-json`` versions.

Runs under pytest alongside the paper benchmarks and standalone::

    PYTHONPATH=src python benchmarks/bench_serving_load.py --smoke
"""

from __future__ import annotations

import http.client
import os
import random
import shutil
import tempfile
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from bench_index_lifecycle import lifecycle_workload
from repro.graph.clusters import KeywordCluster
from repro.index import ClusterIndexWriter
from repro.service import ClusterQueryService
from repro.serving import (
    ClusterServer,
    encode_payload,
    lookup_payload,
    paths_payload,
    refine_payload,
)

INTERVALS = 24
CLUSTERS_PER_INTERVAL = 30
KEYWORD_POOL = 600
CONCURRENCIES = (1, 4, 16, 64)
REQUESTS_PER_CLIENT = 60
BATCH_REQUESTS_PER_CLIENT = 30

HAMMER_CLUSTERS = 150

SMOKE_SCALE = dict(intervals=8, per_interval=12, pool=200,
                   requests_per_client=8, batch_requests_per_client=4,
                   hammer_clusters=80)

# Single-flight must coalesce at least this share of the unbatched
# index reads on the one-hot-keyword workload.
REDUCTION_FLOOR = 0.30

# The most-concurrent point should retain at least this share of the
# saturation (knee) throughput.  Always warning-only: the one-process
# tier drops past its knee by design (the GIL is the ceiling); the
# floor exists to make the drop visible in BENCH_serving.json, and
# ``serve --shards N`` (bench_distributed.py) is the fix.
RETENTION_FLOOR = 0.60


def build_index(directory: str, intervals: int,
                per_interval: int, pool: int) -> None:
    """Persist the lifecycle workload as one queryable index."""
    interval_clusters, path_snapshots = lifecycle_workload(
        intervals, per_interval, pool)
    with ClusterIndexWriter(directory, overwrite=True,
                            merge_policy=None) as writer:
        for clusters, paths in zip(interval_clusters,
                                   path_snapshots):
            writer.append_interval(clusters)
            if paths:
                writer.set_paths(paths)


def build_hammer_index(directory: str, num_clusters: int,
                       pool: int = 400, seed: int = 3) -> None:
    """An index where refining ``kw0`` is genuinely expensive.

    Every cluster contains ``kw0``, so one uncached refine scans
    the whole postings list and decodes every cluster off disk —
    milliseconds of real read work per request, the regime where
    single-flight coalescing pays."""
    rng = random.Random(seed)
    names = [f"kw{rank}" for rank in range(pool)]
    clusters = []
    for _ in range(num_clusters):
        keywords = sorted(set(["kw0"] + rng.sample(names[1:], 12)))
        edges = tuple((keywords[i], keywords[i + 1],
                       round(rng.uniform(0.2, 0.9), 3))
                      for i in range(len(keywords) - 1))
        clusters.append(KeywordCluster(frozenset(keywords),
                                       edges=edges, interval=0))
    with ClusterIndexWriter(directory, overwrite=True,
                            merge_policy=None) as writer:
        writer.append_interval(clusters)


def zipf_keywords(pool: int, count: int) -> List[str]:
    """A deterministic Zipf-skewed request mix over the pool."""
    # rank r is requested ~1/(r+1) as often as rank 0: emit rank 0
    # every step, rank 1 every 2nd, rank 2 every 3rd, ...
    out: List[str] = []
    step = 0
    while len(out) < count:
        for rank in range(pool):
            if step % (rank + 1) == 0:
                out.append(f"kw{rank}")
                if len(out) == count:
                    break
        step += 1
    return out


def run_clients(url: str, num_clients: int,
                requests_each: Callable[[int], List[str]]
                ) -> Tuple[List[float], float, int]:
    """Hammer *url* from *num_clients* threads over keep-alive.

    ``requests_each(client)`` is the path list one client plays.
    Returns (per-request latencies, wall seconds, error count);
    clients start together on a barrier so concurrency is real."""
    host, port = url.split("//")[1].split(":")
    barrier = threading.Barrier(num_clients + 1)
    latencies_per_client: List[List[float]] = \
        [[] for _ in range(num_clients)]
    errors = [0] * num_clients

    def client(idx: int) -> None:
        conn = http.client.HTTPConnection(host, int(port), timeout=60)
        try:
            conn.connect()  # connect setup is not part of the load
            barrier.wait()
            for path in requests_each(idx):
                started = time.perf_counter()
                try:
                    conn.request("GET", path)
                    response = conn.getresponse()
                    response.read()
                except OSError:
                    errors[idx] += 1
                    conn.close()  # reconnect lazily on next request
                    continue
                latencies_per_client[idx].append(
                    time.perf_counter() - started)
                if response.status != 200:
                    errors[idx] += 1
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(idx,))
               for idx in range(num_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    latencies = [latency for per_client in latencies_per_client
                 for latency in per_client]
    return latencies, wall, sum(errors)


def percentile(latencies: List[float], share: float) -> float:
    """The *share* percentile (0..1) of sorted latencies, in ms."""
    ordered = sorted(latencies)
    index = min(len(ordered) - 1,
                int(round(share * (len(ordered) - 1))))
    return ordered[index] * 1000


def bench_equivalence(record, directory: str, url: str,
                      pool: int) -> int:
    """HTTP bytes vs in-process payload builders: must be identical."""
    experiment = "Serving load: equivalence"
    host, port = url.split("//")[1].split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=30)
    checked = 0
    with ClusterQueryService(directory) as service:
        probes: List[Tuple[str, Callable[[], Dict]]] = []
        for rank in range(0, pool, max(1, pool // 8)):
            keyword = f"kw{rank}"
            probes.append((
                f"/refine?keyword={keyword}",
                lambda kw=keyword: refine_payload(service, kw)))
            probes.append((
                f"/lookup?keyword={keyword}&interval=0",
                lambda kw=keyword: lookup_payload(service, kw, 0)))
        probes.append(("/paths", lambda: paths_payload(service)))
        probes.append(("/paths?keyword=kw0",
                       lambda: paths_payload(service, "kw0")))
        for path, build in probes:
            conn.request("GET", path)
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200, (path, response.status)
            expected = encode_payload(build())
            assert body == expected, \
                f"HTTP answer diverged from in-process for {path}"
            checked += 1
    conn.close()
    record(experiment, "answers checked",
           f"{checked} (all byte-identical)")
    return checked


def bench_latency_curve(record, directory: str, pool: int,
                        requests_per_client: int) -> List[Dict]:
    """p50/p95/p99 + throughput at each concurrency level."""
    experiment = "Serving load: latency curve"
    curve: List[Dict] = []
    baseline_per_client: Optional[float] = None
    with ClusterServer(directory, max_inflight=128).start() as server:
        for clients in CONCURRENCIES:
            mix = zipf_keywords(pool, requests_per_client)

            def plays(idx: int, mix=mix) -> List[str]:
                # Stagger each client's starting offset so the load
                # is not 64 copies of the same request sequence.
                return [f"/refine?keyword="
                        f"{mix[(idx * 7 + i) % len(mix)]}"
                        for i in range(len(mix))]

            latencies, wall, errors = run_clients(
                server.url, clients, plays)
            assert errors == 0, \
                f"{errors} non-200 responses at {clients} clients"
            throughput = round(len(latencies) / wall, 1) \
                if wall else 0.0
            per_client = throughput / clients
            if baseline_per_client is None:
                baseline_per_client = per_client or 1.0
            point = {
                "clients": clients,
                "requests": len(latencies),
                "p50_ms": round(percentile(latencies, 0.50), 3),
                "p95_ms": round(percentile(latencies, 0.95), 3),
                "p99_ms": round(percentile(latencies, 0.99), 3),
                "throughput_rps": throughput,
                # rps each client sees, and how it compares to what
                # one lone client got — 1.0 is perfect scaling, and
                # the fall-off localizes the knee in the artifact.
                "per_client_rps": round(per_client, 1),
                "scaling_efficiency": round(
                    per_client / baseline_per_client, 3),
            }
            curve.append(point)
            record(experiment, f"{clients:>2} client(s)",
                   f"p50 {point['p50_ms']:.2f}ms  "
                   f"p95 {point['p95_ms']:.2f}ms  "
                   f"p99 {point['p99_ms']:.2f}ms  "
                   f"{point['throughput_rps']:.0f} req/s  "
                   f"(eff {point['scaling_efficiency']:.2f})")
    return curve


def _hammer_one_keyword(directory: str, batching: bool,
                        clients: int, per_client: int) -> Dict:
    """64-clients-one-keyword phase; returns the server counters.

    Both caches are disabled, so every non-coalesced request pays
    the full index read (postings scan + cluster decodes off disk)
    — the expensive work single-flight exists to dedup."""
    with ClusterServer(directory, cache_size=0,
                       cluster_cache_size=0, max_inflight=128,
                       batching=batching).start() as server:
        latencies, wall, errors = run_clients(
            server.url, clients,
            lambda idx: ["/refine?keyword=kw0"] * per_client)
        assert errors == 0
        stats = server.server_stats()
        stats["wall_seconds"] = wall
        return stats


def bench_singleflight(record, clients: int, per_client: int,
                       hammer_clusters: int) -> Dict:
    """Index reads with batching off vs on, same workload."""
    experiment = "Serving load: single-flight batching"
    directory = tempfile.mkdtemp(prefix="repro-bench-hammer-")
    try:
        build_hammer_index(directory, hammer_clusters)
        unbatched = _hammer_one_keyword(directory, False, clients,
                                        per_client)
        batched = _hammer_one_keyword(directory, True, clients,
                                      per_client)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    requests = clients * per_client
    reduction = 1 - batched["index_reads"] / unbatched["index_reads"]
    record(experiment, "workload",
           f"{clients} clients x {per_client} requests, "
           f"one keyword over {hammer_clusters} clusters, "
           f"caches off")
    record(experiment, "index reads",
           f"{unbatched['index_reads']} unbatched -> "
           f"{batched['index_reads']} batched "
           f"({100 * reduction:.0f}% coalesced)")
    record(experiment, "coalesced waiters",
           batched["singleflight"]["coalesced"])
    return {
        "clients": clients,
        "requests": requests,
        "unbatched_index_reads": unbatched["index_reads"],
        "batched_index_reads": batched["index_reads"],
        "read_reduction": round(reduction, 3),
    }


def _check_retention(results: Dict) -> str:
    """Surface the post-knee throughput drop (always warning-only).

    A MISSED outcome never fails the run — the single-process tier
    loses throughput past its knee by construction — but it lands in
    the recorded results so the regression stays visible release
    over release."""
    retention = results["saturation_retention"]
    if retention >= RETENTION_FLOOR:
        return f"met ({100 * retention:.0f}% of peak retained)"
    last = results["latency_curve"][-1]
    message = (f"{last['clients']}-client throughput retains only "
               f"{100 * retention:.0f}% of the "
               f"{results['saturation_throughput_rps']:.0f} rps peak "
               f"at {results['knee_clients']} clients "
               f"(floor {100 * RETENTION_FLOOR:.0f}%)")
    print(f"warning: {message} [visibility only; serve --shards N "
          f"is the fix]")
    return f"MISSED ({100 * retention:.0f}% retained)"


def _assert_reduction(results: Dict) -> str:
    """Enforce the coalescing floor (warning-only under CI)."""
    reduction = results["singleflight"]["read_reduction"]
    if reduction >= REDUCTION_FLOOR:
        return f"met ({100 * reduction:.0f}%)"
    message = (f"single-flight coalesced only "
               f"{100 * reduction:.0f}% of index reads "
               f"(floor {100 * REDUCTION_FLOOR:.0f}%)")
    if os.environ.get("CI"):
        print(f"warning: {message} [not enforced under CI]")
        return f"MISSED under CI ({100 * reduction:.0f}%)"
    raise AssertionError(message)


def run_serving_bench(record: Callable[[str, str, object], None],
                      intervals: int = INTERVALS,
                      per_interval: int = CLUSTERS_PER_INTERVAL,
                      pool: int = KEYWORD_POOL,
                      requests_per_client: int = REQUESTS_PER_CLIENT,
                      batch_requests_per_client: int =
                      BATCH_REQUESTS_PER_CLIENT,
                      hammer_clusters: int = HAMMER_CLUSTERS) -> dict:
    """Build an index, then equivalence -> curve -> batching."""
    directory = tempfile.mkdtemp(prefix="repro-bench-serving-")
    try:
        build_index(directory, intervals, per_interval, pool)
        with ClusterServer(directory,
                           max_inflight=128).start() as server:
            checked = bench_equivalence(record, directory,
                                        server.url, pool)
        curve = bench_latency_curve(record, directory, pool,
                                    requests_per_client)
        singleflight = bench_singleflight(
            record, max(CONCURRENCIES), batch_requests_per_client,
            hammer_clusters)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    saturation = max(point["throughput_rps"] for point in curve)
    final = curve[-1]["throughput_rps"]
    results = {
        "workload": {
            "intervals": intervals,
            "clusters_per_interval": per_interval,
            "keyword_pool": pool,
            "requests_per_client": requests_per_client,
        },
        "answers_checked": checked,
        "answers_identical": True,
        "latency_curve": curve,
        "saturation_throughput_rps": saturation,
        "knee_clients": next(point["clients"] for point in curve
                             if point["throughput_rps"]
                             == saturation),
        "final_throughput_rps": final,
        "saturation_retention":
            round(final / saturation, 3) if saturation else 0.0,
        "singleflight": singleflight,
    }
    results["retention_floor"] = _check_retention(results)
    return results


def test_serving_load_benchmark(series) -> None:
    """Benchmark entry point under pytest: equivalence always,
    coalescing floor asserted, latency curve reported."""
    results = run_serving_bench(series, **SMOKE_SCALE)
    assert len(results["latency_curve"]) == len(CONCURRENCIES)
    assert all("scaling_efficiency" in point
               for point in results["latency_curve"])
    outcome = _assert_reduction(results)
    series("Serving load: single-flight batching",
           "reduction floor", outcome)
    series("Serving load: latency curve", "retention floor",
           results["retention_floor"])


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone smoke/JSON mode for CI (no pytest required)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small shapes for CI smoke runs")
    parser.add_argument("--json", metavar="PATH",
                        help="write the perf-trajectory figures as "
                             "JSON (the BENCH_serving.json artifact)")
    args = parser.parse_args(argv)
    rows: List[str] = []

    def record(experiment: str, label: str, value) -> None:
        rows.append(f"{experiment}: {label:<16} {value}")

    scale = dict(SMOKE_SCALE) if args.smoke else {}
    results = run_serving_bench(record, **scale)
    for row in rows:
        print(row)
    outcome = _assert_reduction(results)
    if args.json:
        from _json import write_bench_json
        write_bench_json(args.json, "serving", results)
        print(f"wrote {args.json}")
    top = results["latency_curve"][-1]
    print(f"serving load benchmark: answers identical, "
          f"reduction floor {outcome}, "
          f"retention floor {results['retention_floor']}, "
          f"{top['clients']} clients p95 {top['p95_ms']:.2f}ms, "
          f"saturation {results['saturation_throughput_rps']:.0f} "
          f"req/s")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
