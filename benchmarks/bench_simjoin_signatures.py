"""Two-level signature join: candidate reduction, equivalence, JSON.

The similarity-join kernel (see docs/architecture.md, "Similarity
join internals") layers a per-set signature — length band + checksum
band — over the exact prefix filter, rejecting candidate pairs before
exact verification.  This benchmark is the refactor's gate:

* **reduction** — the share of prefix-filter candidates the second
  level rejects must reach ``REDUCTION_FLOOR`` on a near-duplicate
  workload (sets of diverse sizes, a quarter of each interval
  perturbed copies of the previous one);
* **equivalence** — verified join results must be byte-identical
  across the prefix-only baseline, the two-level batch join, the
  streaming window join (incremental frequency tracker engaged), and
  the partitioned-parallel driver on 2 worker processes;
* **trajectory** — ``--json PATH`` writes the headline figures
  (candidate pairs, verified pairs, join throughput, p95 window-join
  latency) as the repo-root ``BENCH_simjoin.json`` artifact that
  ``make bench-json`` versions.

The reduction assertion is deterministic and always enforced locally;
under CI (``CI`` env var) a miss is reported as a warning instead,
matching ``bench_vocab_interning``.  Runs under pytest alongside the
paper benchmarks and standalone::

    PYTHONPATH=src python benchmarks/bench_simjoin_signatures.py --smoke
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.affinity.simjoin import JoinStats, threshold_jaccard_join
from repro.affinity.windowjoin import (
    WindowFrequencyTracker,
    window_affinity_edges,
)
from repro.parallel import ProcessExecutor

INTERVALS = 6
SETS_PER_INTERVAL = 250
UNIVERSE = 4000
THRESHOLD = 0.4
NEAR_DUPLICATE_RATE = 0.25

SMOKE_SCALE = dict(intervals=4, per_interval=120, universe=2500)

# The two-level filter must reject at least this share of the prefix
# filter's candidate pairs — the acceptance floor of the refactor.
REDUCTION_FLOOR = 0.40

PARALLEL_WORKERS = 2


def signature_workload(intervals: int = INTERVALS,
                       per_interval: int = SETS_PER_INTERVAL,
                       universe: int = UNIVERSE,
                       seed: int = 7) -> List[List[frozenset]]:
    """Per-interval interned-id sets with a near-duplicate stream.

    Tokens are drawn Zipf-ish (low ids frequent, like interned
    keyword ids under a real vocabulary); set sizes span 8–40 so the
    length band has real work, and a quarter of each interval's sets
    are ~20%-perturbed copies of the previous interval's — the pairs
    the join must keep.
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 30) for rank in range(universe)]
    population = range(universe)

    def draw_set(size: int) -> frozenset:
        out: set = set()
        while len(out) < size:
            out.update(rng.choices(population, weights=weights,
                                   k=size - len(out)))
        return frozenset(out)

    result: List[List[frozenset]] = []
    previous: List[frozenset] = []
    for _ in range(intervals):
        current: List[frozenset] = []
        for _ in range(per_interval):
            if previous and rng.random() < NEAR_DUPLICATE_RATE:
                base = previous[rng.randrange(len(previous))]
                kept = frozenset(
                    token for token in base if rng.random() > 0.2)
                current.append(
                    kept | draw_set(max(1, len(base) // 8)))
            else:
                current.append(draw_set(rng.randint(8, 40)))
        result.append(current)
        previous = current
    return result


def bench_batch_join(record, intervals: List[List[frozenset]]
                     ) -> Tuple[JoinStats, Dict, float]:
    """Two-level vs prefix-only batch join over consecutive interval
    pairs: byte-identical results asserted, reduction + throughput
    measured."""
    experiment = "Two-level simjoin: batch"
    stats = JoinStats()
    results: Dict[int, List] = {}
    started = time.perf_counter()
    for m in range(1, len(intervals)):
        results[m] = threshold_jaccard_join(
            intervals[m - 1], intervals[m], THRESHOLD, stats=stats)
    two_level_seconds = time.perf_counter() - started

    baseline = JoinStats()
    started = time.perf_counter()
    for m in range(1, len(intervals)):
        prefix_only = threshold_jaccard_join(
            intervals[m - 1], intervals[m], THRESHOLD, stats=baseline,
            two_level=False)
        # The equivalence bar: the signature level may only reject
        # pairs the verifier would have rejected anyway.
        assert prefix_only == results[m], (
            f"two-level join diverged from prefix-only on interval "
            f"pair ({m - 1}, {m})")
    baseline_seconds = time.perf_counter() - started

    assert baseline.verified_pairs == baseline.candidate_pairs
    assert stats.candidate_pairs == baseline.candidate_pairs
    throughput = (stats.candidate_pairs / two_level_seconds
                  if two_level_seconds else float("inf"))
    record(experiment, "candidate pairs", stats.candidate_pairs)
    record(experiment, "verified pairs",
           f"{stats.verified_pairs} (prefix-only verifies "
           f"{baseline.verified_pairs})")
    record(experiment, "rejected length/band",
           f"{stats.length_rejected}/{stats.band_rejected}")
    record(experiment, "result pairs", stats.result_pairs)
    record(experiment, "reduction",
           f"{100 * stats.reduction:.0f}% (floor "
           f"{100 * REDUCTION_FLOOR:.0f}%)")
    record(experiment, "two-level/prefix-only time",
           f"{two_level_seconds:.3f}s / {baseline_seconds:.3f}s")
    return stats, results, throughput


def _expected_edges(batch_results: Dict[int, List]) -> Dict[int, List]:
    """The window-join edge lists batch results imply: matches with
    weight strictly above θ, owners in the previous interval."""
    return {m: [((m - 1, a), b, w) for a, b, w in matches
                if w > THRESHOLD]
            for m, matches in batch_results.items()}


def bench_streaming_driver(record, intervals: List[List[frozenset]],
                           batch_results: Dict[int, List]
                           ) -> Tuple[float, JoinStats]:
    """The serial streaming window join with its incremental frequency
    tracker: byte-identical edges asserted per interval, p95 ingest
    latency measured."""
    experiment = "Two-level simjoin: streaming driver"
    tracker = WindowFrequencyTracker()
    stats = JoinStats()
    expected = _expected_edges(batch_results)
    latencies: List[float] = []
    for m in range(1, len(intervals)):
        window = [(tuple((m - 1, a)
                         for a in range(len(intervals[m - 1]))),
                   intervals[m - 1])]
        started = time.perf_counter()
        edges = window_affinity_edges(
            window, intervals[m], theta=THRESHOLD, use_simjoin=True,
            frequency_tracker=tracker, join_stats=stats)
        latencies.append(time.perf_counter() - started)
        assert edges == expected[m], (
            f"streaming window join diverged from the batch join at "
            f"interval {m}")
    latencies.sort()
    p95 = latencies[min(len(latencies) - 1,
                        int(round(0.95 * len(latencies))))]
    record(experiment, "p95 window-join latency",
           f"{p95 * 1000:.1f}ms over {len(latencies)} ingests")
    record(experiment, "verified pairs", stats.verified_pairs)
    return p95, stats


def bench_partitioned_driver(record,
                             intervals: List[List[frozenset]],
                             batch_results: Dict[int, List]) -> None:
    """The partitioned-parallel window join on 2 worker processes:
    merged edges must be byte-identical to the serial join's."""
    experiment = "Two-level simjoin: partitioned driver"
    expected = _expected_edges(batch_results)
    started = time.perf_counter()
    with ProcessExecutor(workers=PARALLEL_WORKERS) as executor:
        for m in range(1, len(intervals)):
            window = [(tuple((m - 1, a)
                             for a in range(len(intervals[m - 1]))),
                       intervals[m - 1])]
            edges = window_affinity_edges(
                window, intervals[m], theta=THRESHOLD,
                use_simjoin=True, executor=executor)
            assert edges == expected[m], (
                f"partitioned window join diverged from the batch "
                f"join at interval {m}")
    record(experiment, f"workers={PARALLEL_WORKERS} equivalence",
           f"identical edges, {time.perf_counter() - started:.3f}s")


def run_signature_bench(record: Callable[[str, str, object], None],
                        intervals: int = INTERVALS,
                        per_interval: int = SETS_PER_INTERVAL,
                        universe: int = UNIVERSE) -> dict:
    """All three drivers; returns the perf-trajectory figures."""
    workload = signature_workload(intervals, per_interval, universe)
    stats, batch_results, throughput = bench_batch_join(record,
                                                        workload)
    p95, _ = bench_streaming_driver(record, workload, batch_results)
    bench_partitioned_driver(record, workload, batch_results)
    return {
        "workload": {
            "intervals": intervals,
            "sets_per_interval": per_interval,
            "universe": universe,
            "threshold": THRESHOLD,
        },
        "candidate_pairs": stats.candidate_pairs,
        "verified_pairs": stats.verified_pairs,
        "length_rejected": stats.length_rejected,
        "band_rejected": stats.band_rejected,
        "result_pairs": stats.result_pairs,
        "reduction": round(stats.reduction, 4),
        "reduction_floor": REDUCTION_FLOOR,
        "join_throughput_pairs_per_s": round(throughput, 1),
        "p95_window_join_ms": round(p95 * 1000, 2),
        "drivers_identical": True,
    }


def _assert_outcomes(results: dict) -> str:
    """Enforce the reduction floor (CI gets a warning instead, like
    bench_vocab_interning: shared runners should not fail the build
    on an environment hiccup after equivalence already passed)."""
    reduction = results["reduction"]
    if reduction < REDUCTION_FLOOR and os.environ.get("CI"):
        print(f"WARNING: candidate-pair reduction "
              f"{100 * reduction:.0f}% below the "
              f"{100 * REDUCTION_FLOOR:.0f}% floor — tolerated "
              f"under CI")
        return "tolerated"
    assert reduction >= REDUCTION_FLOOR, (
        f"two-level signatures rejected only {100 * reduction:.0f}% "
        f"of candidate pairs (floor {100 * REDUCTION_FLOOR:.0f}%)")
    return "held"


def test_simjoin_signatures_benchmark(series) -> None:
    """Benchmark entry point under pytest: equivalence always,
    reduction floor asserted, throughput reported."""
    results = run_signature_bench(series)
    outcome = _assert_outcomes(results)
    series("Two-level simjoin: batch", "reduction floor", outcome)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone smoke/JSON mode for CI (no pytest required)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small shapes for CI smoke runs")
    parser.add_argument("--json", metavar="PATH",
                        help="write the perf-trajectory figures as "
                             "JSON (the BENCH_simjoin.json artifact)")
    args = parser.parse_args(argv)
    rows: List[str] = []

    def record(experiment: str, label: str, value) -> None:
        rows.append(f"{experiment}: {label:<28} {value}")

    scale = dict(SMOKE_SCALE) if args.smoke else {}
    results = run_signature_bench(record, **scale)
    for row in rows:
        print(row)
    outcome = _assert_outcomes(results)
    if args.json:
        from _json import write_bench_json
        write_bench_json(args.json, "simjoin", results)
        print(f"wrote {args.json}")
    print(f"simjoin signature benchmark: drivers identical, "
          f"reduction floor {outcome} "
          f"({100 * results['reduction']:.0f}% of "
          f"{results['candidate_pairs']} candidates rejected, "
          f"p95 window join {results['p95_window_join_ms']:.1f}ms)")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
