"""Figure 9: BFS scalability — running time linear in n.

Paper: top-5 full paths, d=5, g=1, m in {25, 50}, n from 2000 to
14000; "running times are linear in the number of nodes, establishing
scalability".

Scaled to n from 50 to 400 (pure Python).  Asserted shape: time grows
close to linearly — the measured time ratio between the largest and
smallest n stays well below the quadratic ratio.
"""

from __future__ import annotations

import pytest

from repro.core import bfs_stable_clusters
from repro.datagen import synthetic_cluster_graph

NS = [50, 100, 200, 400]
MS = [15, 25]
D, G, K = 5, 1, 5

_TIMES = {}


@pytest.mark.parametrize("m", MS)
@pytest.mark.parametrize("n", NS)
def test_fig9_bfs_scalability(benchmark, series, m, n):
    graph = synthetic_cluster_graph(m=m, n=n, d=D, g=G, seed=909)
    paths = benchmark.pedantic(
        lambda: bfs_stable_clusters(graph, l=m - 1, k=K),
        rounds=1, iterations=1)
    assert len(paths) == K
    _TIMES[(m, n)] = benchmark.stats["mean"]
    series("Figure 9 (BFS vs n, seconds)",
           f"m={m} n={n} ({graph.num_edges} edges)",
           benchmark.stats["mean"])


def test_fig9_linear_shape(shape):
    if len(_TIMES) < len(NS) * len(MS):
        pytest.skip("run the full module to check shapes")

    def check():
        for m in MS:
            small = _TIMES[(m, NS[0])]
            large = _TIMES[(m, NS[-1])]
            n_ratio = NS[-1] / NS[0]           # 8x nodes
            time_ratio = large / max(small, 1e-9)
            # Linear would be ~8x; quadratic ~64x.  Allow a wide band
            # for constant overheads but rule out superlinear blowup.
            assert time_ratio < n_ratio * 3.5, (
                f"m={m}: {time_ratio:.1f}x time for {n_ratio:.0f}x "
                f"nodes")
        # The m=25 series should dominate m=15 at equal n.
        assert _TIMES[(25, NS[-1])] > _TIMES[(15, NS[-1])]

    shape(check)
