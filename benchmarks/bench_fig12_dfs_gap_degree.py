"""Figure 12: DFS sensitivity to gap size and average out degree.

Paper: m=6, n=400, top-5 full paths; "as the average out degree or gap
size increases, the number of edges increases, directly affecting the
running time"; DFS is *more* sensitive to g than BFS (more than 2x
from g=0 to g=2, vs BFS's mild growth in Figure 7).

Scaled to n=100.  Asserted shapes: DFS cost grows with d at every g,
grows with g at the largest d, and the relative g=0 -> g=2 growth of
DFS exceeds that of BFS.
"""

from __future__ import annotations

import pytest

from repro.core import bfs_stable_clusters, dfs_stable_clusters
from repro.datagen import synthetic_cluster_graph

DEGREES = [2, 4, 6, 8]
GAPS = [0, 1, 2]
M, N, K = 6, 100, 5

_DFS_TIMES = {}
_BFS_TIMES = {}


@pytest.mark.parametrize("g", GAPS)
@pytest.mark.parametrize("d", DEGREES)
def test_fig12_dfs(benchmark, series, d, g):
    graph = synthetic_cluster_graph(m=M, n=N, d=d, g=g, seed=1212)
    paths = benchmark.pedantic(
        lambda: dfs_stable_clusters(graph, l=M - 1, k=K),
        rounds=1, iterations=1)
    assert len(paths) == K
    _DFS_TIMES[(g, d)] = benchmark.stats["mean"]
    series("Figure 12 (DFS vs d per gap, seconds)",
           f"g={g} d={d} ({graph.num_edges} edges)",
           benchmark.stats["mean"])


@pytest.mark.parametrize("g", GAPS)
def test_fig12_bfs_reference(benchmark, g):
    """BFS on the same graphs, for the g-sensitivity comparison the
    paper draws between Figure 12 and Figure 7."""
    graph = synthetic_cluster_graph(m=M, n=N, d=DEGREES[-1], g=g,
                                    seed=1212)
    benchmark.pedantic(lambda: bfs_stable_clusters(graph, l=M - 1, k=K),
                       rounds=2, iterations=1)
    _BFS_TIMES[g] = benchmark.stats["mean"]


def test_fig12_shapes(series, shape):
    if len(_DFS_TIMES) < len(GAPS) * len(DEGREES) or len(_BFS_TIMES) < 3:
        pytest.skip("run the full module to check shapes")

    def check():
        for g in GAPS:
            assert _DFS_TIMES[(g, DEGREES[-1])] > \
                _DFS_TIMES[(g, DEGREES[0])]
        assert _DFS_TIMES[(2, DEGREES[-1])] > \
            _DFS_TIMES[(0, DEGREES[-1])]
        dfs_growth = (_DFS_TIMES[(2, DEGREES[-1])]
                      / _DFS_TIMES[(0, DEGREES[-1])])
        bfs_growth = _BFS_TIMES[2] / _BFS_TIMES[0]
        series("Figure 12 (DFS vs d per gap, seconds)",
               f"shape: g=0->2 wall-clock growth DFS {dfs_growth:.2f}x "
               f"vs BFS {bfs_growth:.2f}x", "")
        # Paper: "the DFS based algorithm is more sensitive towards g
        # than the BFS based algorithm".  Wall-clock growth ratios sit
        # within timer noise of each other at this scale, so the claim
        # is asserted on deterministic work counters: BFS work per
        # edge is constant in g, while the DFS performs strictly more
        # node reads *per edge* as g grows (re-arrivals multiply).
        from repro.core import DFSStats, dfs_stable_clusters
        from repro.datagen import synthetic_cluster_graph
        reads_per_edge = {}
        for g in (0, 2):
            graph = synthetic_cluster_graph(m=M, n=N, d=DEGREES[-1],
                                            g=g, seed=1212)
            stats = DFSStats()
            dfs_stable_clusters(graph, l=M - 1, k=K, stats=stats)
            reads_per_edge[g] = stats.node_reads / graph.num_edges
        series("Figure 12 (DFS vs d per gap, seconds)",
               f"shape: DFS node reads per edge g=0: "
               f"{reads_per_edge[0]:.2f} -> g=2: "
               f"{reads_per_edge[2]:.2f} (BFS: constant)", "")
        assert reads_per_edge[2] > reads_per_edge[0]

    shape(check)
