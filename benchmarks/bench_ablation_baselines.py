"""Ablation: Art (biconnected components) vs the Section 2 baselines.

The paper dismisses network-flow cut clustering ("six hours ... on a
graph with a few thousand edges and vertices") and correlation
clustering ("far from practical") in favour of the articulation-point
algorithm.  This ablation reruns that comparison at laptop scale on a
pruned keyword graph with planted events, measuring wall time and
event-recovery quality (exact-set recovery and best-cluster F1).
"""

from __future__ import annotations

import pytest

from repro.baselines import cut_clustering, kwik_cluster
from repro.datagen import (
    BlogosphereGenerator,
    Event,
    EventSchedule,
    ZipfVocabulary,
)
from repro.graph import extract_clusters
from repro.cooccur import KeywordGraph
from repro.text import stem

EVENTS = {
    "beckham": ["beckham", "galaxy", "madrid", "soccer"],
    "stemcell": ["stem", "cell", "amniotic", "research"],
    "somalia": ["somalia", "mogadishu", "ethiopian", "islamist"],
}


@pytest.fixture(scope="module")
def pruned_graph():
    schedule = EventSchedule()
    for name, words in EVENTS.items():
        schedule.add(Event.burst(name, words, 0, 70))
    vocab = ZipfVocabulary(3000, seed=41)
    generator = BlogosphereGenerator(vocab, schedule,
                                     background_posts=700, seed=42)
    corpus = generator.generate_corpus(1)
    keyword_sets = [doc.keywords() for doc in corpus.documents(0)]
    return KeywordGraph.from_keyword_sets(keyword_sets).prune()


def _best_f1(clusters, truth: frozenset) -> float:
    best = 0.0
    for cluster in clusters:
        overlap = len(truth & cluster)
        if not overlap:
            continue
        precision = overlap / len(cluster)
        recall = overlap / len(truth)
        best = max(best, 2 * precision * recall / (precision + recall))
    return best


def _mean_event_f1(vertex_sets) -> float:
    scores = []
    for words in EVENTS.values():
        truth = frozenset(stem(w) for w in words)
        scores.append(_best_f1(vertex_sets, truth))
    return sum(scores) / len(scores)


def test_art_biconnected(benchmark, series, pruned_graph):
    clusters = benchmark(lambda: extract_clusters(pruned_graph))
    f1 = _mean_event_f1([set(c.keywords) for c in clusters])
    series("Ablation: clustering algorithms",
           f"Art (biconnected): {len(clusters)} clusters, "
           f"event F1={f1:.2f}", benchmark.stats["mean"])
    assert f1 == 1.0, "Art must recover every planted event exactly"


def test_cut_clustering_baseline(benchmark, series, pruned_graph):
    clusters = benchmark.pedantic(
        lambda: cut_clustering(pruned_graph, alpha=0.3),
        rounds=1, iterations=1)
    f1 = _mean_event_f1(clusters)
    series("Ablation: clustering algorithms",
           f"cut clustering (alpha=0.3): {len(clusters)} clusters, "
           f"event F1={f1:.2f}", benchmark.stats["mean"])
    assert f1 > 0.3  # it finds something, at far higher cost


def test_kwik_cluster_baseline(benchmark, series, pruned_graph):
    clusters = benchmark(
        lambda: kwik_cluster(pruned_graph, positive_threshold=0.2,
                             seed=7))
    f1 = _mean_event_f1(clusters)
    series("Ablation: clustering algorithms",
           f"KwikCluster: {len(clusters)} clusters, "
           f"event F1={f1:.2f}", benchmark.stats["mean"])
    assert f1 > 0.3


def test_flake_impracticality_shape(series, shape, pruned_graph):
    """The paper's practicality claim: per-unit-work, max-flow cut
    clustering costs orders of magnitude more than Art."""
    import time

    def check():
        start = time.perf_counter()
        extract_clusters(pruned_graph)
        art_seconds = time.perf_counter() - start

        start = time.perf_counter()
        cut_clustering(pruned_graph, alpha=0.3)
        flake_seconds = time.perf_counter() - start

        series("Ablation: clustering algorithms",
               f"shape: cut clustering / Art = "
               f"{flake_seconds / max(art_seconds, 1e-9):.0f}x slower",
               "")
        assert flake_seconds > art_seconds

    shape(check)
