"""Table 3: BFS vs DFS vs TA, top-5 full paths, growing m.

Paper (n=400, g=0, d=5; seconds):

    m      3      6      9      12     15
    BFS    0.65   2.09   4.49   7.95   12.49
    DFS    60.3   368.8  754.8  805.94 792.05
    TA     0.35   11.11  133.89 > 10 hours

Scaled to n=100, d=3 and m in {3, 6, 9} (pure Python); the DFS runs
against a real on-disk node store, which is the paper's configuration
(annotations on disk, page cache disabled).  Shapes reproduced and
asserted:

* BFS is roughly linear in m;
* DFS costs far more I/O (one random read per child consideration);
* TA is competitive at m=3 and explodes by m=9 (its probe count is
  exponential in m).
"""

from __future__ import annotations

import pytest

from repro.datagen import synthetic_cluster_graph
from repro.engine import StableQuery, get_solver
from repro.storage import DiskDict

MS = [3, 6, 9]
N, D, G, K = 100, 3, 0, 5

_TIMES = {}


def _graph(m):
    return synthetic_cluster_graph(m=m, n=N, d=D, g=G, seed=303)


def _query():
    return StableQuery(problem="kl", l=None, k=K, gap=G)


@pytest.mark.parametrize("m", MS)
def test_table3_bfs(benchmark, series, engine_solve, m):
    graph = _graph(m)
    report = benchmark(
        lambda: engine_solve("bfs", graph, _query()))
    assert len(report.paths) == K
    _TIMES[("BFS", m)] = benchmark.stats["mean"]
    series("Table 3 (top-5 full paths, seconds)",
           f"BFS m={m}", benchmark.stats["mean"])


@pytest.mark.parametrize("m", MS)
def test_table3_dfs_disk(benchmark, series, engine_solve, tmp_path, m):
    graph = _graph(m)
    stats = get_solver("dfs").new_stats()

    def run():
        with DiskDict(str(tmp_path / f"dfs-{m}.bin")) as store:
            return engine_solve("dfs", graph, _query(),
                                backend=store, stats=stats)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(report.paths) == K
    _TIMES[("DFS", m)] = benchmark.stats["mean"]
    series("Table 3 (top-5 full paths, seconds)",
           f"DFS m={m} (disk store, {stats.node_reads} random reads)",
           benchmark.stats["mean"])


@pytest.mark.parametrize("m", MS)
def test_table3_ta(benchmark, series, engine_solve, m):
    graph = _graph(m)
    stats = get_solver("ta").new_stats()
    report = benchmark.pedantic(
        lambda: engine_solve("ta", graph, _query(), stats=stats),
        rounds=1, iterations=1)
    assert len(report.paths) == K
    _TIMES[("TA", m)] = benchmark.stats["mean"]
    series("Table 3 (top-5 full paths, seconds)",
           f"TA  m={m} ({stats.random_probes} random probes)",
           benchmark.stats["mean"])


def test_table3_shapes(series, shape):
    """The paper's qualitative claims, asserted on the measurements."""
    if len(_TIMES) < 9:
        pytest.skip("run the full module to check shapes")

    def check():
        # BFS beats DFS-on-disk at every m (paper: by 1-2 orders).
        for m in MS:
            assert _TIMES[("BFS", m)] < _TIMES[("DFS", m)]
        # TA explodes with m: by m=9 it is far slower than BFS
        # (paper: 133.89s vs 4.49s; > 10 hours by m=12).
        assert _TIMES[("TA", 9)] > 5 * _TIMES[("BFS", 9)]
        # TA's exponential growth dwarfs BFS's linear growth.
        ta_growth = _TIMES[("TA", 9)] / max(_TIMES[("TA", 3)], 1e-9)
        bfs_growth = _TIMES[("BFS", 9)] / max(_TIMES[("BFS", 3)], 1e-9)
        assert ta_growth > bfs_growth
        series("Table 3 (top-5 full paths, seconds)",
               f"shape: TA grew {ta_growth:.0f}x vs BFS "
               f"{bfs_growth:.0f}x from m=3 to m=9", "")

    shape(check)
