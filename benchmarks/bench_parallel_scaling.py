"""Parallel cluster generation: speedup vs worker count.

The Section-3 procedure is embarrassingly parallel across intervals —
each one's co-occurrence counting, chi-square/ρ pruning, and
biconnected components read only its own documents.  This benchmark
replays a Figure-6-scale synthetic blogosphere (thousands of posts per
interval, planted events over background chatter) through
:func:`repro.pipeline.generate_corpus_clusters` serially and on
process pools of growing size, and reports the speedup.

Asserted shapes: parallel runs produce *identical* clusters to the
serial oracle at every worker count, and — on hardware with at least
two cores — a two-worker :class:`~repro.parallel.ProcessExecutor`
beats serial by >= 1.5x (per-interval work dominates pool start-up
at this corpus scale).  On a single-core machine the equivalence
checks still run and the speedup is reported without being asserted
(a process pool cannot beat serial with one core to schedule on).

Runs under pytest alongside the other paper benchmarks, and — because
the CI smoke job has no pytest — standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --smoke
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Optional

from repro.datagen import (
    BlogosphereGenerator,
    Event,
    EventSchedule,
    ZipfVocabulary,
)
from repro.parallel import ProcessExecutor, SerialExecutor
from repro.pipeline import generate_corpus_clusters

INTERVALS = 6
BACKGROUND_POSTS = 450
VOCABULARY = 3000
WORKER_COUNTS = [2, 4]

SMOKE_SCALE = dict(intervals=4, background=380, vocabulary=2200,
                   worker_counts=[2])

SPEEDUP_FLOOR = 1.5

# Wall-clock on shared CI runners is noisy; each configuration is
# timed up to this many times and the best run counts (load spikes
# only ever slow a run down, so best-of-N converges on the true cost).
TIMING_ATTEMPTS = 3


def figure6_scale_corpus(intervals: int = INTERVALS,
                         background: int = BACKGROUND_POSTS,
                         vocabulary: int = VOCABULARY):
    """A multi-interval corpus shaped like the Figure 6 workload:
    persistent planted events over Zipf background chatter."""
    schedule = (EventSchedule()
                .add(Event.persistent(
                    "somalia",
                    ["somalia", "mogadishu", "ethiopian", "islamist"],
                    0, intervals, 70))
                .add(Event.persistent(
                    "beckham",
                    ["beckham", "galaxy", "madrid", "soccer"],
                    0, intervals, 70)))
    vocab = ZipfVocabulary(vocabulary, seed=2007)
    generator = BlogosphereGenerator(vocab, schedule,
                                     background_posts=background,
                                     seed=2008)
    return generator.generate_corpus(intervals)


def _cluster_signature(interval_clusters):
    # Positional, not set-collapsed: duplicate clusters and ordering
    # differences must fail the equivalence assertion too.
    return [[c.keywords for c in interval]
            for interval in interval_clusters]


def run_scaling(record: Callable[[str, str, object], None],
                intervals: int = INTERVALS,
                background: int = BACKGROUND_POSTS,
                vocabulary: int = VOCABULARY,
                worker_counts: Optional[List[int]] = None) -> dict:
    """Time serial vs process-pool generation; return speedups."""
    worker_counts = worker_counts or WORKER_COUNTS
    corpus = figure6_scale_corpus(intervals, background, vocabulary)
    experiment = "Parallel cluster generation (speedup vs workers)"

    def best_of(make_executor):
        best = float("inf")
        outputs = None
        for _ in range(TIMING_ATTEMPTS):
            with make_executor() as executor:
                started = time.perf_counter()
                outputs = generate_corpus_clusters(corpus,
                                                   executor=executor)
                best = min(best, time.perf_counter() - started)
        return best, outputs

    serial_seconds, (baseline, reports) = best_of(SerialExecutor)
    oracle = _cluster_signature(baseline)
    merged = sum(report.num_documents for report in reports)
    record(experiment,
           f"serial: m={intervals} docs={merged}",
           f"{serial_seconds:.3f}s")

    speedups = {}
    for workers in worker_counts:
        elapsed, (clusters, _) = best_of(
            lambda: ProcessExecutor(workers=workers))
        # The guarantee parallelism must keep: identical clusters.
        assert _cluster_signature(clusters) == oracle
        speedups[workers] = serial_seconds / elapsed
        record(experiment, f"process x{workers}",
               f"{elapsed:.3f}s (best-of-{TIMING_ATTEMPTS}, "
               f"speedup {speedups[workers]:.2f}x)")
    return speedups


def _assert_speedup(speedups: dict) -> str:
    """Enforce the >= 1.5x floor when the hardware can deliver it.

    Returns the outcome: ``"held"``, ``"skipped"`` (single core), or
    ``"tolerated"`` — on shared CI runners (``CI`` env var set) a
    missed floor is reported as a warning instead of a failure:
    wall-clock under a noisy neighbor is not a code defect, and the
    cluster-equivalence assertions have already run unconditionally.
    """
    cores = os.cpu_count() or 1
    if cores < 2:
        return "skipped"
    floor_workers = min(speedups)
    if speedups[floor_workers] < SPEEDUP_FLOOR \
            and os.environ.get("CI"):
        print(f"WARNING: {floor_workers}-worker speedup "
              f"{speedups[floor_workers]:.2f}x below the "
              f"{SPEEDUP_FLOOR}x floor on {cores} cores — tolerated "
              f"under CI (shared-runner timing noise)")
        return "tolerated"
    assert speedups[floor_workers] >= SPEEDUP_FLOOR, (
        f"{floor_workers}-worker ProcessExecutor managed only "
        f"{speedups[floor_workers]:.2f}x over serial on {cores} cores "
        f"(floor {SPEEDUP_FLOOR}x)")
    return "held"


def test_parallel_generation_speedup(series) -> None:
    """Benchmark entry point under pytest: equivalence always,
    speedup floor on multi-core hardware."""
    speedups = run_scaling(series)
    outcome = _assert_speedup(speedups)
    if outcome != "held":
        series("Parallel cluster generation (speedup vs workers)",
               "speedup floor", outcome)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone smoke mode for CI (no pytest required)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small shapes for CI smoke runs")
    parser.add_argument("--workers", type=int, default=None,
                        metavar="N",
                        help="benchmark a single worker count "
                             "instead of the default sweep")
    args = parser.parse_args(argv)
    rows: List[str] = []

    def record(experiment: str, label: str, value) -> None:
        rows.append(f"{experiment}: {label:<28} {value}")

    scale = dict(SMOKE_SCALE) if args.smoke else {}
    if args.workers is not None:
        scale["worker_counts"] = [args.workers]
    speedups = run_scaling(record, **scale)
    for row in rows:
        print(row)
    outcome = _assert_speedup(speedups)
    closings = {
        "held": f"parallel scaling benchmark: clusters identical, "
                f"speedup floor {SPEEDUP_FLOOR}x held",
        "tolerated": "parallel scaling benchmark: clusters identical "
                     "(floor missed; tolerated under CI timing noise)",
        "skipped": "parallel scaling benchmark: clusters identical "
                   "(single core: speedup reported, floor not "
                   "asserted)",
    }
    print(closings[outcome])
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
