"""Figure 6: running time of cluster generation vs the ρ threshold.

Paper: the whole procedure (read raw data, chi-square test, ρ pruning,
Art algorithm for biconnected components) on the Jan 6 graph; "as ρ
increases, time decreases drastically since the number of edges and
vertices remaining in the graph decreases due to pruning".

At the paper's scale (138M raw edges) the Art phase on the surviving
graph dominates, which is what makes the curve fall.  At our synthetic
scale the constant-in-ρ chi-square/ρ pass dominates instead, so this
benchmark times the two parts separately: the full procedure (for the
record) and the ρ-dependent tail (graph materialization + Art), whose
falling shape is asserted.
"""

from __future__ import annotations

import pytest

from repro.cooccur import KeywordGraph
from repro.cooccur.keyword_graph import PruneReport
from repro.datagen import (
    BlogosphereGenerator,
    Event,
    EventSchedule,
    ZipfVocabulary,
)
from repro.graph import extract_clusters

RHOS = [0.2, 0.3, 0.5, 0.7, 0.9]

_ART_TIMES = {}
_SURVIVORS = {}


@pytest.fixture(scope="module")
def keyword_graph():
    schedule = (EventSchedule()
                .add(Event.burst("somalia",
                                 ["somalia", "mogadishu", "ethiopian",
                                  "islamist"], 0, 80))
                .add(Event.burst("beckham",
                                 ["beckham", "galaxy", "madrid",
                                  "soccer"], 0, 80)))
    vocab = ZipfVocabulary(4000, seed=661)
    generator = BlogosphereGenerator(vocab, schedule,
                                     background_posts=900, seed=662)
    corpus = generator.generate_corpus(1)
    keyword_sets = [doc.keywords() for doc in corpus.documents(0)]
    return KeywordGraph.from_keyword_sets(keyword_sets)


@pytest.fixture(scope="module")
def pruned_graphs(keyword_graph):
    graphs = {}
    for rho in RHOS:
        report = PruneReport()
        graphs[rho] = (keyword_graph.prune(rho_threshold=rho,
                                           report=report), report)
    return graphs


@pytest.mark.parametrize("rho", RHOS)
def test_fig6_full_procedure(benchmark, series, keyword_graph, rho):
    """Chi-square + rho pruning + Art, end to end (the paper's y-axis)."""
    report = PruneReport()

    def full():
        pruned = keyword_graph.prune(rho_threshold=rho, report=report)
        return extract_clusters(pruned)

    clusters = benchmark.pedantic(full, rounds=3, iterations=1)
    series("Figure 6 (cluster generation vs rho)",
           f"full: rho={rho} edges_after_rho={report.after_rho} "
           f"clusters={len(clusters)}", benchmark.stats["mean"])
    _SURVIVORS[rho] = report.after_rho


@pytest.mark.parametrize("rho", RHOS)
def test_fig6_art_phase(benchmark, series, pruned_graphs, rho):
    """The rho-dependent tail: Art on the surviving graph — the part
    whose cost falls 'drastically' in the paper's figure."""
    pruned, report = pruned_graphs[rho]
    clusters = benchmark(lambda: extract_clusters(pruned))
    _ART_TIMES[rho] = benchmark.stats["mean"]
    series("Figure 6 (cluster generation vs rho)",
           f"Art only: rho={rho} vertices={pruned.num_vertices} "
           f"edges={pruned.num_edges}", benchmark.stats["mean"])


def test_fig6_shapes(shape):
    if len(_ART_TIMES) < len(RHOS) or len(_SURVIVORS) < len(RHOS):
        pytest.skip("run the full module to check shapes")

    def check():
        survivors = [_SURVIVORS[rho] for rho in RHOS]
        assert survivors == sorted(survivors, reverse=True)
        assert survivors[-1] < survivors[0]
        # Art cost falls as rho rises (paper's drastically-decreasing
        # curve); compare the extremes for robustness to timer noise.
        assert _ART_TIMES[RHOS[-1]] < _ART_TIMES[RHOS[0]]

    shape(check)
