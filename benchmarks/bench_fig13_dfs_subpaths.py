"""Figure 13: DFS seeking top-5 subpaths of length l.

Paper: m=6, d=5, g=1; "running times increase with increasing l and
n".  The per-node cost of the DFS grows with l because each node
maintains maxweight/bestpaths structures for up to l lengths.

Deviation (documented in docs/architecture.md): our DFS pruning
rule never prunes a node that could still *start* a top-k path —
required for correctness, verified against brute force — and with
small l most nodes are potential starts, so the *pruned* DFS gets
cheaper as l grows (more nodes become prunable).  The paper's
increasing-in-l shape is the per-node structure cost, which the
unpruned DFS isolates; both series are reported, and the paper's
shape is asserted on the unpruned one.
"""

from __future__ import annotations

import pytest

from repro.core import DFSStats, dfs_stable_clusters
from repro.datagen import synthetic_cluster_graph

NS = [50, 100]
LS = [2, 3, 4]
M, D, G, K = 6, 5, 1, 5

_TIMES = {}


@pytest.mark.parametrize("prune", [False, True],
                         ids=["unpruned", "pruned"])
@pytest.mark.parametrize("l", LS)
@pytest.mark.parametrize("n", NS)
def test_fig13_dfs_subpaths(benchmark, series, n, l, prune):
    graph = synthetic_cluster_graph(m=M, n=n, d=D, g=G, seed=1313)
    stats = DFSStats()
    paths = benchmark.pedantic(
        lambda: dfs_stable_clusters(graph, l=l, k=K, prune=prune,
                                    stats=stats),
        rounds=1, iterations=1)
    assert len(paths) == K
    _TIMES[(prune, n, l)] = benchmark.stats["mean"]
    label = "pruned" if prune else "unpruned"
    series("Figure 13 (DFS subpaths, seconds)",
           f"{label} n={n} l={l} ({stats.merges} merges)",
           benchmark.stats["mean"])


def test_fig13_shapes(shape):
    if len(_TIMES) < 2 * len(NS) * len(LS):
        pytest.skip("run the full module to check shapes")

    def check():
        # Paper's shape on the structure-cost (unpruned) series: cost
        # grows with l at every n, and with n where the work dwarfs
        # fixed overheads (the largest l; at l=2 the runs are a few
        # hundred milliseconds and timer noise dominates).
        for n in NS:
            assert _TIMES[(False, n, LS[-1])] > \
                _TIMES[(False, n, LS[0])]
        assert _TIMES[(False, NS[-1], LS[-1])] > \
            _TIMES[(False, NS[0], LS[-1])]

    shape(check)
