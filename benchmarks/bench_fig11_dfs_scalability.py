"""Figure 11: DFS running time vs m and n (top-5 full paths).

Paper: g=1, d=5, m and n varying; DFS grows with both, and much more
steeply than BFS does (the number of edges is proportional to n*d and
every edge costs a random node-store read).

Scaled to n in {50, 100, 200}, m in {3, 6, 9}, d=3.  Asserted shapes:
cost grows with n at fixed m and with m at fixed n.
"""

from __future__ import annotations

import pytest

from repro.core import DFSStats, dfs_stable_clusters
from repro.datagen import synthetic_cluster_graph

NS = [50, 100, 200]
MS = [3, 6, 9]
D, G, K = 3, 1, 5

_TIMES = {}


@pytest.mark.parametrize("m", MS)
@pytest.mark.parametrize("n", NS)
def test_fig11_dfs(benchmark, series, m, n):
    graph = synthetic_cluster_graph(m=m, n=n, d=D, g=G, seed=1111)
    stats = DFSStats()
    paths = benchmark.pedantic(
        lambda: dfs_stable_clusters(graph, l=m - 1, k=K, stats=stats),
        rounds=1, iterations=1)
    assert len(paths) == K
    _TIMES[(m, n)] = benchmark.stats["mean"]
    series("Figure 11 (DFS vs m and n, seconds)",
           f"m={m} n={n} ({stats.node_reads} node reads, "
           f"{stats.prunes} prunes)",
           benchmark.stats["mean"])


def test_fig11_shapes(shape):
    if len(_TIMES) < len(NS) * len(MS):
        pytest.skip("run the full module to check shapes")

    def check():
        for m in MS:
            assert _TIMES[(m, NS[-1])] > _TIMES[(m, NS[0])]
        assert _TIMES[(MS[-1], NS[-1])] > _TIMES[(MS[0], NS[-1])]

    shape(check)
