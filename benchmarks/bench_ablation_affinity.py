"""Ablation: affinity-measure choice for the cluster graph.

Section 4 leaves the affinity function open (intersection, Jaccard, or
correlation-weighted variants; "our framework can easily incorporate
any of these choices").  This ablation builds the same cluster
timeline under each measure and compares edge counts, normalization
behaviour, and whether the planted stable story is ranked first.
"""

from __future__ import annotations

import pytest

from repro.affinity import AFFINITY_MEASURES
from repro.core import bfs_stable_clusters
from repro.core.stability import build_cluster_graph
from repro.datagen import (
    BlogosphereGenerator,
    Event,
    EventSchedule,
    ZipfVocabulary,
)
from repro.pipeline import generate_interval_clusters
from repro.text import stem

SOMALIA = ["somalia", "mogadishu", "ethiopian", "islamist"]


@pytest.fixture(scope="module")
def interval_clusters():
    schedule = EventSchedule().add(
        Event.persistent("somalia", SOMALIA, 0, 4, 70))
    vocab = ZipfVocabulary(3000, seed=61)
    generator = BlogosphereGenerator(vocab, schedule,
                                     background_posts=600, seed=62)
    corpus = generator.generate_corpus(4)
    return [generate_interval_clusters(corpus, i) for i in range(4)]


@pytest.mark.parametrize("measure", sorted(AFFINITY_MEASURES))
def test_affinity_measure(benchmark, series, interval_clusters, measure):
    graph = benchmark(
        lambda: build_cluster_graph(interval_clusters,
                                    affinity=measure, theta=0.1,
                                    gap=0))
    paths = bfs_stable_clusters(graph, l=3, k=1)
    story_found = False
    if paths:
        somalia = frozenset(stem(w) for w in SOMALIA)
        story_found = all(
            somalia <= graph.payload(node).keywords
            for node in paths[0].nodes)
    series("Ablation: affinity measures",
           f"{measure}: {graph.num_edges} edges, "
           f"top-1 is planted story: {story_found}", "")
    # Every measure must keep weights normalized and find the story.
    assert all(0 < w <= 1.0 for _, _, w in graph.edges())
    assert story_found


def test_simjoin_matches_allpairs(series, shape, interval_clusters):
    """The prefix-filter join must build the identical Jaccard graph."""

    def check():
        all_pairs = build_cluster_graph(interval_clusters,
                                        affinity="jaccard", theta=0.1,
                                        gap=0, use_simjoin=False)
        joined = build_cluster_graph(interval_clusters,
                                     affinity="jaccard", theta=0.1,
                                     gap=0, use_simjoin=True)
        assert sorted(all_pairs.edges()) == sorted(joined.edges())
        series("Ablation: affinity measures",
               f"simjoin == all-pairs on {all_pairs.num_edges} edges",
               "")

    shape(check)
