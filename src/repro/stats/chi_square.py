"""Chi-square independence test for keyword pairs (Formula 1).

With one degree of freedom, χ² exceeds 3.84 only 5% of the time under
independence; the paper keeps an edge when χ² > 3.84 ("correlated at
the 95% confidence level").
"""

from __future__ import annotations

from repro.stats.contingency import Contingency

CHI2_CRITICAL_95 = 3.84


def chi_square_from_contingency(table: Contingency) -> float:
    """Formula 1: sum over the four cells of (E - A)^2 / E.

    Degenerate tables (a keyword in none or all documents) carry no
    evidence either way and score 0.0.
    """
    if table.degenerate:
        return 0.0
    total = 0.0
    cells = (
        (table.exp_uv, table.obs_uv),
        (table.exp_u_not_v, table.obs_u_not_v),
        (table.exp_not_u_v, table.obs_not_u_v),
        (table.exp_not_u_not_v, table.obs_not_u_not_v),
    )
    for expected, observed in cells:
        total += (expected - observed) ** 2 / expected
    return total


def chi_square(a_u: int, a_v: int, a_uv: int, n: int) -> float:
    """Chi-square statistic from the raw counts of Section 3."""
    return chi_square_from_contingency(Contingency(a_u, a_v, a_uv, n))


def is_significant(a_u: int, a_v: int, a_uv: int, n: int,
                   critical: float = CHI2_CRITICAL_95) -> bool:
    """True when the pair passes the paper's chi-square filter."""
    return chi_square(a_u, a_v, a_uv, n) > critical
