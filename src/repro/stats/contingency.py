"""2x2 contingency tables over document counts.

Everything Section 3 computes about a keyword pair ``(u, v)`` derives
from three counts and the collection size: ``A(u)`` (documents
containing u), ``A(v)``, ``A(u,v)`` (documents containing both), and
``n = |D|``.  ``Contingency`` holds these and exposes the four observed
cells and the four expected-under-independence cells used by the
chi-square test.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Contingency:
    """Counts for one keyword pair in one document collection."""

    a_u: int     # A(u): documents containing u
    a_v: int     # A(v): documents containing v
    a_uv: int    # A(u,v): documents containing both
    n: int       # |D|: documents in the collection

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"collection size must be positive, got {self.n}")
        if not (0 <= self.a_uv <= min(self.a_u, self.a_v)):
            raise ValueError(
                f"inconsistent counts: A(u,v)={self.a_uv} must be within "
                f"[0, min(A(u)={self.a_u}, A(v)={self.a_v})]")
        if max(self.a_u, self.a_v) > self.n:
            raise ValueError(
                f"marginals A(u)={self.a_u}, A(v)={self.a_v} cannot "
                f"exceed n={self.n}")
        if self.a_u + self.a_v - self.a_uv > self.n:
            raise ValueError(
                "union of documents containing u or v exceeds n")

    # Observed cells ---------------------------------------------------

    @property
    def obs_uv(self) -> int:
        """Documents containing both u and v."""
        return self.a_uv

    @property
    def obs_u_not_v(self) -> int:
        """Documents containing u but not v — the paper's A(u, v̄)."""
        return self.a_u - self.a_uv

    @property
    def obs_not_u_v(self) -> int:
        """Documents containing v but not u."""
        return self.a_v - self.a_uv

    @property
    def obs_not_u_not_v(self) -> int:
        """Documents containing neither."""
        return self.n - self.a_u - self.a_v + self.a_uv

    # Expected cells under independence ---------------------------------

    @property
    def exp_uv(self) -> float:
        """E(uv) = A(u) * A(v) / n."""
        return self.a_u * self.a_v / self.n

    @property
    def exp_u_not_v(self) -> float:
        """E(u, v̄) = A(u) * (n - A(v)) / n."""
        return self.a_u * (self.n - self.a_v) / self.n

    @property
    def exp_not_u_v(self) -> float:
        """E(ū, v) = (n - A(u)) * A(v) / n."""
        return (self.n - self.a_u) * self.a_v / self.n

    @property
    def exp_not_u_not_v(self) -> float:
        """E(ū, v̄) = (n - A(u)) * (n - A(v)) / n."""
        return (self.n - self.a_u) * (self.n - self.a_v) / self.n

    @property
    def degenerate(self) -> bool:
        """True when either keyword appears in no document or in all of
        them — the test and ρ are undefined (zero variance)."""
        return (self.a_u in (0, self.n)) or (self.a_v in (0, self.n))
