"""Keyword-association statistics (Section 3).

The paper filters keyword-graph edges in two stages:

1. a chi-square independence test at 95% confidence
   (:func:`~repro.stats.chi_square.chi_square`, Formula 1; the critical
   value 3.84 is :data:`CHI2_CRITICAL_95`), then
2. a correlation-coefficient strength threshold
   (:func:`~repro.stats.correlation.correlation_coefficient`,
   Formula 3; the paper uses ρ > 0.2).
"""

from repro.stats.chi_square import (
    CHI2_CRITICAL_95,
    chi_square,
    chi_square_from_contingency,
    is_significant,
)
from repro.stats.contingency import Contingency
from repro.stats.correlation import correlation_coefficient

__all__ = [
    "CHI2_CRITICAL_95",
    "Contingency",
    "chi_square",
    "chi_square_from_contingency",
    "correlation_coefficient",
    "is_significant",
]
