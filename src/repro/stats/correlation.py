"""Correlation coefficient between keyword indicators (Formula 3).

The paper rewrites the Pearson correlation of the binary appearance
indicators (Formula 2) using sum(A_i^2) = sum(A_i) into::

    rho(u, v) = (n*A(u,v) - A(u)*A(v))
                / sqrt((n - A(u)) * A(u)) / sqrt((n - A(v)) * A(v))

The chi-square test detects the *presence* of a correlation but grows
with n even for weak correlations; ρ measures its *strength*.  The
paper keeps edges with ρ > 0.2.
"""

from __future__ import annotations

import math


def correlation_coefficient(a_u: int, a_v: int, a_uv: int, n: int) -> float:
    """Formula 3; 0.0 for degenerate marginals (zero variance)."""
    if n <= 0:
        raise ValueError(f"collection size must be positive, got {n}")
    if not (0 <= a_uv <= min(a_u, a_v)) or max(a_u, a_v) > n:
        raise ValueError(
            f"inconsistent counts A(u)={a_u}, A(v)={a_v}, "
            f"A(u,v)={a_uv}, n={n}")
    var_u = (n - a_u) * a_u
    var_v = (n - a_v) * a_v
    if var_u == 0 or var_v == 0:
        return 0.0
    return (n * a_uv - a_u * a_v) / math.sqrt(var_u) / math.sqrt(var_v)
