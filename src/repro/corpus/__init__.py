"""Real-corpus ingestion: file formats -> interval documents.

The adapter seam between files on disk and the paper's pipelines.
:class:`CorpusAdapter` streams ``(interval, Document)`` pairs with an
:class:`IngestReport` of parsed/skipped/malformed/repaired counts;
:class:`IntervalBucketing` maps raw timestamps (years, months, epoch
seconds) onto dense interval indices.  Three concrete adapters ship:
:class:`DBLPAdapter` (incremental DBLP-style XML, constant memory),
:class:`JSONLAdapter`, and :class:`CSVAdapter` (configurable field
mapping).  ``repro.text.IntervalCorpus.from_adapter`` and
``repro.streaming.StreamingDocumentPipeline.ingest_adapter`` consume
any of them.
"""

from repro.corpus.base import (
    BUCKET_MODES,
    CorpusAdapter,
    CorpusFormatError,
    IngestReport,
    IntervalBucketing,
    iter_decoded_lines,
    load_documents,
)
from repro.corpus.csvfile import CSVAdapter
from repro.corpus.dblp import DBLPAdapter
from repro.corpus.jsonl import JSONLAdapter, dump_jsonl

#: CLI ``--format`` names -> adapter classes.
ADAPTERS = {
    "dblp": DBLPAdapter,
    "jsonl": JSONLAdapter,
    "csv": CSVAdapter,
}


def open_adapter(fmt: str, source, bucketing=None, strict=False,
                 **fields) -> CorpusAdapter:
    """Build the adapter registered for *fmt* over *source*.

    ``fields`` forwards field-mapping options (``text_field``,
    ``time_field``, ``id_field``) to the JSONL/CSV adapters; the DBLP
    adapter takes none and rejects any.
    """
    try:
        cls = ADAPTERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown corpus format {fmt!r}; "
            f"expected one of {sorted(ADAPTERS)}") from None
    if cls is DBLPAdapter and fields:
        raise ValueError(
            "the dblp format has a fixed schema; field mapping "
            f"options {sorted(fields)} do not apply")
    return cls(source, bucketing=bucketing, strict=strict, **fields)


__all__ = [
    "ADAPTERS",
    "BUCKET_MODES",
    "CSVAdapter",
    "CorpusAdapter",
    "CorpusFormatError",
    "DBLPAdapter",
    "IngestReport",
    "IntervalBucketing",
    "JSONLAdapter",
    "dump_jsonl",
    "iter_decoded_lines",
    "load_documents",
    "open_adapter",
]
