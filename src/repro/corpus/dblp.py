"""Incremental DBLP-style XML adapter: publication records -> documents.

DBLP distributes one giant ``<dblp>`` element whose children are
publication records (``<article>``, ``<inproceedings>``, ...), each
carrying a ``key`` attribute plus ``<title>`` and ``<year>``
children.  :class:`DBLPAdapter` reads that shape with
:func:`xml.etree.ElementTree.iterparse`, clearing each record after
it is consumed so memory stays constant however large the file is,
and maps publication years to interval indices and titles to keyword
documents.

The real dump references hundreds of named entities (``&uuml;``,
``&aacute;``...) declared in ``dblp.dtd``, which the stdlib expat
parser — which never loads external DTDs — rejects as undefined.
The adapter therefore streams the bytes through a small recovery
filter that replaces undeclared named entities with spaces before
they reach the parser, counting each repair.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import IO, Iterator, Optional, Tuple, Union

from repro.corpus.base import (
    CorpusAdapter,
    CorpusFormatError,
    IngestReport,
    IntervalBucketing,
)
from repro.text.documents import Document

#: Record tags ingested as timestamped documents.
RECORD_TAGS = frozenset({
    "article", "inproceedings", "proceedings", "book", "incollection",
    "phdthesis", "mastersthesis",
})

#: Record tags recognised but intentionally skipped (no publication text).
SKIPPED_TAGS = frozenset({"www", "person", "data"})

#: The five entities XML itself predeclares; everything else named is
#: a DTD entity the stdlib parser cannot resolve.
_PREDECLARED = frozenset({b"amp", b"lt", b"gt", b"quot", b"apos"})

_ENTITY = re.compile(rb"&(#?[A-Za-z0-9]+);")
_PARTIAL_ENTITY = re.compile(rb"&#?[A-Za-z0-9]{0,30}$")

_WS = re.compile(r"\s+")


class _EntityRecoveryReader:
    """Binary file wrapper replacing undeclared named entities.

    Works in the byte domain so it composes with ``iterparse``'s
    chunked ``read(n)`` calls: numeric references and the five
    predeclared entities pass through, any other ``&name;`` becomes a
    space (one count on the report), and a partial entity at a chunk
    boundary is held back until the next read completes it.
    """

    def __init__(self, handle: IO, report: IngestReport) -> None:
        self._handle = handle
        self._report = report
        self._tail = b""

    def read(self, size: int = -1) -> bytes:
        """Read a filtered chunk of at most roughly *size* bytes."""
        chunk = self._handle.read(size)
        data = self._tail + chunk
        self._tail = b""
        if chunk:
            match = _PARTIAL_ENTITY.search(data)
            if match:
                self._tail = data[match.start():]
                data = data[:match.start()]
        return _ENTITY.sub(self._replace, data)

    def _replace(self, match: "re.Match[bytes]") -> bytes:
        name = match.group(1)
        if name.startswith(b"#") or name in _PREDECLARED:
            return match.group(0)
        self._report.repaired += 1
        self._report.count_reason("undeclared entity replaced")
        return b" "


class DBLPAdapter(CorpusAdapter):
    """Streaming adapter for DBLP-style publication XML.

    Yields one document per publication record: the ``key`` attribute
    becomes the document id (falling back to ``dblp<n>``), the
    title's text (markup like ``<i>`` flattened, whitespace
    normalised) becomes the document text, and the ``<year>`` child
    is bucketed by ``bucketing`` (publication years by default).
    Records without a usable title or year are counted as malformed;
    ``<www>`` homepage records are counted as skipped.
    """

    format_name = "dblp"

    def __init__(self, source: Union[str, IO],
                 bucketing: Optional[IntervalBucketing] = None,
                 strict: bool = False) -> None:
        super().__init__(source, bucketing=bucketing, strict=strict)

    @classmethod
    def default_bucketing(cls) -> IntervalBucketing:
        """Publication years, un-rebased (raw years as buckets)."""
        return IntervalBucketing(mode="year")

    def _records(self) -> Iterator[Tuple[int, Document]]:
        handle, owns = self._open()
        try:
            filtered = _EntityRecoveryReader(handle, self.report)
            yield from self._parse(filtered)
        finally:
            if owns:
                handle.close()

    def _parse(self, stream) -> Iterator[Tuple[int, Document]]:
        count = 0
        try:
            parser = ET.iterparse(stream, events=("start", "end"))
            root = None
            for event, elem in parser:
                if event == "start":
                    if root is None:
                        root = elem
                    continue
                if elem.tag in SKIPPED_TAGS:
                    self._skipped(f"<{elem.tag}> record")
                elif elem.tag in RECORD_TAGS:
                    count += 1
                    record = self._record_of(elem, count)
                    if record is not None:
                        yield record
                else:
                    # A child element (<title>, <author>, ...) or the
                    # root itself closing; only record tags clear.
                    continue
                elem.clear()
                if root is not None:
                    # Drop the consumed child from the root so the
                    # tree never grows: constant memory.
                    root.clear()
        except ET.ParseError as exc:
            raise CorpusFormatError(
                f"unreadable XML in {self.source_name}: {exc}"
                ) from exc

    def _record_of(self, elem, count: int
                   ) -> Optional[Tuple[int, Document]]:
        title = elem.find("title")
        if title is None:
            self._malformed("record without <title>")
            return None
        text = _WS.sub(" ", "".join(title.itertext())).strip()
        if not text:
            self._malformed("record with empty <title>")
            return None
        year = elem.find("year")
        year_text = (year.text or "").strip() if year is not None else ""
        if not year_text:
            self._malformed("record without <year>")
            return None
        doc_id = elem.get("key") or f"dblp{count}"
        return self._emit(doc_id, year_text, text)
