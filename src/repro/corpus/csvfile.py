"""CSV corpus adapter: header-mapped rows -> interval documents.

The first row must be a header naming, at minimum, the configured
text and time columns (an id column is optional).  Quoted fields may
span lines; rows the :mod:`csv` machinery rejects, short rows, and
rows missing text or timestamp are counted as malformed rather than
aborting the pass.
"""

from __future__ import annotations

import csv
from typing import IO, Iterator, List, Optional, Tuple, Union

from repro.corpus.base import (
    CorpusAdapter,
    CorpusFormatError,
    IntervalBucketing,
    iter_decoded_lines,
)
from repro.text.documents import Document


class CSVAdapter(CorpusAdapter):
    """Streaming adapter for comma-separated timestamped text.

    ``text_field`` and ``time_field`` name mandatory header columns
    (a missing header or column is a structural
    :class:`CorpusFormatError`); ``id_field`` is optional with a
    ``doc<row>`` fallback.  Timestamps are bucketed by ``bucketing``,
    pass-through ``interval`` indices by default.
    """

    format_name = "csv"

    def __init__(self, source: Union[str, IO],
                 bucketing: Optional[IntervalBucketing] = None,
                 strict: bool = False,
                 text_field: str = "text",
                 time_field: str = "interval",
                 id_field: str = "id") -> None:
        super().__init__(source, bucketing=bucketing, strict=strict)
        self.text_field = text_field
        self.time_field = time_field
        self.id_field = id_field

    def _records(self) -> Iterator[Tuple[int, Document]]:
        handle, owns = self._open()
        try:
            reader = csv.reader(iter_decoded_lines(handle, self.report))
            header = self._read_header(reader)
            text_col = header.index(self.text_field)
            time_col = header.index(self.time_field)
            id_col = header.index(self.id_field) \
                if self.id_field in header else None
            row_no = 1
            while True:
                row_no += 1
                try:
                    row = next(reader)
                except StopIteration:
                    return
                except csv.Error as exc:
                    self._malformed("unparseable CSV row",
                                    detail=str(exc))
                    continue
                record = self._record_of(row, row_no, text_col,
                                         time_col, id_col)
                if record is not None:
                    yield record
        finally:
            if owns:
                handle.close()

    def _read_header(self, reader) -> List[str]:
        try:
            header = next(reader)
        except StopIteration:
            raise CorpusFormatError(
                f"empty CSV corpus {self.source_name}") from None
        except csv.Error as exc:
            raise CorpusFormatError(
                f"unreadable CSV header in {self.source_name}: {exc}"
                ) from exc
        for name in (self.text_field, self.time_field):
            if name not in header:
                raise CorpusFormatError(
                    f"CSV corpus {self.source_name} has no "
                    f"{name!r} column (header: {header})")
        return header

    def _record_of(self, row: List[str], row_no: int, text_col: int,
                   time_col: int, id_col: Optional[int]
                   ) -> Optional[Tuple[int, Document]]:
        if not row:
            return None
        if len(row) <= max(text_col, time_col):
            self._malformed("short row")
            return None
        text = row[text_col].strip()
        if not text:
            self._malformed(f"missing text field {self.text_field!r}")
            return None
        doc_id = f"doc{row_no}"
        if id_col is not None and len(row) > id_col and row[id_col]:
            doc_id = row[id_col]
        return self._emit(doc_id, row[time_col], text)
