"""Corpus-adapter contract: real text sources -> interval documents.

Every workload the pipelines had seen before this package was
synthetic (:mod:`repro.datagen`).  A :class:`CorpusAdapter` is the
seam that feeds *real* timestamped text into the same machinery: a
streaming iterator of ``(interval, Document)`` pairs read from a file
on disk, with an :class:`IngestReport` counting what parsed, what was
skipped on purpose, and what was malformed.  Timestamps of any
granularity (publication years, ISO dates, epoch seconds) map onto
the paper's dense interval indices through
:class:`IntervalBucketing`.

Error contract: a *structurally* unreadable source (truncated XML,
an empty CSV, undecodable framing) raises the typed
:class:`CorpusFormatError`; *per-record* garbage (a missing field, an
unusable timestamp) is skipped and counted by default, or raises the
same typed error when the adapter was built with ``strict=True``.
Adapters never leak a bare stdlib exception for bad input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from datetime import date, datetime
from typing import (
    IO,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.text.documents import Document

#: The timestamp granularities :class:`IntervalBucketing` understands.
BUCKET_MODES = ("interval", "year", "month", "epoch")

#: Default width (seconds) of one ``epoch`` bucket: a day.
EPOCH_BUCKET_SECONDS = 86400


class CorpusFormatError(ValueError):
    """A corpus source is structurally unreadable.

    Raised for truncated or unparseable files, missing mandatory
    columns, and — in ``strict`` mode — the first malformed record.
    Subclasses :class:`ValueError` so the CLI's domain-error handling
    renders it as a clean message, never a traceback.
    """


@dataclass
class IngestReport:
    """What one adapter pass over a source parsed, skipped, or dropped.

    ``parsed`` documents were yielded; ``skipped`` records were
    structurally fine but intentionally not ingested (for example
    DBLP ``<www>`` homepage records); ``malformed`` records were
    counted and dropped (or raised, in strict mode); ``repaired``
    counts in-place fixes that still let a record parse (undeclared
    XML entities replaced, lines re-decoded as latin-1).  ``reasons``
    breaks the skip/malformed/repair counts down by cause.
    """

    source: str = ""
    format: str = ""
    parsed: int = 0
    skipped: int = 0
    malformed: int = 0
    repaired: int = 0
    reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def total_records(self) -> int:
        """Every record the pass saw, whatever became of it."""
        return self.parsed + self.skipped + self.malformed

    def count_reason(self, reason: str) -> None:
        """Bump the per-cause breakdown for *reason*."""
        self.reasons[reason] = self.reasons.get(reason, 0) + 1

    def describe(self) -> str:
        """Multi-line ingest summary for the CLI and demos."""
        where = self.source or "<stream>"
        label = f" ({self.format})" if self.format else ""
        parts = [f"{self.parsed} parsed", f"{self.skipped} skipped",
                 f"{self.malformed} malformed"]
        if self.repaired:
            parts.append(f"{self.repaired} repaired")
        lines = [f"ingest {where}{label}: " + ", ".join(parts)]
        for reason in sorted(self.reasons):
            lines.append(f"  - {reason}: {self.reasons[reason]}")
        return "\n".join(lines)


_ISO_MONTH = re.compile(r"\s*(\d{1,4})-(\d{1,2})")
_LEADING_YEAR = re.compile(r"\s*(\d{1,4})")
_NUMBER = re.compile(r"\s*-?\d+(\.\d+)?\s*$")


def _reject_bool(value: object) -> None:
    if isinstance(value, bool):
        raise ValueError(f"boolean {value!r} is not a timestamp")


def _int_of(value: object) -> int:
    """A strict interval index from *value* (int or digit string)."""
    _reject_bool(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        text = value.strip()
        if re.fullmatch(r"-?\d+", text):
            return int(text)
    raise ValueError(f"cannot read an interval index from {value!r}")


def _year_of(value: object) -> int:
    """A publication year from an int, a date, or a ``YYYY...`` string."""
    _reject_bool(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, (datetime, date)):
        return value.year
    if isinstance(value, str):
        match = _LEADING_YEAR.match(value)
        if match:
            return int(match.group(1))
    raise ValueError(f"cannot read a year from {value!r}")


def _month_number(value: object) -> int:
    """Months since year zero, from a date or ``YYYY-MM...`` string."""
    _reject_bool(value)
    if isinstance(value, (datetime, date)):
        return value.year * 12 + (value.month - 1)
    if isinstance(value, str):
        match = _ISO_MONTH.match(value)
        if match:
            month = int(match.group(2))
            if 1 <= month <= 12:
                return int(match.group(1)) * 12 + (month - 1)
    raise ValueError(
        f"month bucketing needs a date or a 'YYYY-MM...' string, "
        f"got {value!r}")


def _epoch_seconds(value: object) -> float:
    """Epoch seconds from a number, numeric string, or datetime."""
    _reject_bool(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime):
        return value.timestamp()
    if isinstance(value, str) and _NUMBER.match(value):
        return float(value)
    raise ValueError(f"cannot read epoch seconds from {value!r}")


@dataclass(frozen=True)
class IntervalBucketing:
    """Maps raw timestamp values onto interval indices.

    ``mode`` selects the granularity: ``"interval"`` passes an
    already-bucketed index through, ``"year"`` buckets by publication
    year (ints, ``YYYY...`` strings, or dates), ``"month"`` by
    calendar month (dates or ``YYYY-MM`` strings), ``"epoch"`` into
    fixed-width buckets of ``width`` seconds.  ``origin`` is the
    bucket value that becomes interval 0 (a year for ``"year"``, a
    month number ``year * 12 + month - 1`` for ``"month"``, a bucket
    ordinal for ``"epoch"``); when ``None``, adapters yield raw bucket
    values and :meth:`repro.text.IntervalCorpus.from_adapter` rebases
    the smallest seen to 0.
    """

    mode: str = "year"
    width: int = EPOCH_BUCKET_SECONDS
    origin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in BUCKET_MODES:
            raise ValueError(
                f"bucketing mode must be one of {BUCKET_MODES}, "
                f"got {self.mode!r}")
        if self.width < 1:
            raise ValueError(
                f"epoch bucket width must be >= 1 second, "
                f"got {self.width}")

    @classmethod
    def parse(cls, spec: str,
              origin: Optional[int] = None) -> "IntervalBucketing":
        """Build a bucketing from a CLI spec.

        Accepts ``interval``, ``year``, ``month``, ``epoch``, or
        ``epoch:SECONDS`` (for example ``epoch:3600`` for hourly
        buckets).
        """
        text = spec.strip().lower()
        if text.startswith("epoch"):
            width = EPOCH_BUCKET_SECONDS
            if ":" in text:
                _, _, tail = text.partition(":")
                try:
                    width = int(tail)
                except ValueError:
                    raise ValueError(
                        f"epoch bucket width must be an integer "
                        f"second count, got {tail!r}") from None
            return cls(mode="epoch", width=width, origin=origin)
        return cls(mode=text, origin=origin)

    def bucket_of(self, value: object) -> int:
        """The raw (un-rebased) bucket ordinal of *value*.

        Raises :class:`ValueError` when the value cannot be read at
        this granularity; adapters turn that into a counted
        malformed record.
        """
        if self.mode == "interval":
            return _int_of(value)
        if self.mode == "year":
            return _year_of(value)
        if self.mode == "month":
            return _month_number(value)
        return int(_epoch_seconds(value) // self.width)

    def interval_of(self, value: object) -> int:
        """The interval index of *value*: its bucket, origin-shifted."""
        bucket = self.bucket_of(value)
        if self.origin is None:
            return bucket
        return bucket - self.origin

    def describe(self) -> str:
        """Compact rendering for reports and explain output."""
        parts = [self.mode]
        if self.mode == "epoch":
            parts.append(f"{self.width}s")
        if self.origin is not None:
            parts.append(f"origin {self.origin}")
        return " ".join(parts)


def iter_decoded_lines(handle: IO,
                       report: Optional[IngestReport] = None
                       ) -> Iterator[str]:
    """Decode *handle* line by line, tolerating mixed encodings.

    Text handles pass through untouched.  Binary handles decode each
    line as UTF-8 and fall back to latin-1 (which never fails) for
    lines that are not valid UTF-8 — real feeds mix encodings line by
    line, and one mojibake post should not kill an ingest.  Each
    fallback is counted on *report* as a repaired record.  Yielded
    lines keep their newline (the CSV reader needs it to reassemble
    quoted multi-line fields).
    """
    first = True
    for line in handle:
        if isinstance(line, bytes):
            try:
                decoded = line.decode("utf-8")
            except UnicodeDecodeError:
                decoded = line.decode("latin-1")
                if report is not None:
                    report.repaired += 1
                    report.count_reason("re-decoded line as latin-1")
        else:
            decoded = line
        if first:
            decoded = decoded.lstrip("﻿")
            first = False
        yield decoded


class CorpusAdapter:
    """Streaming reader of one corpus source: ``(interval, Document)``.

    Concrete adapters (DBLP XML, JSONL, CSV) implement
    :meth:`_records`; iterating the adapter yields ``(interval,
    Document)`` pairs in source order while :attr:`report` accumulates
    the pass's :class:`IngestReport` (reset at the start of every
    iteration, complete once the iterator is exhausted).  ``source``
    is a filesystem path (re-iterable) or an open handle (single
    pass).  With ``strict=True`` the first malformed record raises
    :class:`CorpusFormatError` instead of being counted.
    """

    #: Report label for the concrete format; subclasses override.
    format_name = "corpus"

    def __init__(self, source: Union[str, IO],
                 bucketing: Optional[IntervalBucketing] = None,
                 strict: bool = False) -> None:
        self.source = source
        self.bucketing = bucketing if bucketing is not None \
            else self.default_bucketing()
        self.strict = strict
        self.report = self._new_report()

    @classmethod
    def default_bucketing(cls) -> IntervalBucketing:
        """The bucketing used when the caller supplies none."""
        return IntervalBucketing(mode="interval")

    @property
    def source_name(self) -> str:
        """Printable name of the source (path, or ``<stream>``)."""
        if isinstance(self.source, str):
            return self.source
        return getattr(self.source, "name", "<stream>")

    def _new_report(self) -> IngestReport:
        return IngestReport(source=self.source_name,
                            format=self.format_name)

    def __iter__(self) -> Iterator[Tuple[int, Document]]:
        """Stream the source; resets :attr:`report` for this pass."""
        self.report = self._new_report()
        return self._records()

    def documents(self) -> Iterator[Document]:
        """The same stream, yielding bare documents."""
        for _, doc in self:
            yield doc

    # ------------------------------------------------------------------
    # Hooks for concrete adapters
    # ------------------------------------------------------------------

    def _records(self) -> Iterator[Tuple[int, Document]]:
        raise NotImplementedError

    def _open(self):
        """``(handle, owns_handle)`` for the source (binary for paths)."""
        if isinstance(self.source, str):
            try:
                return open(self.source, "rb"), True
            except OSError as exc:
                raise CorpusFormatError(
                    f"cannot open corpus {self.source!r}: {exc}"
                    ) from exc
        return self.source, False

    def _malformed(self, reason: str, detail: str = "") -> None:
        """Count one malformed record, or raise it in strict mode."""
        if self.strict:
            where = f" ({detail})" if detail else ""
            raise CorpusFormatError(
                f"malformed record in {self.source_name}: "
                f"{reason}{where}")
        self.report.malformed += 1
        self.report.count_reason(reason)

    def _skipped(self, reason: str) -> None:
        """Count one intentionally skipped record."""
        self.report.skipped += 1
        self.report.count_reason(reason)

    def _emit(self, doc_id: str, value: object,
              text: str) -> Optional[Tuple[int, Document]]:
        """Bucket one record's timestamp and build its document.

        Returns ``None`` (after counting) when the timestamp is
        unusable at the adapter's bucketing granularity or falls
        before the configured origin.
        """
        try:
            interval = self.bucketing.interval_of(value)
        except ValueError as exc:
            self._malformed(
                f"unusable {self.bucketing.mode} timestamp",
                detail=str(exc))
            return None
        if interval < 0:
            self._malformed(
                f"timestamp before origin "
                f"{self.bucketing.origin}")
            return None
        self.report.parsed += 1
        return interval, Document(doc_id=doc_id, interval=interval,
                                  text=text)


def load_documents(adapter: CorpusAdapter) -> List[Document]:
    """Materialize every document the adapter yields, in source order."""
    return list(adapter.documents())
