"""JSONL corpus adapter and the canonical JSONL serializer.

One JSON object per line.  Field names are configurable so arbitrary
feeds map on without preprocessing; the defaults (``text`` /
``interval`` / ``id``) reproduce the wire format
:func:`repro.streaming.read_jsonl_documents` has always read, with
pass-through ``interval`` bucketing.  :func:`dump_jsonl` writes that
same canonical shape back out, giving lossless
corpus -> JSONL -> corpus round trips.
"""

from __future__ import annotations

import json
from typing import IO, Iterator, Optional, Tuple, Union

from repro.corpus.base import (
    CorpusAdapter,
    IntervalBucketing,
    iter_decoded_lines,
)
from repro.text.documents import Document, IntervalCorpus


class JSONLAdapter(CorpusAdapter):
    """Streaming adapter for line-delimited JSON documents.

    Each non-blank line must be a JSON object holding ``text_field``
    (the document text) and ``time_field`` (the timestamp, bucketed
    by ``bucketing``); ``id_field`` is optional and falls back to
    ``doc<line>``.  Lines that are not valid JSON, not objects, or
    missing fields are counted as malformed (or raise in strict
    mode).
    """

    format_name = "jsonl"

    def __init__(self, source: Union[str, IO],
                 bucketing: Optional[IntervalBucketing] = None,
                 strict: bool = False,
                 text_field: str = "text",
                 time_field: str = "interval",
                 id_field: str = "id") -> None:
        super().__init__(source, bucketing=bucketing, strict=strict)
        self.text_field = text_field
        self.time_field = time_field
        self.id_field = id_field

    def _records(self) -> Iterator[Tuple[int, Document]]:
        handle, owns = self._open()
        try:
            lines = iter_decoded_lines(handle, self.report)
            for line_no, line in enumerate(lines, start=1):
                record = self._record_of(line, line_no)
                if record is not None:
                    yield record
        finally:
            if owns:
                handle.close()

    def _record_of(self, line: str, line_no: int
                   ) -> Optional[Tuple[int, Document]]:
        stripped = line.strip()
        if not stripped:
            return None
        try:
            payload = json.loads(stripped)
        except json.JSONDecodeError as exc:
            self._malformed("invalid JSON line", detail=str(exc))
            return None
        if not isinstance(payload, dict):
            self._malformed("line is not a JSON object")
            return None
        text = payload.get(self.text_field)
        if not isinstance(text, str) or not text.strip():
            self._malformed(f"missing text field {self.text_field!r}")
            return None
        if self.time_field not in payload:
            self._malformed(f"missing time field {self.time_field!r}")
            return None
        raw_id = payload.get(self.id_field)
        doc_id = str(raw_id) if raw_id is not None else f"doc{line_no}"
        return self._emit(doc_id, payload[self.time_field], text)


def dump_jsonl(corpus: IntervalCorpus, target: Union[str, IO]) -> int:
    """Write *corpus* as canonical JSONL; returns the line count.

    One ``{"id", "interval", "text"}`` object per line, intervals in
    ascending order and documents in insertion order within each —
    exactly what :class:`JSONLAdapter` (and the streaming CLI) read
    back.  ``target`` is a path or a writable text handle.
    """
    handle: IO
    owns = isinstance(target, str)
    handle = open(target, "w", encoding="utf-8") if owns else target
    written = 0
    try:
        for interval in corpus.interval_indices:
            for doc in corpus.documents(interval):
                json.dump({"id": doc.doc_id, "interval": doc.interval,
                           "text": doc.text}, handle)
                handle.write("\n")
                written += 1
    finally:
        if owns:
            handle.close()
    return written
