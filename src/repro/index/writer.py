"""Serializing a clustering run into a persistent index.

:class:`ClusterIndexWriter` turns what a run computed — per-interval
keyword clusters, the frozen vocabulary, the top-k stable paths, and
the plan that produced them — into the on-disk layout of
:mod:`repro.index.format`.  It writes incrementally: a batch run
appends all intervals then finalizes (:meth:`write_run`); a streaming
run keeps the writer open, appending one interval and one top-k
generation per ingest, so a live reader can follow the stream.
"""

from __future__ import annotations

import glob
import os
from typing import Any, BinaryIO, Dict, List, Optional, Sequence

from repro.index.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_FILE,
    PATHS_FILE,
    POSTINGS_FILE,
    VOCABULARY_FILE,
    ClusterIndexError,
    manifest_path,
    save_manifest,
    shard_file,
    shard_for,
)
from repro.storage.codec import encode_compact
from repro.storage.recordlog import append_record
from repro.vocab import Vocabulary

DEFAULT_SHARDS = 4


class ClusterIndexWriter:
    """Appends a run's clusters, vocabulary, and paths to an index.

    ``vocab`` is the run's corpus :class:`~repro.vocab.Vocabulary`:
    when given, clusters are (re)bound into it and stored as integer
    token ids with the token table persisted alongside (``token_kind
    = 'id'``); when ``None``, clusters are stored by their keyword
    strings.  ``query`` and ``provenance`` (the execution plan's
    explain lines) are recorded in the manifest for ``index inspect``.

    The writer refuses a non-empty directory unless it holds an index
    of this format and ``overwrite=True`` — it will not clobber
    foreign files.
    """

    def __init__(self, directory: str, *,
                 vocab: Optional[Vocabulary] = None,
                 query: Optional[Any] = None,
                 provenance: Optional[Sequence[str]] = None,
                 num_shards: int = DEFAULT_SHARDS,
                 overwrite: bool = False) -> None:
        if num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {num_shards}")
        self.directory = directory
        self.num_shards = num_shards
        self._vocab = vocab
        self._query = query
        self._provenance = list(provenance or ())
        self._prepare_directory(overwrite)
        self._num_intervals = 0
        self._num_clusters = 0
        self._vocab_written = 0
        self._path_generations = 0
        self._num_paths = 0
        self._finalized = False
        self._closed = False
        self._bytes: Dict[str, int] = {}
        self._fhs: Dict[str, BinaryIO] = {}
        for name in self._log_files():
            path = os.path.join(directory, name)
            self._fhs[name] = open(path, "ab")
            self._bytes[name] = 0
        self._save_manifest(complete=False)

    # ------------------------------------------------------------------
    # Directory and manifest plumbing
    # ------------------------------------------------------------------

    def _log_files(self) -> List[str]:
        names = [shard_file(i) for i in range(self.num_shards)]
        names.append(POSTINGS_FILE)
        names.append(PATHS_FILE)
        if self._vocab is not None:
            names.append(VOCABULARY_FILE)
        return names

    def _prepare_directory(self, overwrite: bool) -> None:
        directory = self.directory
        if os.path.exists(manifest_path(directory)):
            if not overwrite:
                raise ClusterIndexError(
                    f"{directory!r} already holds a cluster index; "
                    f"pass overwrite=True to rebuild it")
            self._wipe_index_files()
        elif os.path.isdir(directory) and os.listdir(directory):
            raise ClusterIndexError(
                f"refusing to write an index into non-empty "
                f"directory {directory!r} (no {MANIFEST_FILE} found)")
        os.makedirs(directory, exist_ok=True)

    def _wipe_index_files(self) -> None:
        """Remove a previous index's files (and only those)."""
        doomed = [MANIFEST_FILE, VOCABULARY_FILE, POSTINGS_FILE,
                  PATHS_FILE]
        doomed += [os.path.basename(path) for path in glob.glob(
            os.path.join(self.directory, "clusters-*.bin"))]
        for name in doomed:
            try:
                os.unlink(os.path.join(self.directory, name))
            except FileNotFoundError:
                pass

    def _save_manifest(self, complete: bool) -> None:
        self._sync()
        manifest: Dict[str, Any] = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "token_kind": "id" if self._vocab is not None else "str",
            "num_shards": self.num_shards,
            "num_intervals": self._num_intervals,
            "num_clusters": self._num_clusters,
            "vocab_size": self._vocab_written,
            "path_generations": self._path_generations,
            "num_paths": self._num_paths,
            "complete": complete,
            "query": None,
            "provenance": self._provenance,
            "files": dict(self._bytes),
        }
        query = self._query
        if query is not None:
            manifest["query"] = {
                "describe": query.describe(),
                "problem": query.problem,
                "l": query.l,
                "lmin": query.lmin,
                "k": query.k,
                "gap": query.gap,
            }
        save_manifest(self.directory, manifest)

    def _append(self, name: str, payload: bytes) -> None:
        self._bytes[name] += append_record(self._fhs[name], payload)

    def _sync(self) -> None:
        """Flush every log so the manifest never records bytes the
        OS has not seen (one flush per file per manifest save, not
        one per record)."""
        for fh in self._fhs.values():
            if not fh.closed:
                fh.flush()

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------

    def append_interval(self, clusters: Sequence) -> int:
        """Persist one interval's clusters (the next interval index).

        In id mode every cluster is first rebound into the writer's
        vocabulary and the newly interned tokens are appended to the
        persisted token table, so ids on disk always decode against
        the table prefix that existed when they were written.  Returns
        the interval index the clusters were stored under.
        """
        if self._closed:
            raise ClusterIndexError(
                "cannot append to a finalized/aborted index writer")
        interval = self._num_intervals
        if self._vocab is not None:
            clusters = [cluster.rebind(self._vocab)
                        for cluster in clusters]
            tokens = self._vocab.tokens
            fresh = tokens[self._vocab_written:]
            if fresh:
                self._append(VOCABULARY_FILE,
                             encode_compact(tuple(fresh)))
                self._vocab_written = len(tokens)
        postings: Dict[Any, List[int]] = {}
        for idx, cluster in enumerate(clusters):
            if self._vocab is not None:
                tokens_out = cluster.tokens
                edges_out = cluster.token_edges
            else:
                tokens_out = tuple(sorted(cluster.keywords))
                edges_out = cluster.edges
            record = (interval, idx, cluster.interval,
                      tuple(tokens_out), tuple(edges_out))
            self._append(shard_file(
                shard_for(interval, idx, self.num_shards)),
                encode_compact(record))
            for token in tokens_out:
                postings.setdefault(token, []).append(idx)
        self._append(POSTINGS_FILE,
                     encode_compact((interval, postings)))
        self._num_intervals += 1
        self._num_clusters += len(clusters)
        self._save_manifest(complete=False)
        return interval

    def set_paths(self, paths: Sequence) -> None:
        """Persist the current top-k paths as a new generation.

        The last generation written is the index's answer."""
        if self._closed:
            raise ClusterIndexError(
                "cannot append to a finalized/aborted index writer")
        self._append(PATHS_FILE, encode_compact(
            (self._path_generations, list(paths))))
        self._path_generations += 1
        self._num_paths = len(paths)
        self._save_manifest(complete=False)

    @property
    def bytes_written(self) -> int:
        """Total log bytes appended so far (manifest excluded)."""
        return sum(self._bytes.values())

    def finalize(self) -> int:
        """Mark the index complete and close it.

        Returns total log bytes; idempotent — later calls return the
        same total.  An aborted writer cannot be finalized.
        """
        if self._closed and not self._finalized:
            raise ClusterIndexError(
                "cannot finalize an aborted index writer")
        if not self._finalized:
            self._finalized = True
            self._closed = True
            self._save_manifest(complete=True)
            for fh in self._fhs.values():
                fh.close()
        return self.bytes_written

    def abort(self) -> None:
        """Close the writer *without* marking the index complete.

        What was appended so far stays readable (the manifest keeps
        ``complete: false``, so tailing readers know the run never
        finished); used when a streaming run dies mid-stream.
        Idempotent; a no-op after :meth:`finalize`.
        """
        if self._closed:
            return
        self._closed = True
        self._save_manifest(complete=False)
        for fh in self._fhs.values():
            fh.close()

    def close(self) -> None:
        """Alias for :meth:`finalize` (context-manager symmetry)."""
        self.finalize()

    def __enter__(self) -> "ClusterIndexWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        # A run that died mid-write must not stamp its partial index
        # complete; readers see `complete: false` and keep waiting
        # (or report it live) instead of serving a truncated run as
        # finished.
        if exc_type is None:
            self.finalize()
        else:
            self.abort()

    def __repr__(self) -> str:
        return (f"ClusterIndexWriter(dir={self.directory!r}, "
                f"intervals={self._num_intervals}, "
                f"clusters={self._num_clusters})")

    # ------------------------------------------------------------------
    # Whole-run convenience
    # ------------------------------------------------------------------

    @classmethod
    def write_run(cls, directory: str,
                  interval_clusters: Sequence[Sequence],
                  paths: Sequence, *,
                  vocab: Optional[Vocabulary] = None,
                  query: Optional[Any] = None,
                  plan: Optional[Any] = None,
                  num_shards: int = DEFAULT_SHARDS,
                  overwrite: bool = True) -> int:
        """Persist a completed batch run in one call; returns total
        log bytes written.

        ``plan`` (an :class:`~repro.engine.planner.ExecutionPlan`)
        contributes its ``explain()`` lines as the index's provenance.
        """
        provenance = plan.explain().splitlines() \
            if plan is not None else None
        if query is None and plan is not None:
            query = plan.query
        with cls(directory, vocab=vocab, query=query,
                 provenance=provenance, num_shards=num_shards,
                 overwrite=overwrite) as writer:
            for clusters in interval_clusters:
                writer.append_interval(clusters)
            writer.set_paths(paths)
            return writer.finalize()
