"""Serializing clustering runs into a persistent, appendable index.

:class:`ClusterIndexWriter` turns what a run computed — per-interval
keyword clusters, the interned vocabulary, the top-k stable paths, and
the plan that produced them — into the tiered segment layout of
:mod:`repro.index.format`.  It writes incrementally: a batch run
appends all intervals then finalizes (:meth:`write_run`); a streaming
run keeps the writer open, appending one interval and one top-k
generation per ingest, so a live reader can follow the stream.

Appends accumulate in one growing segment.  :meth:`flush_segment`
(called automatically every ``flush_intervals`` intervals and at
close) seals it into the immutable tier, after which the merge policy
(:mod:`repro.index.merge`) may compact small sealed segments into
larger ones — inline, or on a background thread while appends
continue.  Opening with ``append=True`` reopens an existing index:
the stored vocabulary deltas are preloaded (no re-interning the
world), global interval numbering continues where the last run
stopped, and path records are rebased so a resumed run's local
interval 0 lines up with the index's tail.
"""

from __future__ import annotations

import os
import shutil
import threading
from typing import Any, BinaryIO, Dict, List, Optional, Sequence

from repro.core.paths import Path
from repro.index.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_FILE,
    PATHS_FILE,
    POSTINGS_FILE,
    VOCABULARY_FILE,
    ClusterIndexError,
    IndexCorruptError,
    load_manifest,
    manifest_path,
    new_segment_meta,
    list_segment_dirs,
    save_manifest,
    segment_dir,
    segment_name,
    segments_root,
    shard_file,
    shard_for,
)
from repro.index.merge import (
    MergePolicy,
    rewrite_segments,
    select_merge_inputs,
)
from repro.storage.codec import decode_record, encode_compact
from repro.storage.recordlog import append_record, read_records
from repro.vocab import Vocabulary

DEFAULT_SHARDS = 4
DEFAULT_FLUSH_INTERVALS = 16


class ClusterIndexWriter:
    """Appends a run's clusters, vocabulary, and paths to an index.

    ``vocab`` is the run's corpus :class:`~repro.vocab.Vocabulary`:
    when given, clusters are (re)bound into it and stored as integer
    token ids with the token table persisted alongside (``token_kind
    = 'id'``); when ``None``, clusters are stored by their keyword
    strings.  ``query`` and ``provenance`` (the execution plan's
    explain lines) are recorded in the manifest for ``index inspect``.

    Opening modes: the default refuses a directory that already holds
    an index (and any non-empty foreign directory); ``overwrite=True``
    wipes a previous index first; ``append=True`` reopens an existing
    index and continues it — sealing whatever the previous run left
    growing, dropping torn tails and orphaned segment directories a
    crash may have left, and preloading the stored token table into
    ``vocab`` (which must be empty or a prefix of the stored table;
    otherwise the writer rebinds through an internal copy).

    ``flush_intervals`` seals the growing segment every N intervals;
    ``merge_policy`` enables size-tiered compaction of sealed
    segments after each seal, inline or (``background_merge=True``)
    on a daemon thread that publishes merged generations while
    appends continue.
    """

    def __init__(self, directory: str, *,
                 vocab: Optional[Vocabulary] = None,
                 query: Optional[Any] = None,
                 provenance: Optional[Sequence[str]] = None,
                 num_shards: int = DEFAULT_SHARDS,
                 overwrite: bool = False,
                 append: bool = False,
                 flush_intervals: Optional[int] = None,
                 merge_policy: Optional[MergePolicy] = None,
                 background_merge: bool = False,
                 use_mmap: bool = True) -> None:
        if num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {num_shards}")
        if overwrite and append:
            raise ValueError(
                "overwrite and append are mutually exclusive")
        if flush_intervals is not None and flush_intervals < 1:
            raise ValueError(
                f"flush_intervals must be >= 1, got {flush_intervals}")
        self.directory = directory
        self.num_shards = num_shards
        self._vocab = vocab
        self._query_info = self._query_dict(query)
        self._provenance = list(provenance or ())
        self._flush_intervals = flush_intervals
        self._merge_policy = merge_policy
        self._background = background_merge
        self._use_mmap = use_mmap
        self._lock = threading.RLock()
        self._merge_thread: Optional[threading.Thread] = None
        self._segments: List[Dict[str, Any]] = []
        self._active: Optional[Dict[str, Any]] = None
        self._active_fhs: Dict[str, BinaryIO] = {}
        self._next_segment = 0
        self._generation = 0
        self._interval_base = 0
        self._vocab_written = 0
        self._finalized = False
        self._closed = False
        reopening = append and os.path.exists(
            manifest_path(directory))
        self._prepare_directory(overwrite, reopening)
        if reopening:
            self._reopen()
        self._save_manifest(complete=False)

    # ------------------------------------------------------------------
    # Directory and manifest plumbing
    # ------------------------------------------------------------------

    @property
    def vocab(self) -> Optional[Vocabulary]:
        """The vocabulary clusters are bound into (id mode only)."""
        return self._vocab

    @property
    def num_segments(self) -> int:
        """Sealed segments plus the growing one, if any."""
        with self._lock:
            return len(self._segments) + (1 if self._active else 0)

    @property
    def generation(self) -> int:
        """Manifest generation last published."""
        return self._generation

    def _log_files(self) -> List[str]:
        names = [shard_file(i) for i in range(self.num_shards)]
        names.append(POSTINGS_FILE)
        names.append(PATHS_FILE)
        if self._vocab is not None:
            names.append(VOCABULARY_FILE)
        return names

    @staticmethod
    def _query_dict(query: Optional[Any]) -> Optional[Dict[str, Any]]:
        if query is None:
            return None
        return {
            "describe": query.describe(),
            "problem": query.problem,
            "l": query.l,
            "lmin": query.lmin,
            "k": query.k,
            "gap": query.gap,
        }

    def _prepare_directory(self, overwrite: bool,
                           reopening: bool) -> None:
        directory = self.directory
        if os.path.exists(manifest_path(directory)):
            if reopening:
                pass
            elif not overwrite:
                raise ClusterIndexError(
                    f"{directory!r} already holds a cluster index; "
                    f"pass overwrite=True to rebuild it or "
                    f"append=True to continue it")
            else:
                self._wipe_index_files()
        elif os.path.isdir(directory) and os.listdir(directory):
            raise ClusterIndexError(
                f"refusing to write an index into non-empty "
                f"directory {directory!r} (no {MANIFEST_FILE} found)")
        os.makedirs(segments_root(directory), exist_ok=True)

    def _wipe_index_files(self) -> None:
        """Remove a previous index's files (and only those)."""
        try:
            os.unlink(manifest_path(self.directory))
        except FileNotFoundError:
            pass
        shutil.rmtree(segments_root(self.directory),
                      ignore_errors=True)

    def _reopen(self) -> None:
        """Adopt an existing index so appends continue it."""
        manifest = load_manifest(self.directory)
        want = "id" if self._vocab is not None else "str"
        if manifest["token_kind"] != want:
            raise ClusterIndexError(
                f"cannot append {want!r}-token clusters to an index "
                f"with token_kind={manifest['token_kind']!r}")
        self.num_shards = int(manifest["num_shards"])
        self._segments = [dict(meta, files=dict(meta["files"]),
                               sealed=True)
                          for meta in manifest["segments"]]
        self._seal_stored_segments()
        known = {meta["name"] for meta in self._segments}
        for name in list_segment_dirs(self.directory):
            if name not in known:  # crashed flush/merge leftovers
                shutil.rmtree(segment_dir(self.directory, name),
                              ignore_errors=True)
        self._generation = int(manifest.get("generation", 0))
        self._next_segment = max(
            int(manifest.get("next_segment", 0)),
            len(self._segments))
        self._interval_base = sum(
            meta["num_intervals"] for meta in self._segments)
        if self._query_info is None:
            self._query_info = manifest.get("query")
        if not self._provenance:
            self._provenance = list(manifest.get("provenance") or ())
        self._vocab_written = sum(
            meta.get("vocab_size", 0) for meta in self._segments)
        if self._vocab is not None:
            self._preload_vocab()

    def _seal_stored_segments(self) -> None:
        """Verify stored files and drop torn tails beyond the
        manifest's recorded sizes (a crashed append's last frame)."""
        for meta in self._segments:
            seg = segment_dir(self.directory, meta["name"])
            if not os.path.isdir(seg):
                raise IndexCorruptError(
                    f"manifest references missing segment "
                    f"{meta['name']!r}")
            for fname, size in meta["files"].items():
                path = os.path.join(seg, fname)
                try:
                    actual = os.path.getsize(path)
                except OSError:
                    raise IndexCorruptError(
                        f"segment {meta['name']!r} is missing "
                        f"{fname!r}") from None
                if actual < size:
                    raise IndexCorruptError(
                        f"{fname!r} in segment {meta['name']!r} is "
                        f"shorter ({actual}) than the manifest "
                        f"records ({size})")
                if actual > size:
                    with open(path, "r+b") as fh:
                        fh.truncate(size)

    def _preload_vocab(self) -> None:
        """Load the stored token table so ids keep lining up.

        The caller's vocabulary must be empty or a prefix of the
        stored table (the common cases: a fresh streaming run, or a
        resumed one).  Anything else — a batch run's unrelated corpus
        vocabulary — is rebound through an internal copy instead.
        """
        stored: List[str] = []
        for meta in self._segments:
            size = meta["files"].get(VOCABULARY_FILE, 0)
            if not size:
                continue
            path = os.path.join(
                segment_dir(self.directory, meta["name"]),
                VOCABULARY_FILE)
            for payload, _ in read_records(path, end=size):
                stored.extend(decode_record(payload))
        if len(stored) != self._vocab_written:
            raise IndexCorruptError(
                f"stored vocabulary holds {len(stored)} tokens; the "
                f"manifest records {self._vocab_written}")
        assert self._vocab is not None
        existing = list(self._vocab.tokens)
        if existing == stored[:len(existing)]:
            for token in stored[len(existing):]:
                self._vocab.intern(token)
        else:
            self._vocab = Vocabulary(stored)

    def _totals(self) -> Dict[str, int]:
        segments = list(self._segments)
        if self._active is not None:
            segments.append(self._active)
        totals = {
            "num_intervals": 0, "num_clusters": 0,
            "vocab_size": 0, "path_generations": 0, "num_paths": 0,
        }
        for meta in segments:
            totals["num_intervals"] += meta["num_intervals"]
            totals["num_clusters"] += meta["num_clusters"]
            totals["vocab_size"] += meta.get("vocab_size", 0)
            totals["path_generations"] += meta["path_generations"]
        for meta in reversed(segments):
            if meta["path_generations"]:
                totals["num_paths"] = meta["num_paths"]
                break
        return totals

    def _save_manifest(self, complete: bool) -> None:
        with self._lock:
            self._sync()
            segments = [dict(meta, files=dict(meta["files"]))
                        for meta in self._segments]
            if self._active is not None:
                segments.append(dict(self._active,
                                     files=dict(
                                         self._active["files"])))
            self._generation += 1
            manifest: Dict[str, Any] = {
                "format": FORMAT_NAME,
                "version": FORMAT_VERSION,
                "token_kind":
                    "id" if self._vocab is not None else "str",
                "num_shards": self.num_shards,
                "generation": self._generation,
                "next_segment": self._next_segment,
                "complete": complete,
                "query": self._query_info,
                "provenance": self._provenance,
                "segments": segments,
            }
            manifest.update(self._totals())
            save_manifest(self.directory, manifest)

    def _append(self, name: str, payload: bytes) -> None:
        assert self._active is not None
        written = append_record(self._active_fhs[name], payload)
        self._active["files"][name] += written

    def _sync(self) -> None:
        """Flush every active log so the manifest never records bytes
        the OS has not seen (one flush per file per manifest save,
        not one per record)."""
        for fh in self._active_fhs.values():
            if not fh.closed:
                fh.flush()

    def _ensure_active(self) -> None:
        if self._active is not None:
            return
        name = segment_name(self._next_segment)
        self._next_segment += 1
        totals = self._totals()
        meta = new_segment_meta(
            name, first_interval=totals["num_intervals"],
            vocab_base=self._vocab_written)
        path = segment_dir(self.directory, name)
        if os.path.exists(path):  # stale leftovers never shadow data
            shutil.rmtree(path, ignore_errors=True)
        os.makedirs(path)
        self._active = meta
        self._active_fhs = {}
        for fname in self._log_files():
            self._active_fhs[fname] = open(
                os.path.join(path, fname), "ab")
            meta["files"][fname] = 0

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------

    def append_interval(self, clusters: Sequence) -> int:
        """Persist one interval's clusters (the next global interval).

        In id mode every cluster is first rebound into the writer's
        vocabulary and the newly interned tokens are appended to the
        growing segment's vocabulary delta, so ids on disk always
        decode against the table prefix that existed when they were
        written.  Returns the global interval index the clusters were
        stored under (an appended run continues the stored timeline).
        """
        with self._lock:
            if self._closed:
                raise ClusterIndexError(
                    "cannot append to a finalized/aborted index "
                    "writer")
            if (self._active is not None
                    and self._flush_intervals is not None
                    and self._active["num_intervals"]
                    >= self._flush_intervals):
                self._flush_locked()
            self._ensure_active()
            active = self._active
            assert active is not None
            interval = (active["first_interval"]
                        + active["num_intervals"])
            if self._vocab is not None:
                clusters = [cluster.rebind(self._vocab)
                            for cluster in clusters]
                tokens = self._vocab.tokens
                fresh = tokens[self._vocab_written:]
                if fresh:
                    self._append(VOCABULARY_FILE,
                                 encode_compact(tuple(fresh)))
                    self._vocab_written = len(tokens)
                    active["vocab_size"] = (self._vocab_written
                                            - active["vocab_base"])
            postings: Dict[Any, List[int]] = {}
            for idx, cluster in enumerate(clusters):
                if self._vocab is not None:
                    tokens_out = cluster.tokens
                    edges_out = cluster.token_edges
                else:
                    tokens_out = tuple(sorted(cluster.keywords))
                    edges_out = cluster.edges
                record = (interval, idx, cluster.interval,
                          tuple(tokens_out), tuple(edges_out))
                self._append(shard_file(
                    shard_for(interval, idx, self.num_shards)),
                    encode_compact(record))
                for token in tokens_out:
                    postings.setdefault(token, []).append(idx)
            self._append(POSTINGS_FILE,
                         encode_compact((interval, postings)))
            active["num_intervals"] += 1
            active["num_clusters"] += len(clusters)
            self._save_manifest(complete=False)
        self._maybe_merge()
        return interval

    def set_paths(self, paths: Sequence) -> None:
        """Persist the current top-k paths as a new generation.

        The last generation written is the index's answer.  Paths
        from an appended run are rebased: their node intervals are
        local to the run (starting at 0), so each is shifted by the
        interval count the index held when the writer opened.
        """
        with self._lock:
            if self._closed:
                raise ClusterIndexError(
                    "cannot append to a finalized/aborted index "
                    "writer")
            self._ensure_active()
            active = self._active
            assert active is not None
            base = self._interval_base
            if base:
                paths = [
                    Path(weight=path.weight,
                         nodes=tuple((interval + base, index)
                                     for interval, index
                                     in path.nodes))
                    for path in paths]
            else:
                paths = list(paths)
            self._append(PATHS_FILE, encode_compact(
                (active["path_generations"], paths)))
            active["path_generations"] += 1
            active["num_paths"] = len(paths)
            self._save_manifest(complete=False)

    def flush_segment(self) -> bool:
        """Seal the growing segment into the immutable tier.

        Returns whether a segment was sealed (an empty growing
        segment is discarded instead).  Sealing may trigger the merge
        policy."""
        with self._lock:
            if self._closed:
                raise ClusterIndexError(
                    "cannot flush a finalized/aborted index writer")
            flushed = self._flush_locked()
        if flushed:
            self._maybe_merge()
        return flushed

    def _flush_locked(self) -> bool:
        active = self._active
        if active is None:
            return False
        for fh in self._active_fhs.values():
            fh.close()
        self._active = None
        self._active_fhs = {}
        if not active["num_intervals"] \
                and not active["path_generations"]:
            shutil.rmtree(
                segment_dir(self.directory, active["name"]),
                ignore_errors=True)
            return False
        active["sealed"] = True
        self._segments.append(active)
        self._save_manifest(complete=False)
        return True

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def _maybe_merge(self) -> None:
        if self._merge_policy is None:
            return
        if self._background:
            with self._lock:
                thread = self._merge_thread
                if thread is not None and thread.is_alive():
                    return
                thread = threading.Thread(
                    target=self._merge_loop, daemon=True,
                    name="repro-index-merge")
                self._merge_thread = thread
            thread.start()
        else:
            self._merge_loop()

    def _merge_loop(self) -> None:
        """Compact sealed segments until the policy is satisfied."""
        policy = self._merge_policy
        assert policy is not None
        while True:
            with self._lock:
                names = select_merge_inputs(self._segments, policy)
                if not names:
                    return
                metas = [meta for meta in self._segments
                         if meta["name"] in names]
                out_name = segment_name(self._next_segment)
                self._next_segment += 1
            # The rewrite runs outside the lock: inputs are sealed,
            # hence immutable, and appends may land concurrently.
            merged = rewrite_segments(
                self.directory, metas, out_name,
                num_shards=self.num_shards, use_mmap=self._use_mmap)
            with self._lock:
                start = self._segments.index(metas[0])
                self._segments[start:start + len(metas)] = [merged]
                self._save_manifest(complete=False)
            for meta in metas:  # readers' open handles stay valid
                shutil.rmtree(
                    segment_dir(self.directory, meta["name"]),
                    ignore_errors=True)

    def _join_merge_thread(self) -> None:
        thread = self._merge_thread
        if thread is not None:
            thread.join()
            self._merge_thread = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def bytes_written(self) -> int:
        """Total log bytes across live segments (manifest excluded).

        Drops when a merge reclaims superseded path generations."""
        with self._lock:
            segments = list(self._segments)
            if self._active is not None:
                segments.append(self._active)
            return sum(sum(meta["files"].values())
                       for meta in segments)

    def finalize(self) -> int:
        """Seal, merge per policy, mark the index complete, close.

        Returns total log bytes; idempotent — later calls return the
        same total.  An aborted writer cannot be finalized.
        """
        if self._closed and not self._finalized:
            raise ClusterIndexError(
                "cannot finalize an aborted index writer")
        if not self._finalized:
            with self._lock:
                self._flush_locked()
            self._maybe_merge()
            self._join_merge_thread()
            with self._lock:
                self._finalized = True
                self._closed = True
                self._save_manifest(complete=True)
        return self.bytes_written

    def abort(self) -> None:
        """Close the writer *without* marking the index complete.

        What was appended so far stays readable (the manifest keeps
        ``complete: false``, so tailing readers know the run never
        finished) and the growing segment is sealed so a later
        ``append=True`` reopen or merge treats it as immutable.
        Idempotent; a no-op after :meth:`finalize`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._flush_locked()
        self._join_merge_thread()
        with self._lock:
            self._save_manifest(complete=False)

    def close(self) -> None:
        """Alias for :meth:`finalize` (context-manager symmetry)."""
        self.finalize()

    def __enter__(self) -> "ClusterIndexWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        # A run that died mid-write must not stamp its partial index
        # complete; readers see `complete: false` and keep waiting
        # (or report it live) instead of serving a truncated run as
        # finished.
        if exc_type is None:
            self.finalize()
        else:
            self.abort()

    def __repr__(self) -> str:
        totals = self._totals()
        return (f"ClusterIndexWriter(dir={self.directory!r}, "
                f"segments={self.num_segments}, "
                f"intervals={totals['num_intervals']}, "
                f"clusters={totals['num_clusters']})")

    # ------------------------------------------------------------------
    # Whole-run convenience
    # ------------------------------------------------------------------

    @classmethod
    def write_run(cls, directory: str,
                  interval_clusters: Sequence[Sequence],
                  paths: Sequence, *,
                  vocab: Optional[Vocabulary] = None,
                  query: Optional[Any] = None,
                  plan: Optional[Any] = None,
                  num_shards: int = DEFAULT_SHARDS,
                  overwrite: bool = True,
                  append: bool = False,
                  flush_intervals: Optional[int] = None,
                  merge_policy: Optional[MergePolicy] = None) -> int:
        """Persist a completed batch run in one call; returns total
        log bytes written.

        ``plan`` (an :class:`~repro.engine.planner.ExecutionPlan`)
        contributes its ``explain()`` lines as the index's
        provenance.  With ``append=True`` the run is appended to an
        existing index as new segments continuing its timeline.
        """
        provenance = plan.explain().splitlines() \
            if plan is not None else None
        if query is None and plan is not None:
            query = plan.query
        if append:
            overwrite = False
        with cls(directory, vocab=vocab, query=query,
                 provenance=provenance, num_shards=num_shards,
                 overwrite=overwrite, append=append,
                 flush_intervals=flush_intervals,
                 merge_policy=merge_policy) as writer:
            for clusters in interval_clusters:
                writer.append_interval(clusters)
            writer.set_paths(paths)
            return writer.finalize()
