"""The on-disk layout shared by the index writer and reader.

An index is a directory holding one JSON manifest plus a tier of
immutable *segments* — each a subdirectory of append-only record logs
(:mod:`repro.storage.recordlog` framing, payloads in the compact
varint codec of :mod:`repro.storage.codec`):

* ``manifest.json`` — the versioned atomic pointer to the live
  segment set.  It records the format version, token kind, global
  counts, the query that produced the run, planner provenance, a
  ``generation`` counter bumped on every publish, and — per segment —
  the authoritative byte size of every log file.  Rewritten atomically
  (write + rename) after each append, it is the consistency point:
  readers scan each log only up to the manifest's recorded size, so a
  concurrently appending writer never exposes a torn frame, and a
  merge swaps the whole segment list in one rename while live readers
  keep serving the previous generation from their open handles.
* ``segments/seg-NNNN/`` — one flush (a batch run, or N streamed
  intervals).  A *sealed* segment is immutable; only the last segment
  of the manifest may still be growing.  Each holds:

  - ``vocabulary.bin`` — this segment's *delta* of the interned token
    table, in id order starting at the segment's ``vocab_base``
    (absent for string-token indexes).  Concatenating the deltas in
    segment order reproduces the full table, which is how a reopened
    index appends without re-interning the world.
  - ``clusters-NNN.bin`` — cluster records ``(interval, index, label,
    tokens, token_edges)``, hash-partitioned across ``num_shards``
    shards; intervals are global, so records survive a merge
    byte-for-byte.
  - ``postings.bin`` — one record per interval: the inverted
    keyword -> cluster-index map, in cluster-list order (the order
    the refinement tie-break rule depends on).
  - ``paths.bin`` — top-k stable path generations, numbered from 0
    within the segment; the last record of the last segment that has
    one is the current answer.  Superseded generations are the
    garbage a merge reclaims.

Corruption — truncated frames, checksum mismatches, counts that
disagree with the manifest — surfaces as :class:`IndexCorruptError`
rather than silently wrong answers.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

FORMAT_NAME = "repro-cluster-index"
FORMAT_VERSION = 2

MANIFEST_FILE = "manifest.json"
SEGMENTS_DIR = "segments"
VOCABULARY_FILE = "vocabulary.bin"
POSTINGS_FILE = "postings.bin"
PATHS_FILE = "paths.bin"

TOKEN_KINDS = ("id", "str")


class ClusterIndexError(ValueError):
    """Base error for unusable index directories."""


class IndexCorruptError(ClusterIndexError):
    """The index bytes are damaged.

    Truncated or checksum-failing frames, or counts that contradict
    the manifest."""


def shard_file(shard: int) -> str:
    """File name of cluster shard *shard*."""
    return f"clusters-{shard:03d}.bin"


def shard_for(interval: int, index: int, num_shards: int) -> int:
    """Deterministic shard routing for cluster ``(interval, index)``.

    *interval* is the global interval number, so the routing — and
    therefore the record bytes — is identical before and after a
    merge."""
    return (interval * 31 + index) % num_shards


def segment_name(seq: int) -> str:
    """Directory name of the segment with sequence number *seq*."""
    return f"seg-{seq:04d}"


def segment_dir(directory: str, name: str) -> str:
    """Path of segment *name* inside index *directory*."""
    return os.path.join(directory, SEGMENTS_DIR, name)


def segments_root(directory: str) -> str:
    """Path of the ``segments/`` tier inside index *directory*."""
    return os.path.join(directory, SEGMENTS_DIR)


def new_segment_meta(name: str, first_interval: int,
                     vocab_base: int) -> Dict[str, Any]:
    """A fresh (empty, unsealed) manifest entry for segment *name*."""
    return {
        "name": name,
        "first_interval": first_interval,
        "num_intervals": 0,
        "num_clusters": 0,
        "vocab_base": vocab_base,
        "vocab_size": 0,
        "path_generations": 0,
        "num_paths": 0,
        "sealed": False,
        "files": {},
    }


def list_segment_dirs(directory: str) -> List[str]:
    """Names of the segment directories present on disk, sorted."""
    root = segments_root(directory)
    try:
        entries = os.listdir(root)
    except FileNotFoundError:
        return []
    return sorted(name for name in entries
                  if os.path.isdir(os.path.join(root, name)))


def manifest_path(directory: str) -> str:
    """Path of the manifest inside *directory*."""
    return os.path.join(directory, MANIFEST_FILE)


def load_manifest(directory: str) -> Dict[str, Any]:
    """Read and validate the manifest of the index at *directory*.

    Raises :class:`ClusterIndexError` when the directory holds no
    manifest, the JSON is unreadable, or the format name/version is
    not one this code understands.
    """
    path = manifest_path(directory)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise ClusterIndexError(
            f"no cluster index at {directory!r}: missing "
            f"{MANIFEST_FILE}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexCorruptError(
            f"unreadable index manifest at {path!r}: {exc}") from None
    if manifest.get("format") != FORMAT_NAME:
        raise ClusterIndexError(
            f"{path!r} is not a {FORMAT_NAME} manifest "
            f"(format={manifest.get('format')!r})")
    if manifest.get("version") != FORMAT_VERSION:
        raise ClusterIndexError(
            f"index at {directory!r} has format version "
            f"{manifest.get('version')!r}; this build reads "
            f"version {FORMAT_VERSION}")
    if manifest.get("token_kind") not in TOKEN_KINDS:
        raise IndexCorruptError(
            f"index manifest has unknown token_kind "
            f"{manifest.get('token_kind')!r}")
    segments = manifest.get("segments")
    if not isinstance(segments, list):
        raise IndexCorruptError(
            f"index manifest at {path!r} has no segment list")
    for meta in segments:
        if not isinstance(meta, dict) or "name" not in meta \
                or not isinstance(meta.get("files"), dict):
            raise IndexCorruptError(
                f"index manifest at {path!r} has a malformed "
                f"segment entry: {meta!r}")
    return manifest


def save_manifest(directory: str, manifest: Dict[str, Any]) -> None:
    """Atomically (write + rename) persist *manifest*."""
    path = manifest_path(directory)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
    os.replace(tmp, path)
