"""The on-disk layout shared by the index writer and reader.

An index is a directory of append-only record logs
(:mod:`repro.storage.recordlog` framing, payloads in the compact
varint codec of :mod:`repro.storage.codec`) plus one JSON manifest:

* ``manifest.json`` — format version, token kind, counts, the query
  that produced the run, planner provenance, and the authoritative
  byte size of every log file.  Rewritten atomically after each
  append, it is the consistency point: readers scan each log only up
  to the manifest's recorded size, so a concurrently appending writer
  never exposes a torn frame.
* ``vocabulary.bin`` — the interned token table, appended as deltas in
  id order (absent for string-token indexes).
* ``clusters-NNN.bin`` — cluster records ``(interval, index, label,
  tokens, token_edges)``, hash-partitioned across ``num_shards``
  shards to keep files small and compaction-friendly.
* ``postings.bin`` — one record per interval: the inverted
  keyword -> cluster-index map, in cluster-list order (the order the
  refinement tie-break rule depends on).
* ``paths.bin`` — top-k stable path generations; the last record is
  the current answer (a streaming run appends one per interval).

Corruption — truncated frames, checksum mismatches, counts that
disagree with the manifest — surfaces as :class:`IndexCorruptError`
rather than silently wrong answers.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

FORMAT_NAME = "repro-cluster-index"
FORMAT_VERSION = 1

MANIFEST_FILE = "manifest.json"
VOCABULARY_FILE = "vocabulary.bin"
POSTINGS_FILE = "postings.bin"
PATHS_FILE = "paths.bin"

TOKEN_KINDS = ("id", "str")


class ClusterIndexError(ValueError):
    """Base error for unusable index directories."""


class IndexCorruptError(ClusterIndexError):
    """The index bytes are damaged.

    Truncated or checksum-failing frames, or counts that contradict
    the manifest."""


def shard_file(shard: int) -> str:
    """File name of cluster shard *shard*."""
    return f"clusters-{shard:03d}.bin"


def shard_for(interval: int, index: int, num_shards: int) -> int:
    """Deterministic shard routing for cluster ``(interval, index)``."""
    return (interval * 31 + index) % num_shards


def manifest_path(directory: str) -> str:
    """Path of the manifest inside *directory*."""
    return os.path.join(directory, MANIFEST_FILE)


def load_manifest(directory: str) -> Dict[str, Any]:
    """Read and validate the manifest of the index at *directory*.

    Raises :class:`ClusterIndexError` when the directory holds no
    manifest, the JSON is unreadable, or the format name/version is
    not one this code understands.
    """
    path = manifest_path(directory)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise ClusterIndexError(
            f"no cluster index at {directory!r}: missing "
            f"{MANIFEST_FILE}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexCorruptError(
            f"unreadable index manifest at {path!r}: {exc}") from None
    if manifest.get("format") != FORMAT_NAME:
        raise ClusterIndexError(
            f"{path!r} is not a {FORMAT_NAME} manifest "
            f"(format={manifest.get('format')!r})")
    if manifest.get("version") != FORMAT_VERSION:
        raise ClusterIndexError(
            f"index at {directory!r} has format version "
            f"{manifest.get('version')!r}; this build reads "
            f"version {FORMAT_VERSION}")
    if manifest.get("token_kind") not in TOKEN_KINDS:
        raise IndexCorruptError(
            f"index manifest has unknown token_kind "
            f"{manifest.get('token_kind')!r}")
    return manifest


def save_manifest(directory: str, manifest: Dict[str, Any]) -> None:
    """Atomically (write + rename) persist *manifest*."""
    path = manifest_path(directory)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
    os.replace(tmp, path)
