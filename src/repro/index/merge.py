"""Size-tiered merge/compaction of sealed index segments.

A streaming run leaves behind many small segments (one per flush),
each carrying every intermediate top-k path generation it wrote.
Merging rewrites an adjacent run of sealed segments into one larger
segment: cluster, postings, and vocabulary records are copied
byte-for-byte (intervals are global, so nothing needs renumbering),
while superseded path generations — the garbage — are dropped,
keeping only the newest generation of the rewritten run.  The merged
segment is published by atomically swapping the manifest's segment
list in one generation bump; live readers keep serving the previous
generation from their open handles until they
:meth:`~repro.index.ClusterIndexReader.refresh`, so the old segment
directories are unlinked only after the swap.

:class:`MergePolicy` decides *when*: too many sealed segments
(size-tiered count trigger) or too much reclaimable garbage.
:func:`select_merge_inputs` decides *what*: the cheapest adjacent
window for the count trigger, the most garbage-laden one for the
garbage trigger.  :func:`compact_index` is the standalone entry the
``index merge`` CLI uses on a quiescent index;
:class:`~repro.index.writer.ClusterIndexWriter` drives the same
machinery inline or from a background thread while a stream appends.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.index.format import (
    PATHS_FILE,
    POSTINGS_FILE,
    VOCABULARY_FILE,
    ClusterIndexError,
    load_manifest,
    list_segment_dirs,
    save_manifest,
    segment_dir,
    segment_name,
    shard_file,
)
from repro.storage.codec import decode_record, encode_compact
from repro.storage.recordlog import RecordLogReader, append_record


@dataclass(frozen=True)
class MergePolicy:
    """When and what the compaction tier rewrites.

    ``max_segments`` — merge once more sealed segments than this
    accumulate (the size-tiered count trigger).  ``garbage_ratio`` —
    merge once the estimated reclaimable fraction of the sealed bytes
    (superseded path generations) exceeds this.  ``max_merge_inputs``
    bounds how many segments one rewrite swallows.
    """

    max_segments: int = 4
    garbage_ratio: float = 0.5
    max_merge_inputs: int = 8


def segment_bytes(meta: Dict[str, Any]) -> int:
    """Total log bytes of a segment, per its manifest entry."""
    return sum(meta["files"].values())


def segment_garbage_bytes(meta: Dict[str, Any]) -> int:
    """Estimated bytes a rewrite of this segment would reclaim.

    Path generations are append-only snapshots of the whole top-k,
    so all but the last are garbage; the estimate prorates the paths
    log evenly across its generations."""
    generations = meta.get("path_generations", 0)
    if generations <= 1:
        return 0
    paths_bytes = meta["files"].get(PATHS_FILE, 0)
    return paths_bytes * (generations - 1) // generations


def select_merge_inputs(segments: Sequence[Dict[str, Any]],
                        policy: MergePolicy) -> List[str]:
    """Names of the adjacent sealed segments the policy would merge.

    Empty when no trigger fires.  Count trigger: the cheapest (fewest
    total bytes) adjacent window, so small young segments coalesce
    first.  Garbage trigger: the adjacent window with the most
    reclaimable bytes — possibly a single segment, since rewriting
    one segment already drops its superseded path generations.
    """
    sealed = [meta for meta in segments if meta.get("sealed")]
    if not sealed:
        return []
    if len(sealed) > policy.max_segments:
        width = min(len(sealed), max(2, policy.max_merge_inputs))
        best = min(
            range(len(sealed) - width + 1),
            key=lambda i: sum(segment_bytes(meta)
                              for meta in sealed[i:i + width]))
        return [meta["name"] for meta in sealed[best:best + width]]
    total = sum(segment_bytes(meta) for meta in sealed)
    garbage = sum(segment_garbage_bytes(meta) for meta in sealed)
    if total and garbage / total > policy.garbage_ratio:
        width = min(len(sealed), max(1, policy.max_merge_inputs))
        best = min(
            range(len(sealed) - width + 1),
            key=lambda i: -sum(segment_garbage_bytes(meta)
                               for meta in sealed[i:i + width]))
        return [meta["name"] for meta in sealed[best:best + width]]
    return []


def rewrite_segments(directory: str,
                     metas: Sequence[Dict[str, Any]],
                     out_name: str, *,
                     num_shards: int,
                     use_mmap: bool = True) -> Dict[str, Any]:
    """Rewrite adjacent sealed segments *metas* into *out_name*.

    Copies cluster, postings, and vocabulary records byte-for-byte in
    segment order and keeps only the newest path generation of the
    run (re-numbered to generation 0).  Returns the merged segment's
    manifest entry; the caller publishes it (manifest swap) and then
    removes the input directories.  The output directory is written
    completely before the caller publishes, so a crash mid-rewrite
    leaves only an orphan directory no manifest references.
    """
    if not metas:
        raise ValueError("nothing to merge")
    for before, after in zip(metas, metas[1:]):
        if (before["first_interval"] + before["num_intervals"]
                != after["first_interval"]) or (
                before["vocab_base"] + before.get("vocab_size", 0)
                != after["vocab_base"]):
            raise ClusterIndexError(
                f"segments {before['name']!r} and {after['name']!r} "
                f"are not adjacent; merge windows must be "
                f"contiguous")
    out_dir = segment_dir(directory, out_name)
    if os.path.exists(out_dir):  # a previous crashed attempt
        shutil.rmtree(out_dir)
    os.makedirs(out_dir)
    merged: Dict[str, Any] = {
        "name": out_name,
        "first_interval": metas[0]["first_interval"],
        "num_intervals": sum(m["num_intervals"] for m in metas),
        "num_clusters": sum(m["num_clusters"] for m in metas),
        "vocab_base": metas[0]["vocab_base"],
        "vocab_size": sum(m.get("vocab_size", 0) for m in metas),
        "path_generations": 0,
        "num_paths": 0,
        "sealed": True,
        "files": {},
    }
    copied = [shard_file(shard) for shard in range(num_shards)]
    copied.append(POSTINGS_FILE)
    if any(VOCABULARY_FILE in meta["files"] for meta in metas):
        copied.append(VOCABULARY_FILE)
    for fname in copied:
        written = 0
        with open(os.path.join(out_dir, fname), "wb") as out_fh:
            for meta in metas:
                size = meta["files"].get(fname, 0)
                if not size:
                    continue
                path = os.path.join(
                    segment_dir(directory, meta["name"]), fname)
                with RecordLogReader(path, use_mmap) as log:
                    for payload, _ in log.records(end=size):
                        written += append_record(
                            out_fh, bytes(payload))
        merged["files"][fname] = written
    paths = _newest_paths(directory, metas, use_mmap)
    written = 0
    with open(os.path.join(out_dir, PATHS_FILE), "wb") as out_fh:
        if paths is not None:
            written = append_record(
                out_fh, encode_compact((0, paths)))
            merged["path_generations"] = 1
            merged["num_paths"] = len(paths)
    merged["files"][PATHS_FILE] = written
    return merged


def _newest_paths(directory: str,
                  metas: Sequence[Dict[str, Any]],
                  use_mmap: bool) -> Optional[List[Any]]:
    """The last path generation across *metas*, or None."""
    for meta in reversed(metas):
        if not meta.get("path_generations"):
            continue
        path = os.path.join(
            segment_dir(directory, meta["name"]), PATHS_FILE)
        size = meta["files"].get(PATHS_FILE, 0)
        newest = None
        with RecordLogReader(path, use_mmap) as log:
            for payload, _ in log.records(end=size):
                newest = payload
        if newest is None:
            raise ClusterIndexError(
                f"segment {meta['name']!r} records "
                f"{meta['path_generations']} path generations but "
                f"its paths log is empty")
        _, paths = decode_record(newest)
        return list(paths)
    return None


def compact_index(directory: str,
                  policy: Optional[MergePolicy] = None, *,
                  full: bool = False,
                  force: bool = False,
                  use_mmap: bool = True) -> Dict[str, Any]:
    """Compact the quiescent index at *directory*; returns a report.

    Applies *policy* repeatedly until no trigger fires — or, with
    ``full=True``, until a single sealed segment remains.  Refuses an
    index whose manifest still shows a growing (unsealed) segment:
    that is either a live writer (which must drive its own merges) or
    a crashed run; pass ``force=True`` to seal it in place and
    proceed (the crashed-run recovery the CLI exposes).  Orphaned
    segment directories from crashed flushes or merges are removed.
    The report maps ``segments``/``bytes`` before and after,
    ``merges`` performed, and the final manifest ``generation``.
    """
    policy = policy or MergePolicy()
    manifest = load_manifest(directory)
    segments = [dict(meta, files=dict(meta["files"]))
                for meta in manifest["segments"]]
    unsealed = [meta["name"] for meta in segments
                if not meta.get("sealed")]
    if unsealed and not force:
        raise ClusterIndexError(
            f"index at {directory!r} has a growing segment "
            f"({', '.join(unsealed)}): a live writer merges through "
            f"its own policy; pass force=True only to recover a "
            f"crashed run")
    for meta in segments:
        meta["sealed"] = True
    generation = int(manifest.get("generation", 0))
    next_segment = max(int(manifest.get("next_segment", 0)),
                       len(segments))
    report = {
        "segments_before": len(segments),
        "bytes_before": sum(segment_bytes(m) for m in segments),
        "merges": 0,
    }
    known = {meta["name"] for meta in segments}
    for name in list_segment_dirs(directory):
        if name not in known:
            shutil.rmtree(segment_dir(directory, name),
                          ignore_errors=True)
    num_shards = int(manifest["num_shards"])
    while True:
        if full and len(segments) > 1:
            width = min(len(segments),
                        max(2, policy.max_merge_inputs))
            names = [meta["name"] for meta in segments[:width]]
        else:
            names = select_merge_inputs(segments, policy)
        if not names:
            break
        metas = [meta for meta in segments if meta["name"] in names]
        out_name = segment_name(next_segment)
        next_segment += 1
        merged = rewrite_segments(directory, metas, out_name,
                                  num_shards=num_shards,
                                  use_mmap=use_mmap)
        start = segments.index(metas[0])
        segments[start:start + len(metas)] = [merged]
        generation += 1
        manifest = dict(manifest, segments=segments,
                        generation=generation,
                        next_segment=next_segment)
        manifest.update(_manifest_totals(segments))
        save_manifest(directory, manifest)
        for meta in metas:
            shutil.rmtree(segment_dir(directory, meta["name"]),
                          ignore_errors=True)
        report["merges"] += 1
    if report["merges"] == 0 and unsealed:
        # force=True on a crashed run with nothing to merge: still
        # publish the sealed segment list so a reopen is clean.
        generation += 1
        manifest = dict(manifest, segments=segments,
                        generation=generation,
                        next_segment=next_segment)
        save_manifest(directory, manifest)
    report.update({
        "segments_after": len(segments),
        "bytes_after": sum(segment_bytes(m) for m in segments),
        "generation": generation,
    })
    return report


def _manifest_totals(
        segments: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    totals = {
        "num_intervals": 0, "num_clusters": 0,
        "vocab_size": 0, "path_generations": 0, "num_paths": 0,
    }
    for meta in segments:
        totals["num_intervals"] += meta["num_intervals"]
        totals["num_clusters"] += meta["num_clusters"]
        totals["vocab_size"] += meta.get("vocab_size", 0)
        totals["path_generations"] += meta["path_generations"]
    for meta in reversed(segments):
        if meta["path_generations"]:
            totals["num_paths"] = meta["num_paths"]
            break
    return totals
