"""The persistent cluster index: serve results without recomputing.

The paper's motivating application (Section 1) is interactive — users
query keywords and get back clusters, stable paths, and refinement
suggestions — but the batch, streaming, and parallel layers all
recompute from raw documents and discard the answer.  This package is
the serving substrate: a completed run (per-interval clusters, the
frozen vocabulary, top-k stable paths, planner provenance) persisted
as an on-disk index in the EMBANKS mold — append-only record logs in
the compact varint codec, cluster records hash-sharded, plus an
inverted keyword -> (interval, cluster) posting layer — so point
lookups, interval scans, and query refinement are answered from disk
with an LRU of hot keywords, never from the source documents.

* :class:`~repro.index.writer.ClusterIndexWriter` — the write path;
  batch runs persist via ``find_stable_clusters(index_dir=...)``,
  streaming runs append one interval at a time
  (``StreamingDocumentPipeline(index_dir=...)``).
* :class:`~repro.index.reader.ClusterIndexReader` — the read path:
  ``lookup``/``clusters_at``/``scan``/``paths``/``refiner``, with
  ``refresh()`` to tail a live streaming index.
* :mod:`~repro.index.format` — the layout contract and the
  :class:`~repro.index.format.IndexCorruptError` rejection rules.

The interactive front end over this package is
:class:`repro.service.ClusterQueryService`.
"""

from repro.index.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    ClusterIndexError,
    IndexCorruptError,
    load_manifest,
)
from repro.index.reader import ClusterIndexReader
from repro.index.writer import ClusterIndexWriter

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ClusterIndexError",
    "ClusterIndexReader",
    "ClusterIndexWriter",
    "IndexCorruptError",
    "load_manifest",
]
