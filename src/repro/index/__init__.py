"""The persistent cluster index: serve results without recomputing.

The paper's motivating application (Section 1) is interactive — users
query keywords and get back clusters, stable paths, and refinement
suggestions — but the batch, streaming, and parallel layers all
recompute from raw documents and discard the answer.  This package is
the serving substrate: a run's output (per-interval clusters, the
interned vocabulary, top-k stable paths, planner provenance)
persisted as an on-disk index in the EMBANKS mold — append-only
record logs in the compact varint codec, cluster records
hash-sharded, plus an inverted keyword -> (interval, cluster) posting
layer — so point lookups, interval scans, and query refinement are
answered from disk with an LRU of hot keywords, never from the
source documents.

The index lives as a *tiered segment lifecycle*: every flush seals an
immutable ``segments/seg-NNNN/`` directory, the manifest is a
versioned atomic pointer to the live segment set, and a size-tiered
merge policy compacts small segments while readers keep serving the
previous generation.

* :class:`~repro.index.writer.ClusterIndexWriter` — the write path;
  batch runs persist via ``find_stable_clusters(index_dir=...)``,
  streaming runs append one interval at a time
  (``StreamingDocumentPipeline(index_dir=...)``), and ``append=True``
  reopens an existing index to continue its timeline across process
  restarts (vocabulary deltas are reused, never re-interned).
* :class:`~repro.index.reader.ClusterIndexReader` — the read path:
  ``lookup``/``clusters_at``/``scan``/``paths``/``refiner``, with
  ``refresh()`` tailing a live index from per-segment consumed
  offsets and mmap-backed zero-copy record access.
* :mod:`~repro.index.merge` — the compaction tier:
  :class:`~repro.index.merge.MergePolicy` and
  :func:`~repro.index.merge.compact_index` (the ``index merge`` CLI).
* :mod:`~repro.index.format` — the layout contract and the
  :class:`~repro.index.format.IndexCorruptError` rejection rules.

The interactive front end over this package is
:class:`repro.service.ClusterQueryService`.
"""

from repro.index.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    ClusterIndexError,
    IndexCorruptError,
    load_manifest,
)
from repro.index.merge import MergePolicy, compact_index
from repro.index.reader import ClusterIndexReader
from repro.index.writer import (
    DEFAULT_FLUSH_INTERVALS,
    ClusterIndexWriter,
)

__all__ = [
    "DEFAULT_FLUSH_INTERVALS",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ClusterIndexError",
    "ClusterIndexReader",
    "ClusterIndexWriter",
    "IndexCorruptError",
    "MergePolicy",
    "compact_index",
    "load_manifest",
]
