"""Read path of the persistent cluster index.

:class:`ClusterIndexReader` rebuilds its lookup state — the token
table, the keyword -> (interval, cluster) postings, the per-node
record offsets, and the current top-k paths — by scanning the index
logs once on open, then serves point lookups with one random read per
cluster (LRU-cached), never touching the source documents.  A reader
over a *live* index (a streaming run still appending) can
:meth:`refresh` to tail the growth; scans stop at the manifest's
recorded sizes, so a torn in-flight frame is never decoded.
"""

from __future__ import annotations

import os
from typing import (
    Any,
    BinaryIO,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.core.paths import NodeId, Path
from repro.graph.clusters import KeywordCluster
from repro.index.format import (
    PATHS_FILE,
    POSTINGS_FILE,
    VOCABULARY_FILE,
    IndexCorruptError,
    load_manifest,
    shard_file,
)
from repro.search.refinement import QueryRefiner, prefer_larger
from repro.storage.codec import decode_record
from repro.storage.lru import LRUCache
from repro.storage.recordlog import RecordLogCorruptError, iter_records
from repro.text.stemmer import stem
from repro.vocab import FrozenVocabulary


class ClusterIndexReader:
    """Point lookups, scans, and path queries over a persisted index.

    ``cache_size`` bounds the LRU of decoded clusters (cluster records
    are immutable and the logs append-only, so cached entries never
    go stale, even across :meth:`refresh`).
    """

    def __init__(self, directory: str, cache_size: int = 1024) -> None:
        self.directory = directory
        self._cache = LRUCache(cache_size)
        self._consumed: Dict[str, int] = {}
        self._fhs: Dict[str, BinaryIO] = {}
        self._tokens: List[str] = []
        self._frozen: Optional[FrozenVocabulary] = None
        self._nodes: Dict[NodeId, Tuple[str, int, int]] = {}
        self._per_interval: Dict[int, List[NodeId]] = {}
        self._postings: Dict[Any, List[NodeId]] = {}
        self._paths: List[Path] = []
        self._path_generations = 0
        self._postings_intervals = 0
        self._manifest: Dict[str, Any] = {}
        self._closed = False
        self._load()

    # ------------------------------------------------------------------
    # Loading and refreshing
    # ------------------------------------------------------------------

    def _fh(self, name: str) -> BinaryIO:
        fh = self._fhs.get(name)
        if fh is None:
            path = os.path.join(self.directory, name)
            try:
                fh = open(path, "rb")
            except FileNotFoundError:
                raise IndexCorruptError(
                    f"index at {self.directory!r} is missing "
                    f"{name!r}") from None
            self._fhs[name] = fh
        return fh

    def _scan_frames(self, name: str,
                     limit: int) -> Iterator[Tuple[bytes, int]]:
        """Yield this file's ``(payload, end_offset)`` frames from the
        consumed offset up to *limit* (the manifest's recorded size —
        bytes beyond it, e.g. a live writer's in-flight frame, are
        never read).  Advances the consumed offset as it goes and maps
        every framing failure to :class:`IndexCorruptError`."""
        fh = self._fh(name)
        fh.seek(0, os.SEEK_END)
        if fh.tell() < limit:
            raise IndexCorruptError(
                f"{name!r} is truncated: manifest records {limit} "
                f"bytes, file has {fh.tell()}")
        offset = self._consumed.get(name, 0)
        try:
            for payload, end in iter_records(fh, offset=offset,
                                             end=limit):
                yield payload, end
                offset = end
        except (RecordLogCorruptError, ValueError, IndexError) as exc:
            raise IndexCorruptError(
                f"corrupt record in {name!r}: {exc}") from None
        finally:
            self._consumed[name] = offset

    def _scan(self, name: str, limit: int) -> Iterator[Any]:
        """Decode this file's records within the manifest bound."""
        for payload, _ in self._scan_frames(name, limit):
            try:
                yield decode_record(payload)
            except (ValueError, IndexError) as exc:
                raise IndexCorruptError(
                    f"corrupt record in {name!r}: {exc}") from None

    def _load(self) -> None:
        manifest = load_manifest(self.directory)
        if self._manifest and (
                manifest["num_shards"] != self._manifest["num_shards"]
                or manifest["token_kind"]
                != self._manifest["token_kind"]):
            raise IndexCorruptError(
                f"index at {self.directory!r} changed shape under a "
                f"live reader; reopen it")
        self._manifest = manifest
        sizes = manifest.get("files", {})
        if manifest["token_kind"] == "id":
            for record in self._scan(
                    VOCABULARY_FILE, sizes.get(VOCABULARY_FILE, 0)):
                self._tokens.extend(record)
            if len(self._tokens) != manifest["vocab_size"]:
                raise IndexCorruptError(
                    f"vocabulary holds {len(self._tokens)} tokens, "
                    f"manifest records {manifest['vocab_size']}")
            self._frozen = FrozenVocabulary(self._tokens)
        for shard in range(manifest["num_shards"]):
            name = shard_file(shard)
            self._scan_shard(name, sizes.get(name, 0))
        for record in self._scan(
                POSTINGS_FILE, sizes.get(POSTINGS_FILE, 0)):
            self._fold_postings(record)
        for record in self._scan(PATHS_FILE, sizes.get(PATHS_FILE, 0)):
            generation, paths = record
            self._paths = list(paths)
            self._path_generations = generation + 1
        self._validate(manifest)

    def _scan_shard(self, name: str, limit: int) -> None:
        touched = set()
        for payload, end in self._scan_frames(name, limit):
            try:
                interval, idx = decode_record(payload)[:2]
            except (ValueError, IndexError) as exc:
                raise IndexCorruptError(
                    f"corrupt record in {name!r}: {exc}") from None
            node = (interval, idx)
            self._nodes[node] = (name, end - len(payload),
                                 len(payload))
            self._per_interval.setdefault(interval, []).append(node)
            touched.add(interval)
        for interval in touched:
            self._per_interval[interval].sort()

    def _fold_postings(self, record: Any) -> None:
        interval, by_token = record
        if interval != self._postings_intervals:
            raise IndexCorruptError(
                f"postings records out of order: expected interval "
                f"{self._postings_intervals}, found {interval}")
        for token, indices in by_token.items():
            nodes = self._postings.setdefault(token, [])
            nodes.extend((interval, idx) for idx in indices)
        self._postings_intervals += 1

    def _validate(self, manifest: Dict[str, Any]) -> None:
        if len(self._nodes) != manifest["num_clusters"]:
            raise IndexCorruptError(
                f"cluster shards hold {len(self._nodes)} records, "
                f"manifest records {manifest['num_clusters']}")
        if self._postings_intervals != manifest["num_intervals"]:
            raise IndexCorruptError(
                f"postings cover {self._postings_intervals} "
                f"intervals, manifest records "
                f"{manifest['num_intervals']}")
        if self._path_generations != manifest["path_generations"]:
            raise IndexCorruptError(
                f"paths log holds {self._path_generations} "
                f"generations, manifest records "
                f"{manifest['path_generations']}")
        for interval, nodes in self._per_interval.items():
            if interval >= self._postings_intervals:
                raise IndexCorruptError(
                    f"cluster record for interval {interval} beyond "
                    f"the {self._postings_intervals} indexed "
                    f"intervals")
            if [idx for _, idx in nodes] != list(range(len(nodes))):
                raise IndexCorruptError(
                    f"interval {interval} cluster indices are not "
                    f"dense: {[idx for _, idx in nodes]}")

    def refresh(self) -> bool:
        """Pick up whatever a live writer appended since last load.

        Returns True when new data arrived."""
        manifest = load_manifest(self.directory)
        watched = ("num_intervals", "num_clusters", "vocab_size",
                   "path_generations", "complete")
        if all(manifest.get(key) == self._manifest.get(key)
               for key in watched):
            return False
        self._load()
        return True

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        """Intervals indexed so far."""
        return self._manifest["num_intervals"]

    @property
    def num_clusters(self) -> int:
        """Total cluster records."""
        return self._manifest["num_clusters"]

    @property
    def vocab_size(self) -> int:
        """Interned keyword count (0 for string-token indexes)."""
        return self._manifest["vocab_size"]

    @property
    def complete(self) -> bool:
        """True once the producing run finalized the index."""
        return bool(self._manifest["complete"])

    @property
    def token_kind(self) -> str:
        """``'id'`` (interned) or ``'str'`` (keyword strings)."""
        return self._manifest["token_kind"]

    @property
    def total_bytes(self) -> int:
        """Log bytes the manifest accounts for."""
        return sum(self._manifest.get("files", {}).values())

    def cache_info(self) -> Tuple[int, int, int, int]:
        """``(hits, misses, size, capacity)`` of the cluster cache."""
        return self._cache.info()

    def describe(self) -> str:
        """Multi-line summary for ``index inspect``."""
        manifest = self._manifest
        state = "complete" if self.complete else "live (streaming)"
        lines = [f"cluster index at {self.directory}",
                 f"  format:   {manifest['format']} "
                 f"v{manifest['version']}, {state}"]
        query = manifest.get("query")
        if query:
            lines.append(f"  query:    {query['describe']}")
        lines.append(
            f"  shape:    {self.num_intervals} intervals, "
            f"{self.num_clusters} clusters, {self.vocab_size} "
            f"keywords, {manifest['num_paths']} stable paths")
        lines.append(
            f"  layout:   {manifest['num_shards']} cluster shards, "
            f"{self.token_kind} tokens, {self.total_bytes} log bytes")
        for name in sorted(manifest.get("files", {})):
            lines.append(
                f"    {name}: {manifest['files'][name]} bytes")
        provenance = manifest.get("provenance") or []
        if provenance:
            lines.append("  provenance:")
            lines.extend(f"    {line}" for line in provenance)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Point lookups and scans
    # ------------------------------------------------------------------

    def cluster(self, node: NodeId) -> KeywordCluster:
        """The cluster behind one ``(interval, index)`` node.

        Costs one LRU-cached random read; raises KeyError for
        unknown nodes."""
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        name, offset, length = self._nodes[node]
        fh = self._fh(name)
        fh.seek(offset)
        blob = fh.read(length)
        try:
            interval, idx, label, tokens, edges = decode_record(blob)
        except (ValueError, IndexError) as exc:
            raise IndexCorruptError(
                f"corrupt cluster record for node {node} in "
                f"{name!r}: {exc}") from None
        cluster = KeywordCluster(tokens=tokens, token_edges=edges,
                                 interval=label, vocab=self._frozen)
        self._cache.put(node, cluster)
        return cluster

    def has_node(self, node: NodeId) -> bool:
        """True when ``(interval, index)`` is an indexed cluster."""
        return node in self._nodes

    def clusters_at(self, interval: int) -> List[KeywordCluster]:
        """Every cluster of one interval, in cluster-list order."""
        if not 0 <= interval < self.num_intervals:
            raise ValueError(
                f"interval {interval} out of range "
                f"[0, {self.num_intervals})")
        return [self.cluster(node)
                for node in self._per_interval.get(interval, [])]

    def scan(self, start: int = 0, stop: Optional[int] = None
             ) -> Iterator[Tuple[int, List[KeywordCluster]]]:
        """Yield ``(interval, clusters)`` over an interval range.

        *stop* is exclusive and defaults to the end of the index."""
        stop = self.num_intervals if stop is None else stop
        for interval in range(start, stop):
            yield interval, self.clusters_at(interval)

    def _resolve(self, query_stem: str) -> Optional[Any]:
        """The postings key for an already-stemmed keyword."""
        if self._frozen is None:
            return query_stem if query_stem in self._postings else None
        try:
            return self._frozen.id_of(query_stem)
        except KeyError:
            return None

    def _decode_token(self, token: Any) -> str:
        return token if self._frozen is None \
            else self._frozen.decode(token)

    def _best_cluster(self, query_stem: str,
                      interval: int) -> Optional[KeywordCluster]:
        """The refinement rule over the postings of one interval."""
        token = self._resolve(query_stem)
        if token is None:
            return None
        best: Optional[KeywordCluster] = None
        for node in self._postings.get(token, ()):
            if node[0] == interval:
                best = prefer_larger(best, self.cluster(node))
        return best

    def _latest(self, interval: Optional[int]) -> int:
        if interval is not None:
            return interval
        if self.num_intervals == 0:
            raise ValueError("the index holds no intervals yet")
        return self.num_intervals - 1

    def lookup(self, keyword: str,
               interval: Optional[int] = None
               ) -> Optional[KeywordCluster]:
        """The cluster *keyword* (stemmed) falls into, or None.

        *interval* defaults to the latest indexed interval."""
        return self._best_cluster(stem(keyword.lower()),
                                  self._latest(interval))

    def postings_for(self, keyword: str) -> Tuple[NodeId, ...]:
        """Every node whose cluster contains *keyword* (stemmed).

        Returned as ``(interval, index)`` pairs in interval order."""
        token = self._resolve(stem(keyword.lower()))
        if token is None:
            return ()
        return tuple(self._postings.get(token, ()))

    def stems_at(self, interval: int) -> Iterable[str]:
        """Every stemmed keyword with a cluster at *interval*."""
        for token, nodes in self._postings.items():
            if any(node[0] == interval for node in nodes):
                yield self._decode_token(token)

    # ------------------------------------------------------------------
    # Stable paths
    # ------------------------------------------------------------------

    def paths(self) -> List[Path]:
        """The current top-k stable paths (latest generation)."""
        return list(self._paths)

    def paths_through(self, keyword: str) -> List[Path]:
        """Stable paths visiting any cluster containing *keyword*."""
        nodes = set(self.postings_for(keyword))
        if not nodes:
            return []
        return [path for path in self._paths
                if nodes.intersection(path.nodes)]

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def refiner(self, interval: Optional[int] = None,
                cache_size: int = 256) -> QueryRefiner:
        """A query refiner answering from this index at *interval*.

        Defaults to the latest interval; gives the same answers as a
        :class:`~repro.search.QueryRefiner` built over the in-memory
        cluster list."""
        source = _IndexIntervalSource(self, self._latest(interval))
        return QueryRefiner(source=source, cache_size=cache_size)

    def close(self) -> None:
        """Close every open log handle (idempotent)."""
        if not self._closed:
            for fh in self._fhs.values():
                fh.close()
            self._fhs.clear()
            self._closed = True

    def __enter__(self) -> "ClusterIndexReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ClusterIndexReader(dir={self.directory!r}, "
                f"intervals={self.num_intervals}, "
                f"clusters={self.num_clusters})")


class _IndexIntervalSource:
    """A :class:`~repro.search.refinement.ClusterSource` over one
    indexed interval's postings."""

    def __init__(self, reader: ClusterIndexReader,
                 interval: int) -> None:
        self._reader = reader
        self._interval = interval

    def best_cluster(self, query_stem: str) -> Optional[KeywordCluster]:
        """Delegates to the reader's postings rule."""
        return self._reader._best_cluster(query_stem, self._interval)

    def stems(self) -> Iterable[str]:
        """Keywords with a cluster at this interval."""
        return self._reader.stems_at(self._interval)
