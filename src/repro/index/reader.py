"""Read path of the persistent cluster index.

:class:`ClusterIndexReader` rebuilds its lookup state — the token
table, the keyword -> (interval, cluster) postings, the per-node
record offsets, and the current top-k paths — by scanning each
segment's logs once on open, then serves point lookups with one
random read per cluster (LRU-cached, zero-copy when the logs are
memory-mapped), never touching the source documents.

A reader over a *live* index (a streaming run still appending) can
:meth:`refresh` to tail the growth: each segment remembers its
consumed byte offset per log, so a poll scans only the bytes the
writer appended since the last one — never the whole log again.
Scans stop at the manifest's recorded sizes, so a torn in-flight
frame is never decoded.  When a merge swaps the segment set (the
manifest generation no longer extends the segments this reader
loaded), the reader rebuilds from the new segment list; the decoded
cluster cache survives, because merged records are byte-identical.
"""

from __future__ import annotations

import os
import threading
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.core.paths import NodeId, Path
from repro.graph.clusters import KeywordCluster
from repro.index.format import (
    IndexCorruptError,
    PATHS_FILE,
    POSTINGS_FILE,
    VOCABULARY_FILE,
    load_manifest,
    segment_dir,
    shard_file,
)
from repro.search.refinement import QueryRefiner, prefer_larger
from repro.storage.codec import decode_record
from repro.storage.lru import LRUCache
from repro.storage.recordlog import (
    RecordLogCorruptError,
    RecordLogReader,
)
from repro.text.stemmer import stem
from repro.vocab import FrozenVocabulary

# A cluster record's address: (segment name, file, offset, length).
_NodeRef = Tuple[str, str, int, int]


class _SegmentView:
    """One segment's open logs and tail state inside a reader."""

    __slots__ = ("name", "meta", "directory", "use_mmap", "consumed",
                 "logs", "postings_seen", "paths_seen", "_open_lock")

    def __init__(self, directory: str, meta: Dict[str, Any],
                 use_mmap: bool) -> None:
        self.name: str = meta["name"]
        self.meta = meta
        self.directory = segment_dir(directory, self.name)
        self.use_mmap = use_mmap
        self.consumed: Dict[str, int] = {}
        self.logs: Dict[str, RecordLogReader] = {}
        self.postings_seen = 0
        self.paths_seen = 0
        # Serving threads point-read concurrently; without the lock
        # two threads racing the first read of a log would each open
        # it and leak one handle.
        self._open_lock = threading.Lock()

    def log(self, name: str) -> RecordLogReader:
        reader = self.logs.get(name)
        if reader is None:
            with self._open_lock:
                reader = self.logs.get(name)
                if reader is None:
                    path = os.path.join(self.directory, name)
                    try:
                        reader = RecordLogReader(path, self.use_mmap)
                    except FileNotFoundError:
                        raise IndexCorruptError(
                            f"segment {self.name!r} is missing "
                            f"{name!r}") from None
                    self.logs[name] = reader
        return reader

    def close(self) -> None:
        for reader in self.logs.values():
            reader.close()
        self.logs.clear()


class ClusterIndexReader:
    """Point lookups, scans, and path queries over a persisted index.

    ``cache_size`` bounds the LRU of decoded clusters (cluster
    records are immutable — merges copy them byte-for-byte — so
    cached entries never go stale, even across :meth:`refresh` and
    compactions).  ``use_mmap=False`` forces buffered reads; the
    default memory-maps each log and falls back transparently where
    mapping is unavailable.
    """

    def __init__(self, directory: str, cache_size: int = 1024,
                 use_mmap: bool = True) -> None:
        self.directory = directory
        self._cache = LRUCache(cache_size)
        self._use_mmap = use_mmap
        self._views: Dict[str, _SegmentView] = {}
        self._tokens: List[str] = []
        self._frozen: Optional[FrozenVocabulary] = None
        self._nodes: Dict[NodeId, _NodeRef] = {}
        self._per_interval: Dict[int, List[NodeId]] = {}
        self._postings: Dict[Any, List[NodeId]] = {}
        self._paths: List[Path] = []
        self._path_generations = 0
        self._postings_intervals = 0
        self._bytes_scanned = 0
        self._manifest: Dict[str, Any] = {}
        self._closed = False
        self._apply(load_manifest(self.directory))

    # ------------------------------------------------------------------
    # Loading and refreshing
    # ------------------------------------------------------------------

    def _reset(self) -> None:
        """Drop per-segment state ahead of a structural rebuild.

        The decoded-cluster cache is kept: a merge copies records
        byte-for-byte, so cached clusters stay correct."""
        for view in self._views.values():
            view.close()
        self._views = {}
        self._tokens = []
        self._frozen = None
        self._nodes = {}
        self._per_interval = {}
        self._postings = {}
        self._paths = []
        self._path_generations = 0
        self._postings_intervals = 0

    def _apply(self, manifest: Dict[str, Any]) -> None:
        if self._manifest and (
                manifest["num_shards"] != self._manifest["num_shards"]
                or manifest["token_kind"]
                != self._manifest["token_kind"]):
            raise IndexCorruptError(
                f"index at {self.directory!r} changed shape under a "
                f"live reader; reopen it")
        names = [meta["name"] for meta in manifest["segments"]]
        known = list(self._views)
        if known != names[:len(known)]:
            # A merge (or rebuild) swapped the segment set: the tail
            # state no longer lines up, so rebuild from scratch.
            self._reset()
        self._manifest = manifest
        for meta in manifest["segments"]:
            view = self._views.get(meta["name"])
            if view is None:
                if meta["vocab_base"] != len(self._tokens):
                    raise IndexCorruptError(
                        f"segment {meta['name']!r} expects vocab "
                        f"base {meta['vocab_base']}, reader holds "
                        f"{len(self._tokens)} tokens")
                view = _SegmentView(self.directory, meta,
                                    self._use_mmap)
                self._views[meta["name"]] = view
            view.meta = meta
            self._scan_segment(view)
        if manifest["token_kind"] == "id":
            if len(self._tokens) != manifest["vocab_size"]:
                raise IndexCorruptError(
                    f"vocabulary holds {len(self._tokens)} tokens, "
                    f"manifest records {manifest['vocab_size']}")
            if self._frozen is None \
                    or len(self._frozen) != len(self._tokens):
                self._frozen = FrozenVocabulary(self._tokens)
        self._validate(manifest)

    def _scan_segment(self, view: _SegmentView) -> None:
        sizes = view.meta["files"]
        if self._manifest["token_kind"] == "id":
            for record in self._scan(
                    view, VOCABULARY_FILE,
                    sizes.get(VOCABULARY_FILE, 0)):
                self._tokens.extend(record)
        for shard in range(self._manifest["num_shards"]):
            name = shard_file(shard)
            self._scan_shard(view, name, sizes.get(name, 0))
        for record in self._scan(
                view, POSTINGS_FILE, sizes.get(POSTINGS_FILE, 0)):
            self._fold_postings(view, record)
        for record in self._scan(
                view, PATHS_FILE, sizes.get(PATHS_FILE, 0)):
            generation, paths = record
            if generation != view.paths_seen:
                raise IndexCorruptError(
                    f"path generations out of order in segment "
                    f"{view.name!r}: expected {view.paths_seen}, "
                    f"found {generation}")
            view.paths_seen += 1
            self._paths = list(paths)
        self._path_generations = sum(
            v.paths_seen for v in self._views.values())

    def _scan_frames(self, view: _SegmentView, name: str,
                     limit: int) -> Iterator[Tuple[Any, int]]:
        """Yield ``(payload, end_offset)`` frames of one segment log
        from its consumed offset up to *limit* (the manifest's
        recorded size — bytes beyond it, e.g. a live writer's
        in-flight frame, are never read).  Advances the consumed
        offset as it goes and maps every framing failure to
        :class:`IndexCorruptError`."""
        offset = view.consumed.get(name, 0)
        if offset >= limit:
            return
        log = view.log(name)
        if log.size() < limit:
            raise IndexCorruptError(
                f"{name!r} in segment {view.name!r} is truncated: "
                f"manifest records {limit} bytes, file has "
                f"{log.size()}")
        try:
            for payload, end in log.records(offset=offset, end=limit):
                yield payload, end
                offset = end
        except (RecordLogCorruptError, ValueError, IndexError) as exc:
            raise IndexCorruptError(
                f"corrupt record in {name!r} of segment "
                f"{view.name!r}: {exc}") from None
        finally:
            self._bytes_scanned += offset - view.consumed.get(name, 0)
            view.consumed[name] = offset

    def _scan(self, view: _SegmentView, name: str,
              limit: int) -> Iterator[Any]:
        """Decode one segment log's records within the bound."""
        for payload, _ in self._scan_frames(view, name, limit):
            try:
                yield decode_record(payload)
            except (ValueError, IndexError) as exc:
                raise IndexCorruptError(
                    f"corrupt record in {name!r} of segment "
                    f"{view.name!r}: {exc}") from None

    def _scan_shard(self, view: _SegmentView, name: str,
                    limit: int) -> None:
        touched = set()
        for payload, end in self._scan_frames(view, name, limit):
            try:
                interval, idx = decode_record(payload)[:2]
            except (ValueError, IndexError) as exc:
                raise IndexCorruptError(
                    f"corrupt record in {name!r} of segment "
                    f"{view.name!r}: {exc}") from None
            node = (interval, idx)
            self._nodes[node] = (view.name, name,
                                 end - len(payload), len(payload))
            self._per_interval.setdefault(interval, []).append(node)
            touched.add(interval)
        for interval in touched:
            self._per_interval[interval].sort()

    def _fold_postings(self, view: _SegmentView, record: Any) -> None:
        interval, by_token = record
        expected = view.meta["first_interval"] + view.postings_seen
        if interval != expected:
            raise IndexCorruptError(
                f"postings records out of order in segment "
                f"{view.name!r}: expected interval {expected}, "
                f"found {interval}")
        for token, indices in by_token.items():
            nodes = self._postings.setdefault(token, [])
            nodes.extend((interval, idx) for idx in indices)
        view.postings_seen += 1
        self._postings_intervals += 1

    def _validate(self, manifest: Dict[str, Any]) -> None:
        if len(self._nodes) != manifest["num_clusters"]:
            raise IndexCorruptError(
                f"cluster shards hold {len(self._nodes)} records, "
                f"manifest records {manifest['num_clusters']}")
        if self._postings_intervals != manifest["num_intervals"]:
            raise IndexCorruptError(
                f"postings cover {self._postings_intervals} "
                f"intervals, manifest records "
                f"{manifest['num_intervals']}")
        if self._path_generations != manifest["path_generations"]:
            raise IndexCorruptError(
                f"paths logs hold {self._path_generations} "
                f"generations, manifest records "
                f"{manifest['path_generations']}")
        expected_first = 0
        for meta in manifest["segments"]:
            if meta["first_interval"] != expected_first:
                raise IndexCorruptError(
                    f"segment {meta['name']!r} starts at interval "
                    f"{meta['first_interval']}, expected "
                    f"{expected_first}")
            expected_first += meta["num_intervals"]
        for interval, nodes in self._per_interval.items():
            if interval >= self._postings_intervals:
                raise IndexCorruptError(
                    f"cluster record for interval {interval} beyond "
                    f"the {self._postings_intervals} indexed "
                    f"intervals")
            if [idx for _, idx in nodes] != list(range(len(nodes))):
                raise IndexCorruptError(
                    f"interval {interval} cluster indices are not "
                    f"dense: {[idx for _, idx in nodes]}")

    def refresh(self) -> bool:
        """Pick up whatever a writer published since last load.

        Returns True when a new manifest generation arrived.  A pure
        append tails only the new bytes of the grown segments; a
        merge triggers a structural rebuild over the new segment
        set."""
        manifest = load_manifest(self.directory)
        if manifest.get("generation") == \
                self._manifest.get("generation"):
            return False
        self._apply(manifest)
        return True

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        """Intervals indexed so far."""
        return self._manifest["num_intervals"]

    @property
    def num_clusters(self) -> int:
        """Total cluster records."""
        return self._manifest["num_clusters"]

    @property
    def vocab_size(self) -> int:
        """Interned keyword count (0 for string-token indexes)."""
        return self._manifest["vocab_size"]

    @property
    def complete(self) -> bool:
        """True once the producing run finalized the index."""
        return bool(self._manifest["complete"])

    @property
    def token_kind(self) -> str:
        """``'id'`` (interned) or ``'str'`` (keyword strings)."""
        return self._manifest["token_kind"]

    @property
    def generation(self) -> int:
        """Manifest generation this reader currently serves."""
        return int(self._manifest.get("generation", 0))

    @property
    def num_segments(self) -> int:
        """Segments in the generation this reader serves."""
        return len(self._manifest["segments"])

    @property
    def bytes_scanned(self) -> int:
        """Log bytes scanned since open, across loads and refreshes.

        A tailing reader's growth between polls is the new bytes
        only — the per-segment offsets make re-scans incremental."""
        return self._bytes_scanned

    @property
    def mmap_active(self) -> bool:
        """True when at least one open log serves from an mmap."""
        return any(log.mmapped
                   for view in self._views.values()
                   for log in view.logs.values())

    @property
    def total_bytes(self) -> int:
        """Log bytes the manifest accounts for."""
        return sum(sum(meta["files"].values())
                   for meta in self._manifest["segments"])

    def cache_info(self) -> Tuple[int, int, int, int]:
        """``(hits, misses, size, capacity)`` of the cluster cache."""
        return self._cache.info()

    def segments(self) -> List[Dict[str, Any]]:
        """Per-segment shape summaries, in manifest order."""
        out = []
        for meta in self._manifest["segments"]:
            out.append({
                "name": meta["name"],
                "first_interval": meta["first_interval"],
                "num_intervals": meta["num_intervals"],
                "num_clusters": meta["num_clusters"],
                "vocab_size": meta.get("vocab_size", 0),
                "path_generations": meta["path_generations"],
                "bytes": sum(meta["files"].values()),
                "sealed": bool(meta.get("sealed")),
            })
        return out

    def shard_summary(self) -> List[Dict[str, Any]]:
        """Per-shard record counts and log bytes across segments.

        Hash-shard balance bounds how evenly distributed
        scatter-gather fan-out splits the work, so skew is worth
        inspecting before choosing ``serve --shards N`` (the
        ``index inspect --shards`` CLI flag)."""
        num_shards = int(self._manifest["num_shards"])
        shard_of = {shard_file(shard): shard
                    for shard in range(num_shards)}
        records = [0] * num_shards
        sizes = [0] * num_shards
        for _, name, _, _ in self._nodes.values():
            records[shard_of[name]] += 1
        for meta in self._manifest["segments"]:
            for name, size in meta["files"].items():
                shard = shard_of.get(name)
                if shard is not None:
                    sizes[shard] += size
        return [{"shard": shard, "file": shard_file(shard),
                 "records": records[shard], "bytes": sizes[shard]}
                for shard in range(num_shards)]

    def describe(self, segments: bool = False,
                 shards: bool = False) -> str:
        """Multi-line summary for ``index inspect``.

        With ``segments=True`` every segment gets its own line (the
        ``--segments`` CLI flag); ``shards=True`` adds per-shard
        record counts and bytes (the ``--shards`` flag), the skew
        view that bounds scatter-gather balance."""
        manifest = self._manifest
        state = "complete" if self.complete else "live (streaming)"
        lines = [f"cluster index at {self.directory}",
                 f"  format:   {manifest['format']} "
                 f"v{manifest['version']}, {state}"]
        query = manifest.get("query")
        if query:
            lines.append(f"  query:    {query['describe']}")
        lines.append(
            f"  shape:    {self.num_intervals} intervals, "
            f"{self.num_clusters} clusters, {self.vocab_size} "
            f"keywords, {manifest['num_paths']} stable paths")
        lines.append(
            f"  layout:   {self.num_segments} segments "
            f"(generation {self.generation}), "
            f"{manifest['num_shards']} cluster shards, "
            f"{self.token_kind} tokens, {self.total_bytes} log bytes")
        if segments:
            for info in self.segments():
                first = info["first_interval"]
                last = first + info["num_intervals"]
                state = "sealed" if info["sealed"] else "growing"
                lines.append(
                    f"    {info['name']}: intervals [{first}, "
                    f"{last}), {info['num_clusters']} clusters, "
                    f"{info['vocab_size']} keywords, "
                    f"{info['path_generations']} path generations, "
                    f"{info['bytes']} bytes, {state}")
        if shards:
            summary = self.shard_summary()
            total = sum(info["records"] for info in summary) or 1
            lines.append("  shards:")
            for info in summary:
                share = 100.0 * info["records"] / total
                lines.append(
                    f"    {info['file']}: {info['records']} records "
                    f"({share:.1f}%), {info['bytes']} bytes")
        provenance = manifest.get("provenance") or []
        if provenance:
            lines.append("  provenance:")
            lines.extend(f"    {line}" for line in provenance)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Point lookups and scans
    # ------------------------------------------------------------------

    def cluster(self, node: NodeId) -> KeywordCluster:
        """The cluster behind one ``(interval, index)`` node.

        Costs one LRU-cached random read (zero-copy off the mmap
        when available); raises KeyError for unknown nodes."""
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        seg_name, name, offset, length = self._nodes[node]
        view = self._views[seg_name]
        blob = view.log(name).pread(offset, length)
        try:
            interval, idx, label, tokens, edges = decode_record(blob)
        except (ValueError, IndexError) as exc:
            raise IndexCorruptError(
                f"corrupt cluster record for node {node} in "
                f"{name!r} of segment {seg_name!r}: {exc}") from None
        cluster = KeywordCluster(tokens=tokens, token_edges=edges,
                                 interval=label, vocab=self._frozen)
        self._cache.put(node, cluster)
        return cluster

    def has_node(self, node: NodeId) -> bool:
        """True when ``(interval, index)`` is an indexed cluster."""
        return node in self._nodes

    def clusters_at(self, interval: int) -> List[KeywordCluster]:
        """Every cluster of one interval, in cluster-list order."""
        if not 0 <= interval < self.num_intervals:
            raise ValueError(
                f"interval {interval} out of range "
                f"[0, {self.num_intervals})")
        return [self.cluster(node)
                for node in self._per_interval.get(interval, [])]

    def scan(self, start: int = 0, stop: Optional[int] = None
             ) -> Iterator[Tuple[int, List[KeywordCluster]]]:
        """Yield ``(interval, clusters)`` over an interval range.

        *stop* is exclusive and defaults to the end of the index."""
        stop = self.num_intervals if stop is None else stop
        for interval in range(start, stop):
            yield interval, self.clusters_at(interval)

    def _resolve(self, query_stem: str) -> Optional[Any]:
        """The postings key for an already-stemmed keyword."""
        if self._frozen is None:
            return query_stem if query_stem in self._postings else None
        try:
            return self._frozen.id_of(query_stem)
        except KeyError:
            return None

    def _decode_token(self, token: Any) -> str:
        return token if self._frozen is None \
            else self._frozen.decode(token)

    def _best_cluster(self, query_stem: str,
                      interval: int) -> Optional[KeywordCluster]:
        """The refinement rule over the postings of one interval."""
        token = self._resolve(query_stem)
        if token is None:
            return None
        best: Optional[KeywordCluster] = None
        for node in self._postings.get(token, ()):
            if node[0] == interval:
                best = prefer_larger(best, self.cluster(node))
        return best

    def _latest(self, interval: Optional[int]) -> int:
        if interval is not None:
            return interval
        if self.num_intervals == 0:
            raise ValueError("the index holds no intervals yet")
        return self.num_intervals - 1

    def lookup(self, keyword: str,
               interval: Optional[int] = None
               ) -> Optional[KeywordCluster]:
        """The cluster *keyword* (stemmed) falls into, or None.

        *interval* defaults to the latest indexed interval."""
        return self._best_cluster(stem(keyword.lower()),
                                  self._latest(interval))

    def postings_for(self, keyword: str) -> Tuple[NodeId, ...]:
        """Every node whose cluster contains *keyword* (stemmed).

        Returned as ``(interval, index)`` pairs in interval order."""
        token = self._resolve(stem(keyword.lower()))
        if token is None:
            return ()
        return tuple(self._postings.get(token, ()))

    def stems_at(self, interval: int) -> Iterable[str]:
        """Every stemmed keyword with a cluster at *interval*."""
        for token, nodes in self._postings.items():
            if any(node[0] == interval for node in nodes):
                yield self._decode_token(token)

    # ------------------------------------------------------------------
    # Stable paths
    # ------------------------------------------------------------------

    def paths(self) -> List[Path]:
        """The current top-k stable paths (latest generation)."""
        return list(self._paths)

    def paths_through(self, keyword: str) -> List[Path]:
        """Stable paths visiting any cluster containing *keyword*."""
        nodes = set(self.postings_for(keyword))
        if not nodes:
            return []
        return [path for path in self._paths
                if nodes.intersection(path.nodes)]

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def refiner(self, interval: Optional[int] = None,
                cache_size: int = 256) -> QueryRefiner:
        """A query refiner answering from this index at *interval*.

        Defaults to the latest interval; gives the same answers as a
        :class:`~repro.search.QueryRefiner` built over the in-memory
        cluster list."""
        source = _IndexIntervalSource(self, self._latest(interval))
        return QueryRefiner(source=source, cache_size=cache_size)

    def close(self) -> None:
        """Close every open log handle and mapping (idempotent)."""
        if not self._closed:
            for view in self._views.values():
                view.close()
            self._views = {}
            self._closed = True

    def __enter__(self) -> "ClusterIndexReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ClusterIndexReader(dir={self.directory!r}, "
                f"segments={self.num_segments}, "
                f"intervals={self.num_intervals}, "
                f"clusters={self.num_clusters})")


class _IndexIntervalSource:
    """A :class:`~repro.search.refinement.ClusterSource` over one
    indexed interval's postings."""

    def __init__(self, reader: ClusterIndexReader,
                 interval: int) -> None:
        self._reader = reader
        self._interval = interval

    def best_cluster(self, query_stem: str) -> Optional[KeywordCluster]:
        """Delegates to the reader's postings rule."""
        return self._reader._best_cluster(query_stem, self._interval)

    def stems(self) -> Iterable[str]:
        """Keywords with a cluster at this interval."""
        return self._reader.stems_at(self._interval)
