"""The interactive query front end over a persisted cluster index.

:class:`ClusterQueryService` is what a serving tier instantiates per
index: it owns a :class:`~repro.index.ClusterIndexReader`, keeps one
LRU-cached :class:`~repro.search.QueryRefiner` per queried interval,
and answers the paper's Section-1 questions — refinement suggestions,
keyword -> cluster lookups, stable paths — without ever touching the
source documents.  Against a *live* index (a streaming run still
appending) :meth:`refresh` tails the growth and invalidates the
per-interval refiners that changed.

The service is thread-safe and built to be shared by every connection
of a concurrent server (:mod:`repro.serving`): queries hold a shared
read lock while :meth:`refresh` takes the write side, so a tailing
poll or a merge's segment swap rewrites the index structures only
once in-flight readers drain — and never corrupts one mid-answer.
Hot refinement answers live in a *single* LRU shared across all
intervals and connections (keyed ``(interval, stem)``), replacing the
per-refiner caches of the single-threaded era, so its hit/miss
counters survive refreshes and one memory budget bounds the whole
working set.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

from repro.core.paths import Path
from repro.graph.clusters import KeywordCluster
from repro.index.reader import ClusterIndexReader
from repro.pipeline.stable_pipeline import render_path_clusters
from repro.search.refinement import QueryRefiner, Refinement
from repro.storage.lru import LRUCache
from repro.storage.rwlock import RWLock
from repro.text.stemmer import stem

DEFAULT_REFINER_CACHE = 256

_MISSING = object()


class ClusterQueryService:
    """Serve refinements, lookups, and stable paths from an index.

    Accepts a directory path (the reader is opened and owned — closed
    with the service) or an already-open
    :class:`~repro.index.ClusterIndexReader` (left open on close).
    ``cache_size`` bounds the shared hot-keyword LRU of refinement
    answers; ``cluster_cache_size`` sizes the owned reader's
    decoded-cluster LRU (only valid with a directory path, where this
    service opens the reader itself).

    All query methods are thread-safe and may be called from any
    number of threads concurrently with :meth:`refresh`.  After
    :meth:`close`, queries raise :class:`RuntimeError` (the same
    use-after-close contract as :mod:`repro.parallel` pools) instead
    of failing deep inside the reader.
    """

    def __init__(self, index: Union[str, ClusterIndexReader],
                 cache_size: int = DEFAULT_REFINER_CACHE,
                 cluster_cache_size: Optional[int] = None) -> None:
        self._owns_reader = isinstance(index, str)
        if isinstance(index, str):
            if cluster_cache_size is None:
                self.reader = ClusterIndexReader(index)
            else:
                self.reader = ClusterIndexReader(
                    index, cache_size=cluster_cache_size)
        else:
            if cluster_cache_size is not None:
                raise ValueError(
                    "cluster_cache_size applies only when the service "
                    "opens the reader itself (pass a directory path)")
            self.reader = index
        self._cache_size = cache_size
        self._refiners: Dict[int, QueryRefiner] = {}
        # One hot-keyword answer cache for every interval and every
        # connection, keyed (interval, stem).  Counters survive
        # refresh(), unlike the per-refiner caches they replace.
        self._hot = LRUCache(cache_size)
        self._rwlock = RWLock()
        self._refiner_lock = threading.Lock()
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__} used after close()")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        """Intervals the index currently covers."""
        return self.reader.num_intervals

    @property
    def latest_interval(self) -> int:
        """The most recent indexed interval, the default target.

        Raises ValueError while the index is empty."""
        self._check_open()
        if self.reader.num_intervals == 0:
            raise ValueError("the index holds no intervals yet")
        return self.reader.num_intervals - 1

    def refiner(self, interval: Optional[int] = None) -> QueryRefiner:
        """The (cached) refiner for *interval* (default: latest).

        Service-built refiners carry no private answer cache; hot
        answers live in the service's shared LRU instead."""
        self._check_open()
        interval = self.latest_interval if interval is None \
            else interval
        refiner = self._refiners.get(interval)
        if refiner is None:
            with self._refiner_lock:
                refiner = self._refiners.get(interval)
                if refiner is None:
                    refiner = self.reader.refiner(interval,
                                                  cache_size=0)
                    self._refiners[interval] = refiner
        return refiner

    def refine(self, keyword: str,
               interval: Optional[int] = None) -> Optional[Refinement]:
        """Refinement suggestions for *keyword*, or None.

        *interval* defaults to the latest indexed interval; None
        means the keyword falls in no cluster there.  Answers for hot
        ``(interval, keyword)`` pairs come from the shared LRU."""
        self._check_open()
        with self._rwlock.read_locked():
            if interval is None:
                interval = self.latest_interval
            key = (interval, stem(keyword.lower()))
            cached = self._hot.get(key, _MISSING)
            if cached is not _MISSING:
                return cached
            result = self.refiner(interval).refine(keyword)
            self._hot.put(key, result)
            return result

    def lookup(self, keyword: str,
               interval: Optional[int] = None
               ) -> Optional[KeywordCluster]:
        """The cluster *keyword* falls into, or None.

        *interval* defaults to the latest indexed interval."""
        self._check_open()
        with self._rwlock.read_locked():
            return self.reader.lookup(keyword, interval)

    def stable_paths(self) -> List[Path]:
        """The run's current top-k stable paths."""
        self._check_open()
        with self._rwlock.read_locked():
            return self.reader.paths()

    def paths_for(self, keyword: str) -> List[Path]:
        """Stable paths visiting any cluster containing *keyword*."""
        self._check_open()
        with self._rwlock.read_locked():
            return self.reader.paths_through(keyword)

    def render_path(self, path: Path, max_keywords: int = 8) -> str:
        """Render one stable path, clusters read from the index.

        Uses the same renderer as the batch/stream CLI."""
        self._check_open()
        with self._rwlock.read_locked():
            return render_path_clusters(
                path, lambda node: self.reader.cluster(node)
                if self.reader.has_node(node) else None,
                max_keywords=max_keywords,
                missing="(not in index)")

    # ------------------------------------------------------------------
    # Live indexes
    # ------------------------------------------------------------------

    def refresh(self) -> bool:
        """Tail a live index; True when new intervals/paths arrived.

        Runs under the write lock, so in-flight queries finish on the
        old segment view and queries arriving during the swap wait for
        the new one.  The refiner and hot answers for what used to be
        the latest interval are invalidated (a streaming writer only
        appends, so older intervals' answers cannot change)."""
        self._check_open()
        with self._rwlock.write_locked():
            before = self.reader.num_intervals
            if not self.reader.refresh():
                return False
            for interval in list(self._refiners):
                if interval >= before - 1:
                    del self._refiners[interval]
            for key in self._hot.keys():
                if key[0] >= before - 1:
                    self._hot.pop(key)
            return True

    @property
    def complete(self) -> bool:
        """True once the producing run finalized the index."""
        return self.reader.complete

    def describe(self, segments: bool = False,
                 shards: bool = False) -> str:
        """The underlying index summary (``index inspect``).

        ``segments=True`` appends one line per live segment
        (``index inspect --segments``); ``shards=True`` adds the
        per-shard skew view (``index inspect --shards``)."""
        self._check_open()
        with self._rwlock.read_locked():
            return self.reader.describe(segments=segments,
                                        shards=shards)

    # ------------------------------------------------------------------
    # Serving statistics
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Serving counters: cache hit/miss totals and index shape.

        ``refiner_hits``/``refiner_misses`` count the shared
        hot-keyword answer LRU (monotonic across :meth:`refresh` —
        invalidation drops entries, never counters);
        ``cluster_hits``/``cluster_misses`` are the reader's
        decoded-cluster LRU; the rest describe what the reader
        currently serves (segment count, manifest generation, bytes
        tailed so far, whether records come off an mmap).  All
        counters reset with the process, not the index.
        """
        self._check_open()
        with self._rwlock.read_locked():
            hot_hits, hot_misses, hot_size, _ = self._hot.info()
            hits, misses, size, capacity = self.reader.cache_info()
            return {
                "refiner_hits": hot_hits,
                "refiner_misses": hot_misses,
                "refiner_entries": hot_size,
                "refiners_open": len(self._refiners),
                "cluster_hits": hits,
                "cluster_misses": misses,
                "cluster_entries": size,
                "cluster_capacity": capacity,
                "segments": self.reader.num_segments,
                "generation": self.reader.generation,
                "intervals": self.reader.num_intervals,
                "bytes_scanned": self.reader.bytes_scanned,
                "mmap_active": int(self.reader.mmap_active),
            }

    def describe_stats(self) -> str:
        """:meth:`stats` rendered for ``query --stats``."""
        stats = self.stats()

        def rate(hits: int, misses: int) -> str:
            total = hits + misses
            if total == 0:
                return "no queries yet"
            return (f"{hits}/{total} hits "
                    f"({100.0 * hits / total:.0f}%)")

        lines = [
            "service stats:",
            f"  refiner cache: "
            f"{rate(stats['refiner_hits'], stats['refiner_misses'])}"
            f", {stats['refiner_entries']} entries across "
            f"{stats['refiners_open']} interval(s)",
            f"  cluster cache: "
            f"{rate(stats['cluster_hits'], stats['cluster_misses'])}"
            f", {stats['cluster_entries']}/"
            f"{stats['cluster_capacity']} entries",
            f"  index: {stats['segments']} segments "
            f"(generation {stats['generation']}), "
            f"{stats['intervals']} intervals, "
            f"{stats['bytes_scanned']} bytes scanned, "
            f"mmap {'on' if stats['mmap_active'] else 'off'}",
        ]
        return "\n".join(lines)

    def close(self) -> None:
        """Close the reader if this service opened it (idempotent).

        Queries after close raise RuntimeError — mirroring the
        :mod:`repro.parallel` pool use-after-close contract — instead
        of failing deep in the reader."""
        if self._closed:
            return
        self._closed = True
        with self._rwlock.write_locked():
            if self._owns_reader:
                self.reader.close()

    def __enter__(self) -> "ClusterQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ClusterQueryService(dir={self.reader.directory!r}, "
                f"intervals={self.reader.num_intervals})")
