"""The interactive query front end over a persisted cluster index.

:class:`ClusterQueryService` is what a serving tier instantiates per
index: it owns a :class:`~repro.index.ClusterIndexReader`, keeps one
LRU-cached :class:`~repro.search.QueryRefiner` per queried interval,
and answers the paper's Section-1 questions — refinement suggestions,
keyword -> cluster lookups, stable paths — without ever touching the
source documents.  Against a *live* index (a streaming run still
appending) :meth:`refresh` tails the growth and invalidates the
per-interval refiners that changed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.paths import Path
from repro.graph.clusters import KeywordCluster
from repro.index.reader import ClusterIndexReader
from repro.pipeline.stable_pipeline import render_path_clusters
from repro.search.refinement import QueryRefiner, Refinement

DEFAULT_REFINER_CACHE = 256


class ClusterQueryService:
    """Serve refinements, lookups, and stable paths from an index.

    Accepts a directory path (the reader is opened and owned — closed
    with the service) or an already-open
    :class:`~repro.index.ClusterIndexReader` (left open on close).
    ``cache_size`` bounds each per-interval refiner's LRU of hot
    keyword answers.
    """

    def __init__(self, index: Union[str, ClusterIndexReader],
                 cache_size: int = DEFAULT_REFINER_CACHE) -> None:
        self._owns_reader = isinstance(index, str)
        self.reader = ClusterIndexReader(index) \
            if isinstance(index, str) else index
        self._cache_size = cache_size
        self._refiners: Dict[int, QueryRefiner] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        """Intervals the index currently covers."""
        return self.reader.num_intervals

    @property
    def latest_interval(self) -> int:
        """The most recent indexed interval, the default target.

        Raises ValueError while the index is empty."""
        if self.reader.num_intervals == 0:
            raise ValueError("the index holds no intervals yet")
        return self.reader.num_intervals - 1

    def refiner(self, interval: Optional[int] = None) -> QueryRefiner:
        """The (cached) refiner for *interval* (default: latest)."""
        interval = self.latest_interval if interval is None \
            else interval
        refiner = self._refiners.get(interval)
        if refiner is None:
            refiner = self.reader.refiner(interval,
                                          cache_size=self._cache_size)
            self._refiners[interval] = refiner
        return refiner

    def refine(self, keyword: str,
               interval: Optional[int] = None) -> Optional[Refinement]:
        """Refinement suggestions for *keyword*, or None.

        *interval* defaults to the latest indexed interval; None
        means the keyword falls in no cluster there."""
        return self.refiner(interval).refine(keyword)

    def lookup(self, keyword: str,
               interval: Optional[int] = None
               ) -> Optional[KeywordCluster]:
        """The cluster *keyword* falls into, or None.

        *interval* defaults to the latest indexed interval."""
        return self.reader.lookup(keyword, interval)

    def stable_paths(self) -> List[Path]:
        """The run's current top-k stable paths."""
        return self.reader.paths()

    def paths_for(self, keyword: str) -> List[Path]:
        """Stable paths visiting any cluster containing *keyword*."""
        return self.reader.paths_through(keyword)

    def render_path(self, path: Path, max_keywords: int = 8) -> str:
        """Render one stable path, clusters read from the index.

        Uses the same renderer as the batch/stream CLI."""
        return render_path_clusters(
            path, lambda node: self.reader.cluster(node)
            if self.reader.has_node(node) else None,
            max_keywords=max_keywords,
            missing="(not in index)")

    # ------------------------------------------------------------------
    # Live indexes
    # ------------------------------------------------------------------

    def refresh(self) -> bool:
        """Tail a live index; True when new intervals/paths arrived.

        The refiner for what used to be the latest interval is
        invalidated (a streaming writer only appends, so older
        intervals' answers cannot change)."""
        before = self.reader.num_intervals
        if not self.reader.refresh():
            return False
        for interval in list(self._refiners):
            if interval >= before - 1:
                del self._refiners[interval]
        return True

    @property
    def complete(self) -> bool:
        """True once the producing run finalized the index."""
        return self.reader.complete

    def describe(self, segments: bool = False) -> str:
        """The underlying index summary (``index inspect``).

        ``segments=True`` appends one line per live segment
        (``index inspect --segments``)."""
        return self.reader.describe(segments=segments)

    # ------------------------------------------------------------------
    # Serving statistics
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Serving counters: cache hit/miss totals and index shape.

        ``refiner_hits``/``refiner_misses`` aggregate the per-interval
        refinement-answer LRUs; ``cluster_hits``/``cluster_misses``
        are the reader's decoded-cluster LRU; the rest describe what
        the reader currently serves (segment count, manifest
        generation, bytes tailed so far, whether records come off an
        mmap).  All counters reset with the process, not the index.
        """
        refiner_hits = refiner_misses = refiner_size = 0
        for refiner in self._refiners.values():
            hits, misses, size, _ = refiner.cache_info()
            refiner_hits += hits
            refiner_misses += misses
            refiner_size += size
        hits, misses, size, capacity = self.reader.cache_info()
        return {
            "refiner_hits": refiner_hits,
            "refiner_misses": refiner_misses,
            "refiner_entries": refiner_size,
            "refiners_open": len(self._refiners),
            "cluster_hits": hits,
            "cluster_misses": misses,
            "cluster_entries": size,
            "cluster_capacity": capacity,
            "segments": self.reader.num_segments,
            "generation": self.reader.generation,
            "intervals": self.reader.num_intervals,
            "bytes_scanned": self.reader.bytes_scanned,
            "mmap_active": int(self.reader.mmap_active),
        }

    def describe_stats(self) -> str:
        """:meth:`stats` rendered for ``query --stats``."""
        stats = self.stats()

        def rate(hits: int, misses: int) -> str:
            total = hits + misses
            if total == 0:
                return "no queries yet"
            return (f"{hits}/{total} hits "
                    f"({100.0 * hits / total:.0f}%)")

        lines = [
            "service stats:",
            f"  refiner cache: "
            f"{rate(stats['refiner_hits'], stats['refiner_misses'])}"
            f", {stats['refiner_entries']} entries across "
            f"{stats['refiners_open']} interval(s)",
            f"  cluster cache: "
            f"{rate(stats['cluster_hits'], stats['cluster_misses'])}"
            f", {stats['cluster_entries']}/"
            f"{stats['cluster_capacity']} entries",
            f"  index: {stats['segments']} segments "
            f"(generation {stats['generation']}), "
            f"{stats['intervals']} intervals, "
            f"{stats['bytes_scanned']} bytes scanned, "
            f"mmap {'on' if stats['mmap_active'] else 'off'}",
        ]
        return "\n".join(lines)

    def close(self) -> None:
        """Close the reader if this service opened it."""
        if self._owns_reader:
            self.reader.close()

    def __enter__(self) -> "ClusterQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ClusterQueryService(dir={self.reader.directory!r}, "
                f"intervals={self.reader.num_intervals})")
