"""The read-path serving layer (Section 1's interactive application).

Users query keywords and get back clusters, stable paths, and
refinement suggestions; :class:`ClusterQueryService` answers all
three from a persisted :mod:`repro.index` — point lookups against the
keyword postings, per-interval query refiners with LRU-cached hot
answers, and ``refresh()`` tailing of a live streaming index.  The
CLI's ``query`` subcommand is a thin shell over this class.
"""

from repro.service.query_service import ClusterQueryService

__all__ = ["ClusterQueryService"]
