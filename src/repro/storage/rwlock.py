"""A writer-preferring read-write lock for the serving tier.

Queries against a :class:`~repro.service.ClusterQueryService` only
*read* the index structures, so any number of them may run at once;
a :meth:`~repro.service.ClusterQueryService.refresh` that tails a
live index (or absorbs a merge's segment swap) *rewrites* those
structures and must run alone.  A plain mutex would serialize every
query behind every other; this lock lets readers share and makes the
writer wait only for the readers already in flight.

Writer preference — arriving readers queue behind a *waiting* writer
rather than overtaking it — keeps a refresh from starving under a
steady query load: the swap happens as soon as the current readers
drain, and the queued readers then see the new segments.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Shared/exclusive lock: many readers or one writer.

    Use the :meth:`read_locked` / :meth:`write_locked` context
    managers; the raw acquire/release pairs exist for callers that
    need to span a lock across methods.  The lock is not reentrant —
    a thread holding it in either mode must not acquire it again.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        """Take the lock shared; blocks while a writer holds or waits."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Release one shared hold, waking a waiting writer when last."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Take the lock exclusive; blocks until in-flight readers drain."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        """Release the exclusive hold and wake every waiter."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked():`` — shared critical section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked():`` — exclusive critical section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (f"RWLock(readers={self._readers}, "
                f"writer={self._writer}, "
                f"writers_waiting={self._writers_waiting})")
