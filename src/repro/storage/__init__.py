"""Secondary-storage substrate.

The paper's algorithms are designed to be "efficiently realizable in
secondary storage": the cluster-generation stack may be paged out, the
BFS keeps a sliding window of intervals in memory, and the DFS stores
per-node annotations on disk.  This package provides the storage
primitives those implementations use:

* :class:`~repro.storage.iostats.IOStats` — read/write/seek counters so
  benchmarks can report I/O effort independently of wall-clock time.
* :class:`~repro.storage.pager.PagedFile` and
  :class:`~repro.storage.pager.BufferPool` — a fixed-size-page file
  with an LRU buffer pool.
* :class:`~repro.storage.diskdict.DiskDict` — a disk-backed record
  store mapping keys to serialized values (used for per-node heaps and
  ``maxweight``/``bestpaths`` annotations), written by default with
  the compact varint codec of :mod:`repro.storage.codec`.
* :class:`~repro.storage.spillstack.SpillableStack` — a stack whose
  bottom spills to disk beyond a memory budget (Algorithm 1's edge
  stack "can be efficiently paged to secondary storage").
* :class:`~repro.storage.backends.StateStore` — the pluggable backend
  protocol the search engines store node annotations through, with
  :class:`~repro.storage.backends.MemoryStore` and the
  hash-partitioned :class:`~repro.storage.backends.ShardedStore`
  implementations (``DiskDict`` conforms as-is).
* :mod:`~repro.storage.recordlog` — framed, crc32-checksummed record
  logs: the durable file format the persistent cluster index
  (:mod:`repro.index`) is built from.
* :class:`~repro.storage.lru.LRUCache` — the bounded, thread-safe
  read cache shared by ``DiskDict``, the index reader, and the query
  refiner.
* :class:`~repro.storage.rwlock.RWLock` — the writer-preferring
  read-write lock the serving tier queries through while a live
  index refresh swaps segments.
"""

from repro.storage.backends import (
    BACKEND_SPECS,
    MemoryStore,
    ShardedStore,
    StateStore,
    open_store,
)
from repro.storage.codec import (
    decode_record,
    encode_compact,
    encode_pickle,
)
from repro.storage.diskdict import DiskDict
from repro.storage.iostats import IOStats
from repro.storage.lru import LRUCache
from repro.storage.pager import BufferPool, Page, PagedFile
from repro.storage.recordlog import (
    RecordLogCorruptError,
    append_record,
    frame_record,
    iter_records,
    read_records,
)
from repro.storage.rwlock import RWLock
from repro.storage.spillstack import SpillableStack

__all__ = [
    "BACKEND_SPECS",
    "BufferPool",
    "DiskDict",
    "IOStats",
    "LRUCache",
    "RWLock",
    "RecordLogCorruptError",
    "append_record",
    "decode_record",
    "encode_compact",
    "encode_pickle",
    "frame_record",
    "iter_records",
    "read_records",
    "MemoryStore",
    "Page",
    "PagedFile",
    "ShardedStore",
    "SpillableStack",
    "StateStore",
    "open_store",
]
