"""Disk-backed record store keyed by arbitrary hashable keys.

The DFS algorithm of the paper (Algorithm 3) keeps per-node
annotations — visited flag, ``maxweight`` table, ``bestpaths`` heaps —
*on disk*, reading them with one random I/O when a node is pushed and
writing them back when it is popped.  ``DiskDict`` reproduces that
access pattern: values are pickled into an append-only data file, an
in-memory index maps keys to (offset, length), and an optional bounded
LRU cache models a small amount of buffer memory.

Updates append a fresh record (old versions become garbage, like a
log-structured store); :meth:`compact` rewrites the live records.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.storage.codec import decode_record, encoder_for
from repro.storage.iostats import IOStats
from repro.storage.lru import LRUCache

_MISSING = object()


class DiskDict:
    """A dict-like mapping whose values live in a file on disk.

    Every ``__getitem__`` that misses the cache costs one random read;
    every ``__setitem__`` costs one random write (append).  This is the
    cost model the paper charges the DFS algorithm with.

    ``codec`` selects the record serializer: ``"compact"`` (the
    default) writes the varint encoding of
    :mod:`repro.storage.codec` — much smaller for the engines'
    id-heavy node state — and ``"pickle"`` forces plain pickling.
    Records are self-describing, so reads never need the setting.
    """

    def __init__(self, path: str, cache_size: int = 0,
                 stats: Optional[IOStats] = None,
                 codec: str = "compact") -> None:
        self.path = path
        self.stats = stats if stats is not None else IOStats()
        self.codec = codec
        self._encode = encoder_for(codec)
        self._index: Dict[Any, Tuple[int, int]] = {}
        self._cache = LRUCache(cache_size)
        self._garbage_bytes = 0
        self._fh = open(path, "a+b")
        self._fh.seek(0, os.SEEK_END)

    def __setitem__(self, key: Any, value: Any) -> None:
        blob = self._encode(value)
        self._fh.seek(0, os.SEEK_END)
        offset = self._fh.tell()
        self._fh.write(blob)
        stale = self._index.get(key)
        if stale is not None:
            self._garbage_bytes += stale[1]
        self._index[key] = (offset, len(blob))
        self.stats.record_write(len(blob))
        self._cache.put(key, value)

    def __getitem__(self, key: Any) -> Any:
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        offset, length = self._index[key]
        self._fh.seek(offset)
        blob = self._fh.read(length)
        self.stats.record_read(length)
        value = decode_record(blob)
        self._cache.put(key, value)
        return value

    def __contains__(self, key: Any) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._index)

    def get(self, key: Any, default: Any = None) -> Any:
        """Return ``self[key]`` or *default* when the key is absent."""
        if key in self._index:
            return self[key]
        return default

    def __delitem__(self, key: Any) -> None:
        self._garbage_bytes += self._index.pop(key)[1]
        self._cache.pop(key)

    def keys(self) -> Iterator[Any]:
        """Iterate over live keys."""
        return iter(self._index)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate over live ``(key, value)`` pairs (reads each value)."""
        for key in list(self._index):
            yield key, self[key]

    def compact(self) -> None:
        """Rewrite the data file keeping only the latest live records."""
        tmp_path = self.path + ".compact"
        new_index: Dict[Any, Tuple[int, int]] = {}
        with open(tmp_path, "wb") as out:
            for key, (offset, length) in self._index.items():
                self._fh.seek(offset)
                blob = self._fh.read(length)
                self.stats.record_read(length, sequential=True)
                new_index[key] = (out.tell(), length)
                out.write(blob)
                self.stats.record_write(length, sequential=True)
        self._fh.close()
        os.replace(tmp_path, self.path)
        self._fh = open(self.path, "a+b")
        self._index = new_index
        self._garbage_bytes = 0

    @property
    def file_bytes(self) -> int:
        """Current size of the backing file, garbage included."""
        self._fh.seek(0, os.SEEK_END)
        return self._fh.tell()

    @property
    def garbage_bytes(self) -> int:
        """Dead bytes in the data file.

        Records superseded by a later ``__setitem__`` of the same
        key, or orphaned by ``__delitem__``.  Reset to zero by
        :meth:`compact`; backends (e.g. the sharded store) use it to
        trigger compaction."""
        return self._garbage_bytes

    def close(self) -> None:
        """Close the backing file (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "DiskDict":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
