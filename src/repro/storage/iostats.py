"""I/O accounting.

Wall-clock comparisons between a Python reproduction and the paper's
Java implementation are not meaningful in absolute terms, so every
storage component counts its logical I/O operations.  Benchmarks report
these counters alongside timings; the performance *shape* the paper
reports (e.g. BFS performs one sequential pass, DFS performs one random
read per edge in the worst case) is visible directly in the counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable bundle of I/O counters shared by storage components.

    Attributes mirror the costs the paper reasons about: random reads
    and writes (one per node annotation in the DFS algorithm),
    sequential reads and writes (the BFS single pass), and bytes moved.
    """

    reads: int = 0
    writes: int = 0
    seq_reads: int = 0
    seq_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    _marks: dict = field(default_factory=dict, repr=False)

    def record_read(self, nbytes: int, sequential: bool = False) -> None:
        """Count one read of *nbytes* (sequential if part of a scan)."""
        if sequential:
            self.seq_reads += 1
        else:
            self.reads += 1
        self.bytes_read += nbytes

    def record_write(self, nbytes: int, sequential: bool = False) -> None:
        """Count one write of *nbytes* (sequential if part of a scan)."""
        if sequential:
            self.seq_writes += 1
        else:
            self.writes += 1
        self.bytes_written += nbytes

    @property
    def total_ops(self) -> int:
        """All reads and writes, random and sequential."""
        return self.reads + self.writes + self.seq_reads + self.seq_writes

    @property
    def random_ops(self) -> int:
        """Random (non-scan) reads and writes only."""
        return self.reads + self.writes

    def reset(self) -> None:
        """Zero every counter (marks are cleared too)."""
        self.reads = 0
        self.writes = 0
        self.seq_reads = 0
        self.seq_writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._marks.clear()

    def mark(self, label: str) -> None:
        """Snapshot current counters under *label* (see :meth:`since`)."""
        self._marks[label] = self.snapshot()

    def since(self, label: str) -> "IOStats":
        """Return the delta of counters since :meth:`mark` of *label*."""
        base = self._marks[label]
        delta = IOStats()
        delta.reads = self.reads - base.reads
        delta.writes = self.writes - base.writes
        delta.seq_reads = self.seq_reads - base.seq_reads
        delta.seq_writes = self.seq_writes - base.seq_writes
        delta.bytes_read = self.bytes_read - base.bytes_read
        delta.bytes_written = self.bytes_written - base.bytes_written
        return delta

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        copy = IOStats()
        copy.reads = self.reads
        copy.writes = self.writes
        copy.seq_reads = self.seq_reads
        copy.seq_writes = self.seq_writes
        copy.bytes_read = self.bytes_read
        copy.bytes_written = self.bytes_written
        return copy

    def summary(self) -> str:
        """One-line human-readable summary for benchmark output."""
        return (
            f"random r/w={self.reads}/{self.writes} "
            f"seq r/w={self.seq_reads}/{self.seq_writes} "
            f"bytes r/w={self.bytes_read}/{self.bytes_written}"
        )
