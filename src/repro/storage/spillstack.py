"""A stack that spills its bottom to disk beyond a memory budget.

Algorithm 1 of the paper (biconnected components) keeps discovered
edges on a stack and notes that "since the data structure in memory is
a stack with well defined access patterns, it can be efficiently paged
to secondary storage if its size exceeds available resources".
``SpillableStack`` implements exactly that: the newest ``memory_budget``
items stay in a list; when the list overflows, the oldest half is
pickled to a spill file as one frame.  Frames are reloaded lazily when
the in-memory portion drains.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, List, Optional, Tuple

from repro.storage.iostats import IOStats


class SpillableStack:
    """LIFO stack bounded to ``memory_budget`` in-memory items.

    With ``memory_budget <= 0`` the stack never spills (pure list).
    """

    def __init__(self, memory_budget: int = 0,
                 spill_dir: Optional[str] = None,
                 stats: Optional[IOStats] = None) -> None:
        self.memory_budget = memory_budget
        self.stats = stats if stats is not None else IOStats()
        self._hot: List[Any] = []
        self._frames: List[Tuple[int, int]] = []  # (offset, length)
        self._spilled_items = 0
        self._spill_dir = spill_dir
        self._spill_fh = None
        self.spill_count = 0

    def push(self, item: Any) -> None:
        """Push *item*; may trigger a spill of older entries."""
        self._hot.append(item)
        if self.memory_budget > 0 and len(self._hot) > self.memory_budget:
            self._spill()

    def pop(self) -> Any:
        """Pop and return the newest item; raises IndexError when empty."""
        if not self._hot:
            self._reload()
        return self._hot.pop()

    def peek(self) -> Any:
        """Return the newest item without removing it."""
        if not self._hot:
            self._reload()
        return self._hot[-1]

    def __len__(self) -> int:
        return len(self._hot) + self._spilled_items

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def in_memory(self) -> int:
        """Items currently resident in memory."""
        return len(self._hot)

    def pop_until(self, predicate) -> List[Any]:
        """Pop items (newest first) until one satisfies *predicate*.

        The satisfying item is popped and included as the last element
        of the returned list.  This matches Algorithm 1's "pop all
        edges on top of Stack until (inclusively) edge (u, w)".
        """
        popped: List[Any] = []
        while True:
            item = self.pop()
            popped.append(item)
            if predicate(item):
                return popped

    def close(self) -> None:
        """Delete the spill file, if one was created (idempotent)."""
        if self._spill_fh is not None and not self._spill_fh.closed:
            path = self._spill_fh.name
            self._spill_fh.close()
            try:
                os.unlink(path)
            except OSError:
                pass

    def __enter__(self) -> "SpillableStack":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_spill_file(self) -> None:
        if self._spill_fh is None:
            self._spill_fh = tempfile.NamedTemporaryFile(
                mode="a+b", dir=self._spill_dir,
                prefix="spillstack-", suffix=".bin", delete=False)

    def _spill(self) -> None:
        self._ensure_spill_file()
        half = max(1, len(self._hot) // 2)
        frame_items = self._hot[:half]
        self._hot = self._hot[half:]
        blob = pickle.dumps(frame_items, protocol=pickle.HIGHEST_PROTOCOL)
        self._spill_fh.seek(0, os.SEEK_END)
        offset = self._spill_fh.tell()
        self._spill_fh.write(blob)
        self._frames.append((offset, len(blob)))
        self._spilled_items += len(frame_items)
        self.spill_count += 1
        self.stats.record_write(len(blob), sequential=True)

    def _reload(self) -> None:
        if not self._frames:
            raise IndexError("pop from empty SpillableStack")
        offset, length = self._frames.pop()
        self._spill_fh.seek(offset)
        blob = self._spill_fh.read(length)
        self.stats.record_read(length)
        frame_items = pickle.loads(blob)
        # Reloaded items are older than anything in memory, so they sit
        # below the current hot items.
        self._hot = frame_items + self._hot
        self._spilled_items -= len(frame_items)
