"""Compact binary serialization for node-state records.

The engines store per-node annotations — heaps of paths, ``small``/
``best`` tables — through :class:`~repro.storage.diskdict.DiskDict`.
Pickling those records repeats class references and protocol framing
per value; since the payloads are overwhelmingly small integers
(interval indices, node ids, length classes) plus floats, a varint
encoding shrinks them substantially, which is what keeps a
disk-backed :class:`~repro.storage.backends.StateStore` small on the
streaming tier.

``encode_compact`` structurally encodes ``None``/bool/int/float/str/
bytes/tuple/list/dict/set/frozenset and
:class:`~repro.core.paths.Path`; any other type falls back to pickle
for the *whole* record.  A one-byte prefix distinguishes the two
forms, so ``decode_record`` reads either — stores mixing codecs stay
readable.  Integers use zigzag varints (small magnitudes, one byte).
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List, Tuple

# Record prefixes.
PICKLED = b"P"
COMPACT = b"C"

# Value tags of the compact form.
_NONE = b"n"
_TRUE = b"t"
_FALSE = b"f"
_INT = b"i"
_FLOAT = b"d"
_STR = b"s"
_BYTES = b"b"
_TUPLE = b"T"
_LIST = b"L"
_DICT = b"D"
_SET = b"S"
_FROZENSET = b"F"
_PATH = b"p"

_FLOAT_STRUCT = struct.Struct("<d")

_path_type = None


def _path_class():
    # Imported lazily: repro.core pulls in the storage package at
    # import time, so a module-level import here would be circular.
    global _path_type
    if _path_type is None:
        from repro.core.paths import Path
        _path_type = Path
    return _path_type


class _Unsupported(Exception):
    """Raised mid-encode to trigger the whole-record pickle fallback."""


def encode_varint(value: int, out: List[bytes]) -> None:
    """Append the unsigned LEB128 bytes of *value* (must be >= 0)."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def decode_varint(blob: bytes, pos: int) -> Tuple[int, int]:
    """Read one unsigned varint at *pos*; returns (value, new_pos)."""
    value = shift = 0
    while True:
        byte = blob[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def _zigzag(value: int) -> int:
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


def _encode_value(obj: Any, out: List[bytes]) -> None:
    if obj is None:
        out.append(_NONE)
    elif obj is True:
        out.append(_TRUE)
    elif obj is False:
        out.append(_FALSE)
    elif type(obj) is int:
        out.append(_INT)
        encode_varint(_zigzag(obj), out)
    elif type(obj) is float:
        out.append(_FLOAT)
        out.append(_FLOAT_STRUCT.pack(obj))
    elif type(obj) is str:
        raw = obj.encode("utf-8")
        out.append(_STR)
        encode_varint(len(raw), out)
        out.append(raw)
    elif type(obj) is bytes:
        out.append(_BYTES)
        encode_varint(len(obj), out)
        out.append(obj)
    elif type(obj) is tuple:
        _encode_sequence(_TUPLE, obj, out)
    elif type(obj) is list:
        _encode_sequence(_LIST, obj, out)
    elif type(obj) is dict:
        out.append(_DICT)
        encode_varint(len(obj), out)
        for key, value in obj.items():
            _encode_value(key, out)
            _encode_value(value, out)
    elif type(obj) in (set, frozenset):
        try:  # sorted for deterministic bytes; unorderable mixes
            items = sorted(obj)  # fall back to pickling the record
        except TypeError:
            raise _Unsupported("unorderable set") from None
        _encode_sequence(_SET if type(obj) is set else _FROZENSET,
                         items, out)
    elif type(obj) is _path_class():
        out.append(_PATH)
        out.append(_FLOAT_STRUCT.pack(obj.weight))
        encode_varint(len(obj.nodes), out)
        for interval, index in obj.nodes:
            encode_varint(_zigzag(interval), out)
            encode_varint(_zigzag(index), out)
    else:
        raise _Unsupported(type(obj).__name__)


def _encode_sequence(tag: bytes, items, out: List[bytes]) -> None:
    out.append(tag)
    encode_varint(len(items), out)
    for item in items:
        _encode_value(item, out)


# Integer forms of the tags for allocation-free decode dispatch.
_T_NONE, _T_TRUE, _T_FALSE = _NONE[0], _TRUE[0], _FALSE[0]
_T_INT, _T_FLOAT, _T_STR, _T_BYTES = \
    _INT[0], _FLOAT[0], _STR[0], _BYTES[0]
_T_TUPLE, _T_LIST, _T_DICT = _TUPLE[0], _LIST[0], _DICT[0]
_T_SET, _T_FROZENSET, _T_PATH = _SET[0], _FROZENSET[0], _PATH[0]


def _decode_value(blob: bytes, pos: int) -> Tuple[Any, int]:
    tag = blob[pos]
    pos += 1
    if tag == _T_INT:
        value, pos = decode_varint(blob, pos)
        return _unzigzag(value), pos
    if tag == _T_FLOAT:
        return (_FLOAT_STRUCT.unpack_from(blob, pos)[0],
                pos + _FLOAT_STRUCT.size)
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_STR or tag == _T_BYTES:
        length, pos = decode_varint(blob, pos)
        raw = blob[pos:pos + length]
        # str()/bytes() also accept memoryview slices, so decoding
        # works unchanged on zero-copy mmap payloads.
        return (str(raw, "utf-8") if tag == _T_STR
                else bytes(raw)), pos + length
    if tag in (_T_TUPLE, _T_LIST, _T_SET, _T_FROZENSET):
        length, pos = decode_varint(blob, pos)
        items = []
        for _ in range(length):
            item, pos = _decode_value(blob, pos)
            items.append(item)
        if tag == _T_TUPLE:
            return tuple(items), pos
        if tag == _T_LIST:
            return items, pos
        if tag == _T_SET:
            return set(items), pos
        return frozenset(items), pos
    if tag == _T_DICT:
        length, pos = decode_varint(blob, pos)
        result = {}
        for _ in range(length):
            key, pos = _decode_value(blob, pos)
            value, pos = _decode_value(blob, pos)
            result[key] = value
        return result, pos
    if tag == _T_PATH:
        weight = _FLOAT_STRUCT.unpack_from(blob, pos)[0]
        pos += _FLOAT_STRUCT.size
        count, pos = decode_varint(blob, pos)
        nodes = []
        for _ in range(count):
            interval, pos = decode_varint(blob, pos)
            index, pos = decode_varint(blob, pos)
            nodes.append((_unzigzag(interval), _unzigzag(index)))
        # Reconstruct without __init__/__post_init__, exactly as
        # pickle does for dataclasses: the record was a valid Path
        # when encoded, so re-validation would only cost time.
        path_cls = _path_class()
        path = object.__new__(path_cls)
        object.__setattr__(path, "weight", weight)
        object.__setattr__(path, "nodes", tuple(nodes))
        return path, pos
    raise ValueError(
        f"unknown compact tag {bytes((tag,))!r} at offset {pos - 1}")


def encode_compact(obj: Any) -> bytes:
    """Serialize *obj* compactly.

    Falls back to pickling the whole record when a value of an
    unsupported type is encountered."""
    out: List[bytes] = [COMPACT]
    try:
        _encode_value(obj, out)
    except (_Unsupported, UnicodeEncodeError):
        # UnicodeEncodeError: a surrogate-bearing string UTF-8 cannot
        # encode; pickle serializes it fine, so fall back like any
        # other unsupported value.
        return encode_pickle(obj)
    return b"".join(out)


def encode_pickle(obj: Any) -> bytes:
    """Serialize *obj* with pickle under the record-prefix scheme."""
    return PICKLED + pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode_record(blob: bytes) -> Any:
    """Deserialize a record written by either encoder."""
    prefix = blob[:1]
    if prefix == COMPACT:
        value, _ = _decode_value(blob, 1)
        return value
    if prefix == PICKLED:
        return pickle.loads(blob[1:])
    raise ValueError(
        f"unknown record prefix {prefix!r}: not written by "
        f"encode_compact/encode_pickle")


CODECS = ("compact", "pickle")


def encoder_for(codec: str):
    """The encode function for a codec spec.

    ``decode_record`` reads both forms, so the choice affects
    written bytes only."""
    if codec == "compact":
        return encode_compact
    if codec == "pickle":
        return encode_pickle
    raise ValueError(
        f"unknown codec {codec!r}; expected one of {CODECS}")
