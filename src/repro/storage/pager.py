"""Fixed-size-page file storage with an LRU buffer pool.

The paper's algorithms assume a conventional paged secondary-storage
model: data lives in fixed-size pages, a bounded buffer pool holds hot
pages in memory, and evictions write dirty pages back.  ``PagedFile``
provides the page file; ``BufferPool`` provides bounded caching with
LRU eviction and I/O accounting via :class:`~repro.storage.iostats.IOStats`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.storage.iostats import IOStats

DEFAULT_PAGE_SIZE = 4096


@dataclass
class Page:
    """A single in-memory page image.

    ``data`` is a mutable bytearray of exactly the file's page size;
    ``dirty`` marks whether it must be written back on eviction.
    """

    page_no: int
    data: bytearray
    dirty: bool = False
    pins: int = 0


class PagedFile:
    """A file addressed in fixed-size pages.

    Pages are numbered from zero.  Reading a page past the end of the
    file returns a zero-filled page, mirroring the usual behaviour of a
    database file that has been extended but not yet written.
    """

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE,
                 stats: Optional[IOStats] = None) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.path = path
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        # "r+b" honours seek positions on write (append mode would
        # force every write to the end of the file); create first.
        if not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._fh = open(path, "r+b")

    @property
    def num_pages(self) -> int:
        """Number of whole pages currently materialized in the file."""
        self._fh.seek(0, os.SEEK_END)
        size = self._fh.tell()
        return (size + self.page_size - 1) // self.page_size

    def read_page(self, page_no: int) -> Page:
        """Read page *page_no*, zero-filling past end of file."""
        if page_no < 0:
            raise ValueError(f"page number must be >= 0, got {page_no}")
        self._fh.seek(page_no * self.page_size)
        raw = self._fh.read(self.page_size)
        self.stats.record_read(self.page_size)
        data = bytearray(raw)
        if len(data) < self.page_size:
            data.extend(b"\x00" * (self.page_size - len(data)))
        return Page(page_no=page_no, data=data)

    def write_page(self, page: Page) -> None:
        """Write *page* back to the file at its page number."""
        if len(page.data) != self.page_size:
            raise ValueError(
                f"page data must be exactly {self.page_size} bytes, "
                f"got {len(page.data)}")
        self._fh.seek(page.page_no * self.page_size)
        self._fh.write(bytes(page.data))
        self.stats.record_write(self.page_size)
        page.dirty = False

    def flush(self) -> None:
        """Flush the underlying OS file buffers."""
        self._fh.flush()

    def close(self) -> None:
        """Flush and close the file handle (idempotent)."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "PagedFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BufferPool:
    """Bounded LRU cache of pages over a :class:`PagedFile`.

    ``capacity`` is the number of page frames held in memory.  Pinned
    pages are never evicted; attempting to fetch a new page when every
    frame is pinned raises ``RuntimeError`` (a real buffer manager
    would block — in a single-threaded reproduction this is a bug in
    the caller).
    """

    def __init__(self, file: PagedFile, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.file = file
        self.capacity = capacity
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def fetch(self, page_no: int, pin: bool = False) -> Page:
        """Return the page, reading it from disk on a miss."""
        page = self._frames.get(page_no)
        if page is not None:
            self.hits += 1
            self._frames.move_to_end(page_no)
        else:
            self.misses += 1
            page = self.file.read_page(page_no)
            self._admit(page)
        if pin:
            page.pins += 1
        return page

    def unpin(self, page_no: int) -> None:
        """Release one pin on *page_no*."""
        page = self._frames.get(page_no)
        if page is None or page.pins <= 0:
            raise ValueError(f"page {page_no} is not pinned")
        page.pins -= 1

    def mark_dirty(self, page_no: int) -> None:
        """Mark a resident page as modified."""
        page = self._frames.get(page_no)
        if page is None:
            raise KeyError(f"page {page_no} is not resident")
        page.dirty = True

    def flush_all(self) -> None:
        """Write back every dirty resident page (pages stay resident)."""
        for page in self._frames.values():
            if page.dirty:
                self.file.write_page(page)
        self.file.flush()

    def _admit(self, page: Page) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page.page_no] = page

    def _evict_one(self) -> None:
        for page_no, page in self._frames.items():
            if page.pins == 0:
                if page.dirty:
                    self.file.write_page(page)
                del self._frames[page_no]
                return
        raise RuntimeError("all buffer-pool frames are pinned")

    @property
    def resident(self) -> int:
        """Number of pages currently held in frames."""
        return len(self._frames)

    @property
    def hit_rate(self) -> float:
        """Fraction of fetches served from memory (0.0 if none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
