"""Framed, checksummed append-only record logs.

The persistent cluster index (:mod:`repro.index`) must survive a
process restart — unlike :class:`~repro.storage.diskdict.DiskDict`,
whose key index lives only in memory, an index file is *reopened* and
must rebuild its state from the bytes alone.  This module provides the
durable framing both sides share: each record is written as

``[varint payload length][4-byte LE crc32 of payload][payload]``

so a reader can scan a file record by record, detect truncation (the
file ends inside a frame) and corruption (the checksum mismatches)
instead of silently decoding garbage, and resume a scan from any
previously returned frame boundary — which is what lets a live reader
:meth:`~repro.index.ClusterIndexReader.refresh` tail a growing index.
"""

from __future__ import annotations

import zlib
from typing import BinaryIO, Iterator, List, Optional, Tuple

from repro.storage.codec import decode_varint, encode_varint

_CRC_BYTES = 4


class RecordLogCorruptError(ValueError):
    """A record frame is truncated or fails its checksum."""


def append_record(fh: BinaryIO, payload: bytes) -> int:
    """Append one framed *payload* to *fh*; returns bytes written.

    The caller owns positioning (logs are append-only, so the handle
    is expected to sit at end-of-file) and flushing.
    """
    out: List[bytes] = []
    encode_varint(len(payload), out)
    out.append(zlib.crc32(payload).to_bytes(_CRC_BYTES, "little"))
    out.append(payload)
    frame = b"".join(out)
    fh.write(frame)
    return len(frame)


def iter_records(fh: BinaryIO, offset: int = 0,
                 end: Optional[int] = None
                 ) -> Iterator[Tuple[bytes, int]]:
    """Scan frames from *offset*; yields ``(payload, end_offset)``.

    ``end_offset`` is the file position just past the yielded frame —
    the resume point a tailing reader stores.  With *end* the scan is
    bounded: bytes at or past that position are never read (a tailing
    reader passes its manifest's recorded size, so a concurrent
    writer's torn in-flight frame beyond it is invisible), and frames
    within the bound must tile it exactly.  Raises
    :class:`RecordLogCorruptError` when the scanned region ends
    mid-frame or a payload fails its crc32; a clean end at a frame
    boundary simply ends the iteration.
    """
    def scan_end() -> int:
        fh.seek(0, 2)
        return fh.tell() if end is None else min(end, fh.tell())

    file_end = scan_end()
    pos = offset
    while pos < file_end:
        fh.seek(pos)
        header = fh.read(min(10 + _CRC_BYTES, file_end - pos))
        try:
            length, header_pos = decode_varint(header, 0)
        except IndexError:
            raise RecordLogCorruptError(
                f"truncated record header at offset {pos}") from None
        payload_start = pos + header_pos + _CRC_BYTES
        frame_end = payload_start + length
        if frame_end > file_end:
            raise RecordLogCorruptError(
                f"truncated record at offset {pos}: frame needs "
                f"{frame_end - pos} bytes, scan region has "
                f"{file_end - pos}")
        expected = int.from_bytes(
            header[header_pos:header_pos + _CRC_BYTES], "little")
        fh.seek(payload_start)
        payload = fh.read(length)
        if zlib.crc32(payload) != expected:
            raise RecordLogCorruptError(
                f"checksum mismatch for record at offset {pos}")
        yield payload, frame_end
        pos = frame_end
        file_end = scan_end()


def read_records(path: str, offset: int = 0,
                 end: Optional[int] = None
                 ) -> Iterator[Tuple[bytes, int]]:
    """Open *path* and yield its frames like :func:`iter_records`."""
    with open(path, "rb") as fh:
        yield from iter_records(fh, offset=offset, end=end)
