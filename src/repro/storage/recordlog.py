"""Framed, checksummed append-only record logs.

The persistent cluster index (:mod:`repro.index`) must survive a
process restart — unlike :class:`~repro.storage.diskdict.DiskDict`,
whose key index lives only in memory, an index file is *reopened* and
must rebuild its state from the bytes alone.  This module provides the
durable framing both sides share: each record is written as

``[varint payload length][4-byte LE crc32 of payload][payload]``

so a reader can scan a file record by record, detect truncation (the
file ends inside a frame) and corruption (the checksum mismatches)
instead of silently decoding garbage, and resume a scan from any
previously returned frame boundary — which is what lets a live reader
:meth:`~repro.index.ClusterIndexReader.refresh` tail a growing index.
"""

from __future__ import annotations

import mmap
import os
import zlib
from typing import BinaryIO, Iterator, List, Optional, Tuple, Union

from repro.storage.codec import decode_varint, encode_varint

_CRC_BYTES = 4
_MAX_HEADER = 10 + _CRC_BYTES

Payload = Union[bytes, memoryview]


class RecordLogCorruptError(ValueError):
    """A record frame is truncated or fails its checksum."""


def frame_record(payload: bytes) -> bytes:
    """The framed bytes :func:`append_record` writes for *payload*.

    Exposed so parallel builders can frame records into in-memory
    blobs and concatenate them byte-identically to what a serial
    writer appends.
    """
    out: List[bytes] = []
    encode_varint(len(payload), out)
    out.append(zlib.crc32(payload).to_bytes(_CRC_BYTES, "little"))
    out.append(payload)
    return b"".join(out)


def append_record(fh: BinaryIO, payload: bytes) -> int:
    """Append one framed *payload* to *fh*; returns bytes written.

    The caller owns positioning (logs are append-only, so the handle
    is expected to sit at end-of-file) and flushing.
    """
    frame = frame_record(payload)
    fh.write(frame)
    return len(frame)


def iter_records(fh: BinaryIO, offset: int = 0,
                 end: Optional[int] = None
                 ) -> Iterator[Tuple[bytes, int]]:
    """Scan frames from *offset*; yields ``(payload, end_offset)``.

    ``end_offset`` is the file position just past the yielded frame —
    the resume point a tailing reader stores.  With *end* the scan is
    bounded: bytes at or past that position are never read (a tailing
    reader passes its manifest's recorded size, so a concurrent
    writer's torn in-flight frame beyond it is invisible), and frames
    within the bound must tile it exactly.  Raises
    :class:`RecordLogCorruptError` when the scanned region ends
    mid-frame or a payload fails its crc32; a clean end at a frame
    boundary simply ends the iteration.
    """
    def scan_end() -> int:
        fh.seek(0, 2)
        return fh.tell() if end is None else min(end, fh.tell())

    file_end = scan_end()
    pos = offset
    while pos < file_end:
        fh.seek(pos)
        header = fh.read(min(10 + _CRC_BYTES, file_end - pos))
        try:
            length, header_pos = decode_varint(header, 0)
        except IndexError:
            raise RecordLogCorruptError(
                f"truncated record header at offset {pos}") from None
        payload_start = pos + header_pos + _CRC_BYTES
        frame_end = payload_start + length
        if frame_end > file_end:
            raise RecordLogCorruptError(
                f"truncated record at offset {pos}: frame needs "
                f"{frame_end - pos} bytes, scan region has "
                f"{file_end - pos}")
        expected = int.from_bytes(
            header[header_pos:header_pos + _CRC_BYTES], "little")
        fh.seek(payload_start)
        payload = fh.read(length)
        if zlib.crc32(payload) != expected:
            raise RecordLogCorruptError(
                f"checksum mismatch for record at offset {pos}")
        yield payload, frame_end
        pos = frame_end
        file_end = scan_end()


def read_records(path: str, offset: int = 0,
                 end: Optional[int] = None
                 ) -> Iterator[Tuple[bytes, int]]:
    """Open *path* and yield its frames like :func:`iter_records`."""
    with open(path, "rb") as fh:
        yield from iter_records(fh, offset=offset, end=end)


def iter_buffer_records(buf: memoryview, offset: int = 0,
                        end: Optional[int] = None
                        ) -> Iterator[Tuple[memoryview, int]]:
    """Scan frames of an in-memory buffer, like :func:`iter_records`.

    Payloads are zero-copy slices of *buf*: valid only while the
    underlying buffer (typically an mmap) stays open.  The same
    bounding rule applies — bytes at or past *end* are never examined,
    and frames must tile the bound exactly.
    """
    limit = len(buf) if end is None else min(end, len(buf))
    pos = offset
    while pos < limit:
        header = buf[pos:min(pos + _MAX_HEADER, limit)]
        try:
            length, header_len = decode_varint(header, 0)
        except IndexError:
            raise RecordLogCorruptError(
                f"truncated record header at offset {pos}") from None
        payload_start = pos + header_len + _CRC_BYTES
        frame_end = payload_start + length
        if frame_end > limit:
            raise RecordLogCorruptError(
                f"truncated record at offset {pos}: frame needs "
                f"{frame_end - pos} bytes, scan region has "
                f"{limit - pos}")
        expected = int.from_bytes(
            header[header_len:header_len + _CRC_BYTES], "little")
        payload = buf[payload_start:frame_end]
        if zlib.crc32(payload) != expected:
            raise RecordLogCorruptError(
                f"checksum mismatch for record at offset {pos}")
        yield payload, frame_end
        pos = frame_end


class RecordLogReader:
    """Random-access, resumable reads over one record log file.

    Memory-maps the file when possible so record payloads come back as
    zero-copy :class:`memoryview` slices of the page cache; falls back
    to buffered ``seek``/``read`` transparently when mapping is not
    available (an empty file cannot be mapped on Linux, and any other
    mmap failure downgrades the same way).  A live log that a writer
    is still appending to is remapped on demand whenever a read
    extends past the current mapping, so a tailing reader keeps its
    zero-copy path as the file grows.
    """

    def __init__(self, path: str, use_mmap: bool = True) -> None:
        self.path = path
        self._use_mmap = use_mmap
        self._fh: Optional[BinaryIO] = open(path, "rb")
        self._mm: Optional[mmap.mmap] = None
        self._remap()

    @property
    def mmapped(self) -> bool:
        """Whether reads are currently served from an mmap."""
        return self._mm is not None

    def size(self) -> int:
        """Current byte size of the underlying file."""
        assert self._fh is not None
        return os.fstat(self._fh.fileno()).st_size

    def _remap(self) -> None:
        if not self._use_mmap or self._fh is None:
            return
        # Drop (rather than close) any previous mapping: payload
        # views handed out from it stay valid until they are garbage
        # collected along with the old map.
        self._mm = None
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0,
                                 access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            self._mm = None  # empty or unmappable: buffered reads

    def _ensure(self, limit: int) -> None:
        if self._use_mmap and (self._mm is None
                               or len(self._mm) < limit):
            self._remap()

    def pread(self, offset: int, length: int) -> Payload:
        """Read *length* bytes at *offset*; zero-copy when mapped.

        Thread-safe: mapped reads slice the mmap, unmapped reads use
        ``os.pread`` (a positioned syscall that never moves the shared
        handle's offset), so concurrent serving threads can point-read
        one log without interleaving each other's seeks."""
        end = offset + length
        self._ensure(end)
        if self._mm is not None and len(self._mm) >= end:
            return memoryview(self._mm)[offset:end]
        assert self._fh is not None
        if hasattr(os, "pread"):
            return os.pread(self._fh.fileno(), length, offset)
        self._fh.seek(offset)
        return self._fh.read(length)

    def records(self, offset: int = 0, end: Optional[int] = None
                ) -> Iterator[Tuple[Payload, int]]:
        """Scan frames from *offset*, stopping at *end* bytes.

        Bounds work exactly as in :func:`iter_records`; payloads are
        zero-copy memoryviews when the file is mapped."""
        if end is not None:
            self._ensure(end)
        if self._mm is not None and (end is None
                                     or len(self._mm) >= end):
            yield from iter_buffer_records(
                memoryview(self._mm), offset=offset, end=end)
        else:
            assert self._fh is not None
            yield from iter_records(self._fh, offset=offset, end=end)

    def close(self) -> None:
        """Release the mapping and the file handle."""
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                pass  # exported payload views keep the map alive
            self._mm = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RecordLogReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
