"""Pluggable node-state backends (the EMBANKS-style storage split).

The search engines annotate cluster-graph nodes with state — BFS
heaps, DFS ``maxweight``/``bestpaths`` records — and historically took
an ``Optional[DiskDict]``, hard-wiring the choice between "in RAM" and
"one specific on-disk layout".  This module makes the storage layer a
first-class, pluggable seam:

* :class:`StateStore` — the protocol every backend satisfies (a small
  mutable-mapping surface plus ``close()``); ``DiskDict`` already
  conforms.
* :class:`MemoryStore` — a plain dict behind the protocol, for
  RAM-resident runs that still want uniform accounting hooks.
* :class:`ShardedStore` — hash-partitions node annotations across
  multiple :class:`~repro.storage.diskdict.DiskDict` shards.  Each
  shard is an independent append-only file, which keeps files small, is
  layout-friendly for future parallel/async I/O, and lets compaction
  run one shard at a time.  Shards are compacted automatically when
  their ``garbage_bytes`` exceed a configurable threshold.

``open_store(spec, ...)`` builds a backend from the planner's string
spec (``"memory"``, ``"disk"``, ``"sharded"``).
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Dict,
    Iterator,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.storage.diskdict import DiskDict
from repro.storage.iostats import IOStats

BACKEND_SPECS = ("memory", "disk", "sharded")


@runtime_checkable
class StateStore(Protocol):
    """What an engine needs from a node-annotation backend.

    A minimal mutable mapping: item get/set/delete, membership, size,
    iteration and ``get``; plus ``close()`` so disk-backed stores can
    release file handles.  ``DiskDict`` satisfies this protocol as-is.
    """

    def __setitem__(self, key: Any, value: Any) -> None:
        """Store *value* under *key* (overwriting any prior value)."""

    def __getitem__(self, key: Any) -> Any:
        """Return the value under *key*; raise KeyError when absent."""

    def __delitem__(self, key: Any) -> None:
        """Remove *key*; raise KeyError when absent."""

    def __contains__(self, key: Any) -> bool:
        """True when *key* holds a live value."""

    def __len__(self) -> int:
        """Number of live keys."""

    def __iter__(self) -> Iterator[Any]:
        """Iterate over live keys."""

    def get(self, key: Any, default: Any = None) -> Any:
        """Return ``self[key]`` or *default* when the key is absent."""

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""


class MemoryStore:
    """In-memory :class:`StateStore` backed by a plain dict."""

    def __init__(self) -> None:
        self._data: Dict[Any, Any] = {}

    def __setitem__(self, key: Any, value: Any) -> None:
        self._data[key] = value

    def __getitem__(self, key: Any) -> Any:
        return self._data[key]

    def __delitem__(self, key: Any) -> None:
        del self._data[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def get(self, key: Any, default: Any = None) -> Any:
        """Return ``self[key]`` or *default* when the key is absent."""
        return self._data.get(key, default)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate over live ``(key, value)`` pairs."""
        return iter(self._data.items())

    def close(self) -> None:
        """Nothing to release; kept for protocol symmetry."""

    def __enter__(self) -> "MemoryStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MemoryStore(keys={len(self._data)})"


class ShardedStore:
    """Hash-partitioned :class:`StateStore` over multiple DiskDicts.

    Keys route to ``shard = stable_hash(key) % num_shards``; each shard
    is its own append-only file under *directory*.  All shards share
    one :class:`~repro.storage.iostats.IOStats`, so benchmarks see the
    aggregate I/O.  When a mutation leaves a shard with more than
    *compact_garbage_bytes* of dead data, that shard is compacted
    automatically (the point of ``DiskDict.garbage_bytes``).
    """

    def __init__(self, directory: str, num_shards: int = 4,
                 cache_size: int = 0,
                 compact_garbage_bytes: Optional[int] = None,
                 stats: Optional[IOStats] = None,
                 codec: str = "compact") -> None:
        if num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {num_shards}")
        if (compact_garbage_bytes is not None
                and compact_garbage_bytes < 1):
            raise ValueError(
                f"compact_garbage_bytes must be >= 1, "
                f"got {compact_garbage_bytes}")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.num_shards = num_shards
        self.compact_garbage_bytes = compact_garbage_bytes
        self.stats = stats if stats is not None else IOStats()
        self.compactions = 0
        self._shards = [
            DiskDict(os.path.join(directory, f"shard-{i:03d}.bin"),
                     cache_size=cache_size, stats=self.stats,
                     codec=codec)
            for i in range(num_shards)]

    def _shard_for(self, key: Any) -> DiskDict:
        return self._shards[hash(key) % self.num_shards]

    def __setitem__(self, key: Any, value: Any) -> None:
        shard = self._shard_for(key)
        shard[key] = value
        self._maybe_compact(shard)

    def __getitem__(self, key: Any) -> Any:
        return self._shard_for(key)[key]

    def __delitem__(self, key: Any) -> None:
        shard = self._shard_for(key)
        del shard[key]
        self._maybe_compact(shard)

    def __contains__(self, key: Any) -> bool:
        return key in self._shard_for(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __iter__(self) -> Iterator[Any]:
        for shard in self._shards:
            yield from shard

    def get(self, key: Any, default: Any = None) -> Any:
        """Return ``self[key]`` or *default* when the key is absent."""
        return self._shard_for(key).get(key, default)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate over live ``(key, value)`` pairs (reads values)."""
        for shard in self._shards:
            yield from shard.items()

    def _maybe_compact(self, shard: DiskDict) -> None:
        if (self.compact_garbage_bytes is not None
                and shard.garbage_bytes > self.compact_garbage_bytes):
            shard.compact()
            self.compactions += 1

    def compact(self) -> None:
        """Compact every shard (dead bytes drop to zero)."""
        for shard in self._shards:
            shard.compact()
            self.compactions += 1

    @property
    def garbage_bytes(self) -> int:
        """Total dead bytes across all shards."""
        return sum(shard.garbage_bytes for shard in self._shards)

    @property
    def file_bytes(self) -> int:
        """Total size of all shard files, garbage included."""
        return sum(shard.file_bytes for shard in self._shards)

    def shard_sizes(self) -> Dict[int, int]:
        """Live-key count per shard (partition-balance diagnostics)."""
        return {i: len(shard) for i, shard in enumerate(self._shards)}

    def close(self) -> None:
        """Close every shard file (idempotent)."""
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardedStore(shards={self.num_shards}, "
                f"keys={len(self)}, dir={self.directory!r})")


def open_store(spec: str, directory: Optional[str] = None,
               num_shards: int = 4, cache_size: int = 0,
               compact_garbage_bytes: Optional[int] = None,
               stats: Optional[IOStats] = None,
               codec: str = "compact"):
    """Build a :class:`StateStore` from a planner backend spec.

    ``"memory"`` ignores *directory*; ``"disk"`` opens one DiskDict at
    ``directory/state.bin``; ``"sharded"`` opens a
    :class:`ShardedStore` under *directory*.  ``codec`` selects the
    disk-backed record serializer (see
    :class:`~repro.storage.diskdict.DiskDict`).
    """
    if spec == "memory":
        return MemoryStore()
    if directory is None:
        raise ValueError(f"backend {spec!r} needs a directory")
    if spec == "disk":
        os.makedirs(directory, exist_ok=True)
        return DiskDict(os.path.join(directory, "state.bin"),
                        cache_size=cache_size, stats=stats,
                        codec=codec)
    if spec == "sharded":
        return ShardedStore(directory, num_shards=num_shards,
                            cache_size=cache_size,
                            compact_garbage_bytes=compact_garbage_bytes,
                            stats=stats, codec=codec)
    raise ValueError(
        f"unknown backend spec {spec!r}; expected one of {BACKEND_SPECS}")
