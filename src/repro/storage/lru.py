"""A small bounded LRU cache shared by the read paths.

:class:`~repro.storage.diskdict.DiskDict` models a few pages of
buffer memory with it; the cluster-index reader and the query
refiner (:mod:`repro.index`, :mod:`repro.search`) keep their hot
keywords decoded with it.  One implementation, one eviction rule.

Every operation holds an internal mutex, so a cache shared between
serving threads (the :mod:`repro.serving` HTTP tier keeps one hot-
keyword cache for all connections) cannot corrupt the recency list
or lose hit/miss increments.  The critical sections are a few dict
operations, far below the cost of the reads being cached.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, List, Tuple

_MISSING = object()


class LRUCache:
    """Bounded mapping evicting the least recently used entry.

    ``capacity <= 0`` disables the cache entirely (every ``get``
    misses, ``put`` is a no-op) so callers need no branching.  Hits
    and misses are counted for :meth:`info`.  All methods are
    thread-safe.
    """

    __slots__ = ("capacity", "hits", "misses", "_data", "_lock")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Any, default: Any = None) -> Any:
        """The cached value (refreshing its recency), else *default*."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self.hits += 1
            self._data.move_to_end(key)
            return value

    def put(self, key: Any, value: Any) -> None:
        """Cache *value*, evicting the coldest entries past capacity."""
        if self.capacity <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def pop(self, key: Any, default: Any = None) -> Any:
        """Remove and return *key*'s value (no hit/miss accounting)."""
        with self._lock:
            return self._data.pop(key, default)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._data.clear()

    def keys(self) -> List[Any]:
        """A snapshot of the cached keys, coldest first."""
        with self._lock:
            return list(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def info(self) -> Tuple[int, int, int, int]:
        """``(hits, misses, size, capacity)`` for diagnostics."""
        with self._lock:
            return (self.hits, self.misses, len(self._data),
                    self.capacity)

    def __repr__(self) -> str:
        return (f"LRUCache(capacity={self.capacity}, "
                f"size={len(self._data)}, hits={self.hits}, "
                f"misses={self.misses})")
