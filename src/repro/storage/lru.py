"""A small bounded LRU cache shared by the read paths.

:class:`~repro.storage.diskdict.DiskDict` models a few pages of
buffer memory with it; the cluster-index reader and the query
refiner (:mod:`repro.index`, :mod:`repro.search`) keep their hot
keywords decoded with it.  One implementation, one eviction rule.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Tuple

_MISSING = object()


class LRUCache:
    """Bounded mapping evicting the least recently used entry.

    ``capacity <= 0`` disables the cache entirely (every ``get``
    misses, ``put`` is a no-op) so callers need no branching.  Hits
    and misses are counted for :meth:`info`.
    """

    __slots__ = ("capacity", "hits", "misses", "_data")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Any, Any]" = OrderedDict()

    def get(self, key: Any, default: Any = None) -> Any:
        """The cached value (refreshing its recency), else *default*."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Any, value: Any) -> None:
        """Cache *value*, evicting the coldest entries past capacity."""
        if self.capacity <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def pop(self, key: Any, default: Any = None) -> Any:
        """Remove and return *key*'s value (no hit/miss accounting)."""
        return self._data.pop(key, default)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def info(self) -> Tuple[int, int, int, int]:
        """``(hits, misses, size, capacity)`` for diagnostics."""
        return (self.hits, self.misses, len(self._data), self.capacity)

    def __repr__(self) -> str:
        return (f"LRUCache(capacity={self.capacity}, "
                f"size={len(self._data)}, hits={self.hits}, "
                f"misses={self.misses})")
