"""Embedded English stop-word list.

The paper removes stop words before building the keyword graph.  The
list below is the classic Glasgow/SMART-style core list of function
words; it is embedded so the library works fully offline.
"""

from __future__ import annotations

STOPWORDS = frozenset("""
a about above after again against all am an and any are aren't as at
be because been before being below between both but by
can't cannot could couldn't
did didn't do does doesn't doing don't down during
each
few for from further
had hadn't has hasn't have haven't having he he'd he'll he's her here
here's hers herself him himself his how how's
i i'd i'll i'm i've if in into is isn't it it's its itself
just
let's
me more most mustn't my myself
no nor not now
of off on once only or other ought our ours ourselves out over own
same shan't she she'd she'll she's should shouldn't so some such
than that that's the their theirs them themselves then there there's
these they they'd they'll they're they've this those through to too
under until up upon us
very via
was wasn't we we'd we'll we're we've were weren't what what's when
when's where where's which while who who's whom why why's will with
won't would wouldn't
you you'd you'll you're you've your yours yourself yourselves
also among amongst anyway anywhere around became become becomes
becoming beside besides beyond cant co con could de describe done due
eg either else elsewhere enough etc even ever every everyone
everything everywhere except fifty fill find fire first five former
formerly forty found four front full get give go got had hence
hereafter hereby herein hereupon however hundred ie inc indeed
interest keep last latter latterly least less ltd made many may maybe
meanwhile might mill mine moreover mostly move much must name namely
neither never nevertheless next nine nobody none noone nothing
nowhere often one onto others otherwise part per perhaps please put
rather re said same see seem seemed seeming seems serious several she
show side since sincere six sixty somehow someone something sometime
sometimes somewhere still take ten therefore therein thereupon thick
thin third three though thru thus till together top toward towards
twelve twenty two un used want wants well went whatever whence
whenever whereafter whereas whereby wherein whereupon wherever
whether whither whoever whole whose within without yet
""".split())


def is_stopword(token: str) -> bool:
    """True when *token* (already lowercased) is a stop word."""
    return token in STOPWORDS
