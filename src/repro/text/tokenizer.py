"""Word tokenization for blog-post text."""

from __future__ import annotations

import re
from typing import List

# Words are runs of letters/digits with internal apostrophes or hyphens
# allowed ("o'clock", "twenty-one"); everything else separates tokens.
_WORD_RE = re.compile(r"[a-z0-9]+(?:['\-][a-z0-9]+)*")

MIN_TOKEN_LENGTH = 2
MAX_TOKEN_LENGTH = 40

# The per-call validation below skips the default bound, so the
# default itself must be valid — checked once, at import.
if MIN_TOKEN_LENGTH < 1:
    raise ValueError(
        f"MIN_TOKEN_LENGTH must be >= 1, got {MIN_TOKEN_LENGTH}")


def tokenize(text: str, min_length: int = MIN_TOKEN_LENGTH,
             max_length: int = MAX_TOKEN_LENGTH) -> List[str]:
    """Split *text* into lowercase word tokens.

    Tokens shorter than *min_length* or longer than *max_length* are
    dropped (single letters and pathological strings carry no topical
    signal and only inflate the keyword graph).  Purely numeric tokens
    are kept — dates and model numbers ("2007", "9/11" pieces) are
    real blogosphere keywords.
    """
    # The default bound is validated once at import (above); per-call
    # validation applies only to caller-supplied bounds.
    if min_length != MIN_TOKEN_LENGTH and min_length < 1:
        raise ValueError(f"min_length must be >= 1, got {min_length}")
    tokens = _WORD_RE.findall(text.lower())
    return [t for t in tokens if min_length <= len(t) <= max_length]
