"""The Porter stemming algorithm (Porter, 1980), implemented in full.

The paper stems all keywords before building keyword graphs ("Note
that the keywords are stemmed" under Figures 4, 15 and 16 — e.g.
"featur", "galaxi", "somalia").  This is a from-scratch implementation
of the original five-step algorithm, following M. F. Porter, "An
algorithm for suffix stripping", *Program* 14(3), 1980.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional

_VOWELS = "aeiou"

# Natural-language corpora follow Zipf's law: an interval re-stems the
# same few thousand distinct tokens over and over, so a modest memo
# absorbs nearly every call.  Sized for a day-scale interval
# vocabulary; per-instance, so worker processes never share state.
STEM_CACHE_SIZE = 32768


class PorterStemmer:
    """Porter stemmer; use :meth:`stem` or the module-level
    :func:`stem` helper.

    The algorithm itself is stateless; each instance keeps an LRU memo
    of ``word -> stem`` (*cache_size* entries; ``0``/``None`` disables
    it), because corpora re-stem the same tokens thousands of times
    per interval.  Cached and uncached results are identical by
    construction — the memo wraps the pure suffix-stripping pipeline.
    """

    def __init__(self, cache_size: Optional[int] = STEM_CACHE_SIZE
                 ) -> None:
        self._cache_size = cache_size
        if cache_size:
            self._cached_stem = lru_cache(maxsize=cache_size)(
                self._stem_uncached)
        else:
            self._cached_stem = self._stem_uncached

    def __getstate__(self):
        """Pickle the configuration, not the memo: an ``lru_cache``
        wrapper over a bound method cannot pickle, and a worker
        process warms its own cache anyway."""
        return {"cache_size": self._cache_size}

    def __setstate__(self, state) -> None:
        """Rebuild the (empty) memo from the pickled configuration."""
        self.__init__(state["cache_size"])

    def cache_info(self):
        """The memo's ``functools`` hit/miss counters (``None`` when
        the cache is disabled)."""
        info = getattr(self._cached_stem, "cache_info", None)
        return info() if info is not None else None

    # ------------------------------------------------------------------
    # Measure and shape predicates.  A word is viewed as [C](VC)^m[V];
    # m is the "measure" used by most rules.
    # ------------------------------------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            # 'y' is a consonant at the start or after a vowel,
            # and a vowel after a consonant ("syzygy").
            return i == 0 or not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem_part: str) -> int:
        """Count VC sequences in *stem_part*."""
        m = 0
        i = 0
        n = len(stem_part)
        # Skip initial consonants.
        while i < n and cls._is_consonant(stem_part, i):
            i += 1
        while i < n:
            # Inside a vowel run.
            while i < n and not cls._is_consonant(stem_part, i):
                i += 1
            if i >= n:
                break
            m += 1
            while i < n and cls._is_consonant(stem_part, i):
                i += 1
        return m

    @classmethod
    def _contains_vowel(cls, stem_part: str) -> bool:
        return any(not cls._is_consonant(stem_part, i)
                   for i in range(len(stem_part)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        return (len(word) >= 2 and word[-1] == word[-2]
                and cls._is_consonant(word, len(word) - 1))

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """consonant-vowel-consonant, last consonant not w, x or y."""
        if len(word) < 3:
            return False
        return (cls._is_consonant(word, len(word) - 3)
                and not cls._is_consonant(word, len(word) - 2)
                and cls._is_consonant(word, len(word) - 1)
                and word[-1] not in "wxy")

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            if self._measure(word[:-3]) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES: Dict[str, str] = {
        "ational": "ate", "tional": "tion", "enci": "ence", "anci": "ance",
        "izer": "ize", "abli": "able", "alli": "al", "entli": "ent",
        "eli": "e", "ousli": "ous", "ization": "ize", "ation": "ate",
        "ator": "ate", "alism": "al", "iveness": "ive", "fulness": "ful",
        "ousness": "ous", "aliti": "al", "iviti": "ive", "biliti": "ble",
    }

    _STEP3_SUFFIXES: Dict[str, str] = {
        "icate": "ic", "ative": "", "alize": "al", "iciti": "ic",
        "ical": "ic", "ful": "", "ness": "",
    }

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive",
        "ize",
    )

    def _replace_by_table(self, word: str, table: Dict[str, str]) -> str:
        for suffix in sorted(table, key=len, reverse=True):
            if word.endswith(suffix):
                stem_part = word[: len(word) - len(suffix)]
                if self._measure(stem_part) > 0:
                    return stem_part + table[suffix]
                return word
        return word

    def _step2(self, word: str) -> str:
        return self._replace_by_table(word, self._STEP2_SUFFIXES)

    def _step3(self, word: str) -> str:
        return self._replace_by_table(word, self._STEP3_SUFFIXES)

    def _step4(self, word: str) -> str:
        for suffix in sorted(self._STEP4_SUFFIXES, key=len, reverse=True):
            if word.endswith(suffix):
                stem_part = word[: len(word) - len(suffix)]
                if suffix == "ion" and (not stem_part
                                        or stem_part[-1] not in "st"):
                    continue
                if self._measure(stem_part) > 1:
                    return stem_part
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem_part = word[:-1]
            m = self._measure(stem_part)
            if m > 1:
                return stem_part
            if m == 1 and not self._ends_cvc(stem_part):
                return stem_part
        return word

    def _step5b(self, word: str) -> str:
        if (word.endswith("ll") and self._measure(word[:-1]) > 1):
            return word[:-1]
        return word

    def stem(self, word: str) -> str:
        """Return the Porter stem of *word* (assumed lowercase)."""
        return self._cached_stem(word)

    def _stem_uncached(self, word: str) -> str:
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word


_DEFAULT = PorterStemmer()


def stem(word: str) -> str:
    """Stem *word* with a shared :class:`PorterStemmer` instance."""
    return _DEFAULT.stem(word)
