"""Document model for temporally ordered text sources.

The paper's unit of data is a blog post (a bag of words) created in a
temporal interval; the document collection :math:`\\mathcal{D}` for an
interval is the set of posts created in it.  ``Document`` carries raw
text plus its interval index; ``IntervalCorpus`` groups documents by
interval and yields preprocessed keyword sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import STOPWORDS
from repro.text.tokenizer import tokenize
from repro.vocab import Vocabulary

_stemmer = PorterStemmer()


def _validate_interval(interval: int) -> int:
    """Check that *interval* is a usable index; returns it.

    Interval indices are dense 0..m-1 by convention; anything that is
    not a non-negative ``int`` (bools included — they compare equal
    to 0/1 but signal a caller bug) would silently vanish from every
    positional consumer downstream, so it is rejected here, mirroring
    the timestamp guard of
    :func:`repro.streaming.source.interval_batches`.
    """
    if isinstance(interval, bool) or not isinstance(interval, int):
        raise ValueError(
            f"document interval must be an int, got {interval!r}")
    if interval < 0:
        raise ValueError(
            f"document interval must be >= 0, got {interval}; "
            "rebase timestamps before building the corpus "
            "(IntervalCorpus.from_adapter does this for you)")
    return interval


def preprocess(text: str, do_stem: bool = True) -> FrozenSet[str]:
    """Tokenize, drop stop words, and (optionally) stem *text*.

    Returns the *set* of resulting keywords — the co-occurrence counts
    of Section 3 are per-document (a pair counts once per post no
    matter how many times it repeats), so a set is the right shape.
    """
    keywords = set()
    for token in tokenize(text):
        if token in STOPWORDS:
            continue
        keywords.add(_stemmer.stem(token) if do_stem else token)
    return frozenset(keywords)


@dataclass(frozen=True)
class Document:
    """One blog post: an id, its temporal interval, and its text."""

    doc_id: str
    interval: int
    text: str

    def keywords(self, do_stem: bool = True) -> FrozenSet[str]:
        """Preprocessed keyword set of this document."""
        return preprocess(self.text, do_stem=do_stem)

    def keyword_ids(self, vocab: Vocabulary,
                    do_stem: bool = True) -> FrozenSet[int]:
        """Preprocessed keywords interned into *vocab* as an id set.

        Note: interning one document at a time grows *vocab* in this
        document's keyword order; drivers that need deterministic ids
        across execution modes intern per interval through
        :meth:`Vocabulary.intern_sets` instead.
        """
        keywords = self.keywords(do_stem=do_stem)
        vocab.intern_sorted(keywords)
        return frozenset(vocab.id_of(keyword) for keyword in keywords)


@dataclass
class IntervalCorpus:
    """Documents grouped by temporal interval.

    ``intervals`` maps interval index -> list of documents.  Intervals
    are dense 0..m-1 by convention but sparse indices are accepted.
    """

    intervals: Dict[int, List[Document]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Validate interval indices of a dict supplied at build time."""
        for interval in self.intervals:
            _validate_interval(interval)

    def add(self, doc: Document) -> None:
        """Insert *doc* under its interval.

        Raises :class:`ValueError` for negative or non-integer
        interval indices — previously such documents were stored but
        invisible to every dense-interval consumer.
        """
        _validate_interval(doc.interval)
        self.intervals.setdefault(doc.interval, []).append(doc)

    @classmethod
    def from_adapter(cls, adapter, rebase: bool = True,
                     fill_gaps: bool = True) -> "IntervalCorpus":
        """Materialize a corpus from a :class:`repro.corpus` adapter.

        Consumes the adapter's ``(interval, Document)`` stream in one
        pass.  With ``rebase`` (the default) the smallest interval
        seen becomes index 0 — so raw bucket values such as
        publication years land on the dense 0..m-1 timeline the
        pipelines expect; with ``fill_gaps`` empty intervals inside
        the span are populated with empty document lists, matching
        the dense replay of
        :func:`repro.streaming.source.interval_batches` (and its
        timestamp-span guard, which is applied here too).  Set both
        to ``False`` to keep the adapter's indices verbatim.  The
        adapter's :class:`~repro.corpus.IngestReport` is complete
        once this returns.
        """
        from repro.corpus.base import CorpusFormatError

        by_interval: Dict[int, List[Document]] = {}
        for interval, doc in adapter:
            by_interval.setdefault(interval, []).append(doc)
        corpus = cls()
        if not by_interval:
            return corpus
        lo, hi = min(by_interval), max(by_interval)
        span = hi - lo + 1
        if span > max(1000, 100 * len(by_interval)):
            raise CorpusFormatError(
                f"corpus timestamps span {span} intervals across "
                f"{len(by_interval)} populated ones — likely raw "
                "timestamps; pick a coarser bucketing (--bucket "
                "year/month/epoch:SECONDS)")
        base = lo if rebase else 0
        if not rebase and lo < 0:
            raise CorpusFormatError(
                f"adapter produced negative interval {lo} and "
                "rebase is off; shift the origin or enable rebase")
        indices = range(lo, hi + 1) if fill_gaps else sorted(by_interval)
        for raw in indices:
            shifted = raw - base
            corpus.intervals[shifted] = [
                replace(doc, interval=shifted) if doc.interval != shifted
                else doc
                for doc in by_interval.get(raw, [])]
        return corpus

    def add_text(self, doc_id: str, interval: int, text: str) -> Document:
        """Create a :class:`Document` and insert it."""
        doc = Document(doc_id=doc_id, interval=interval, text=text)
        self.add(doc)
        return doc

    def extend(self, docs: Iterable[Document]) -> None:
        """Insert every document of *docs*."""
        for doc in docs:
            self.add(doc)

    @property
    def interval_indices(self) -> List[int]:
        """Sorted list of populated interval indices."""
        return sorted(self.intervals)

    @property
    def num_intervals(self) -> int:
        """Number of populated intervals."""
        return len(self.intervals)

    @property
    def num_documents(self) -> int:
        """Total documents across all intervals."""
        return sum(len(docs) for docs in self.intervals.values())

    def documents(self, interval: int) -> List[Document]:
        """Documents of one interval (empty list when unpopulated)."""
        return self.intervals.get(interval, [])

    def keyword_sets(self, interval: int,
                     do_stem: bool = True) -> Iterator[FrozenSet[str]]:
        """Preprocessed keyword set of each document in *interval*."""
        for doc in self.documents(interval):
            yield doc.keywords(do_stem=do_stem)

    def keyword_id_sets(self, interval: int, vocab: Vocabulary,
                        do_stem: bool = True) -> List[FrozenSet[int]]:
        """One interval's keyword sets interned into *vocab*.

        New tokens are assigned ids in sorted order across the whole
        interval (:meth:`Vocabulary.intern_sets`), so the ids depend
        only on which intervals were interned before — never on
        document order.
        """
        return vocab.intern_sets(
            self.keyword_sets(interval, do_stem=do_stem))

    def vocabulary(self, interval: Optional[int] = None,
                   do_stem: bool = True) -> FrozenSet[str]:
        """Union of keywords over one interval (or all intervals)."""
        indices = [interval] if interval is not None else self.interval_indices
        vocab = set()
        for idx in indices:
            for kws in self.keyword_sets(idx, do_stem=do_stem):
                vocab |= kws
        return frozenset(vocab)
