"""Temporal bucketing: timestamps -> interval indices.

The paper fixes a temporal interval ("say every hour or every day")
and assigns each post to the interval it was created in.  ``Timeline``
does that mapping for real timestamped feeds, so corpora can be built
directly from crawl data:

    timeline = Timeline(start=datetime(2007, 1, 6), bucket="day")
    corpus.add_text(post_id, timeline.interval_of(created_at), text)
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Iterable, Tuple

from repro.text.documents import Document, IntervalCorpus

_BUCKETS = {
    "hour": timedelta(hours=1),
    "day": timedelta(days=1),
    "week": timedelta(weeks=1),
}


class Timeline:
    """Maps timestamps into consecutive interval indices from a start
    instant, at hourly/daily/weekly (or custom timedelta) granularity.
    """

    def __init__(self, start: datetime, bucket="day") -> None:
        if isinstance(bucket, timedelta):
            width = bucket
        else:
            try:
                width = _BUCKETS[bucket]
            except KeyError:
                raise ValueError(
                    f"bucket must be a timedelta or one of "
                    f"{sorted(_BUCKETS)}, got {bucket!r}") from None
        if width <= timedelta(0):
            raise ValueError(f"bucket width must be positive, got {width}")
        self.start = start
        self.width = width

    def interval_of(self, when: datetime) -> int:
        """Interval index containing *when* (must be >= start)."""
        if when < self.start:
            raise ValueError(
                f"timestamp {when} precedes the timeline start "
                f"{self.start}")
        return int((when - self.start) // self.width)

    def bounds(self, interval: int) -> Tuple[datetime, datetime]:
        """[inclusive, exclusive) instant bounds of an interval."""
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        lower = self.start + interval * self.width
        return lower, lower + self.width

    def build_corpus(self, posts: Iterable[Tuple[str, datetime, str]]
                     ) -> IntervalCorpus:
        """An :class:`IntervalCorpus` from ``(id, timestamp, text)``
        records; posts before the start are rejected."""
        corpus = IntervalCorpus()
        for post_id, when, text in posts:
            corpus.add(Document(doc_id=post_id,
                                interval=self.interval_of(when),
                                text=text))
        return corpus
