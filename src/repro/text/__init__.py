"""Text-processing substrate.

Section 3 of the paper preprocesses each blog post by tokenizing,
removing stop words, and stemming ("after stemming and removal of stop
words").  This package implements that stack from scratch:

* :func:`~repro.text.tokenizer.tokenize` — lowercasing word tokenizer.
* :data:`~repro.text.stopwords.STOPWORDS` — embedded English stop list.
* :class:`~repro.text.stemmer.PorterStemmer` — the complete Porter
  (1980) algorithm.
* :class:`~repro.text.documents.Document` /
  :class:`~repro.text.documents.IntervalCorpus` — the document model
  the co-occurrence stage consumes.
"""

from repro.text.documents import Document, IntervalCorpus, preprocess
from repro.text.stemmer import PorterStemmer, stem
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.timeline import Timeline
from repro.text.tokenizer import tokenize

__all__ = [
    "Document",
    "IntervalCorpus",
    "PorterStemmer",
    "STOPWORDS",
    "Timeline",
    "is_stopword",
    "preprocess",
    "stem",
    "tokenize",
]
