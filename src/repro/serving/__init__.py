"""Concurrent HTTP serving tier over the persisted cluster index.

The paper motivates its algorithms with a serving scenario — query
refinement for "millions of users" of a blog search engine — and this
package is that front end in miniature: a stdlib-only JSON-over-HTTP
server sharing one thread-safe
:class:`~repro.service.ClusterQueryService` across every connection.

* :class:`~repro.serving.server.ClusterServer` — the
  :class:`~http.server.ThreadingHTTPServer`-based server:
  ``/refine``, ``/lookup``, ``/paths``, ``/stats`` endpoints,
  admission control under a memory budget (429 + ``Retry-After``
  past the in-flight bound), and a background thread live-tailing a
  streaming index behind the service's read-write lock;
* :class:`~repro.serving.batching.SingleFlight` — request batching:
  concurrent requests for the same key coalesce into one index read;
* payload builders (:func:`~repro.serving.server.refine_payload`
  and friends) shared by the HTTP handler and in-process callers, so
  HTTP answers are byte-identical to direct service calls.

Start one from the CLI with ``repro serve INDEX_DIR``; measure the
latency curve with ``benchmarks/bench_serving_load.py``.
"""

from repro.serving.batching import SingleFlight
from repro.serving.server import (
    ClusterServer,
    encode_payload,
    lookup_payload,
    paths_payload,
    refine_payload,
)
from repro.storage.rwlock import RWLock

__all__ = [
    "ClusterServer",
    "RWLock",
    "SingleFlight",
    "encode_payload",
    "lookup_payload",
    "paths_payload",
    "refine_payload",
]
