"""Single-flight request batching: coalesce duplicate reads.

Under concurrent load the same hot question arrives on many
connections at once — sixty-four clients all asking to refine the
keyword of the hour in the same interval.  Without batching each
request pays its own index read; with it, the *first* request for a
key becomes the **leader** and actually computes the answer, while
every request that arrives for the same key before the leader
finishes waits on it and shares the result.  The index is read once
per distinct in-flight key, not once per request — the classic
``singleflight`` pattern of serving caches.

This deduplicates only *concurrent* work: once the leader publishes
its result the key leaves the in-flight table, so later requests
compute afresh (a cache above this layer decides how long answers
live; see the hot-keyword LRU in
:class:`~repro.service.ClusterQueryService`).  Leader failures
propagate to every coalesced waiter — all of them would have failed
the same way.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable, Optional, Tuple


class _Flight:
    """One in-flight computation: the leader's result or error."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Coalesce concurrent calls for the same key into one execution.

    :meth:`do` is the whole API: callers pass a hashable key and a
    zero-argument function; exactly one caller per in-flight key runs
    the function, the rest block until it finishes and return (or
    re-raise) the same outcome.  Counters for :meth:`stats` are kept
    under the same lock as the in-flight table.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, _Flight] = {}
        self._calls = 0
        self._leaders = 0
        self._errors = 0

    def do(self, key: Hashable, fn: Callable[[], Any]) -> Any:
        """Run ``fn()`` once per concurrently requested *key*.

        The leader executes and publishes; coalesced callers wait and
        share the leader's return value or exception."""
        with self._lock:
            self._calls += 1
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                self._leaders += 1
                lead = True
            else:
                lead = False
        if not lead:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result
        try:
            flight.result = fn()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._errors += 1
            raise
        finally:
            with self._lock:
                del self._inflight[key]
            flight.done.set()
        return flight.result

    def stats(self) -> Tuple[int, int, int, int]:
        """``(calls, leaders, coalesced, errors)`` so far.

        ``coalesced`` is the reads saved: calls that waited on a
        leader instead of touching the index themselves."""
        with self._lock:
            return (self._calls, self._leaders,
                    self._calls - self._leaders, self._errors)

    def __repr__(self) -> str:
        calls, leaders, coalesced, errors = self.stats()
        return (f"SingleFlight(calls={calls}, leaders={leaders}, "
                f"coalesced={coalesced}, errors={errors})")
