"""Concurrent HTTP serving of a persisted cluster index.

:class:`ClusterServer` fronts one thread-safe
:class:`~repro.service.ClusterQueryService` with a stdlib
:class:`~http.server.ThreadingHTTPServer` speaking JSON over HTTP —
the "heavy traffic from millions of users" path of the paper's
Section-1 application, reduced to machinery this repository can
measure.  Four GET endpoints mirror the in-process API:

* ``/refine?keyword=K[&interval=N][&top=T]`` — refinement
  suggestions (Section 1), rendered exactly as ``query refine``;
* ``/lookup?keyword=K[&interval=N]`` — the cluster a keyword falls
  into;
* ``/paths[?keyword=K]`` — the run's stable paths, rendered from the
  index;
* ``/stats`` — serving counters (cache hit rates, admission,
  single-flight batching) for monitoring and the load benchmark.

Answers are **byte-identical** to the in-process service: every
endpoint's body is :func:`encode_payload` over a payload built by the
same module-level functions a direct caller would use, so the
round-trip tests can pin HTTP bytes against in-process bytes.

The perf machinery under load:

* **admission control** — a ``--memory-budget`` splits into the two
  read caches plus an in-flight request bound
  (:func:`repro.engine.planner.split_serving_budget`); requests past
  the bound get ``429`` with ``Retry-After`` instead of queueing
  unboundedly;
* **single-flight batching** — concurrent requests for the same
  keyword/interval coalesce into one index read
  (:class:`~repro.serving.batching.SingleFlight`);
* **live tailing** — a background thread ``refresh()``-es a streaming
  index on a poll cadence; the service's read-write lock means the
  segment swap waits only for in-flight answers, never blocking the
  steady query load for the whole scan.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.engine.planner import split_serving_budget
from repro.search.refinement import render_refinement
from repro.service import ClusterQueryService
from repro.serving.batching import SingleFlight
from repro.text.stemmer import stem

DEFAULT_TOP = 8
DEFAULT_REFRESH_SECONDS = 0.5
RETRY_AFTER_SECONDS = 1

ROUTES = ("/refine", "/lookup", "/paths", "/stats")


# ----------------------------------------------------------------------
# Payloads (shared by the HTTP handler and the in-process tests)
# ----------------------------------------------------------------------


def encode_payload(payload: Dict[str, Any]) -> bytes:
    """Canonical JSON bytes for *payload* (sorted keys + newline).

    Both the HTTP handler and the byte-identity tests encode through
    this one function, so "the same answer" is checkable on the exact
    bytes a client receives."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def refine_payload(service: ClusterQueryService, keyword: str,
                   interval: Optional[int] = None,
                   top: int = DEFAULT_TOP) -> Dict[str, Any]:
    """The ``/refine`` answer: suggestions for one keyword.

    ``rendered`` is the exact :func:`render_refinement` string the
    CLI prints, so HTTP clients see the same text as ``query
    refine``."""
    if interval is None:
        interval = service.latest_interval
    result = service.refine(keyword, interval)
    payload: Dict[str, Any] = {
        "endpoint": "refine",
        "keyword": keyword,
        "interval": interval,
        "found": result is not None,
    }
    if result is None:
        payload.update(stem=stem(keyword.lower()), rendered=None,
                       strongest=None, suggestions=[])
    else:
        payload.update(
            stem=result.query_stem,
            rendered=render_refinement(result, max_suggestions=top),
            strongest=result.strongest,
            suggestions=[[kw, rho]
                         for kw, rho in result.suggestions[:top]])
    return payload


def lookup_payload(service: ClusterQueryService, keyword: str,
                   interval: Optional[int] = None) -> Dict[str, Any]:
    """The ``/lookup`` answer: the cluster one keyword falls into."""
    if interval is None:
        interval = service.latest_interval
    cluster = service.lookup(keyword, interval)
    payload: Dict[str, Any] = {
        "endpoint": "lookup",
        "keyword": keyword,
        "interval": interval,
        "found": cluster is not None,
    }
    if cluster is None:
        payload.update(keywords=[], edges=[])
    else:
        payload.update(
            keywords=sorted(cluster.keywords),
            edges=[[u, v, rho] for u, v, rho in cluster.edges])
    return payload


def paths_payload(service: ClusterQueryService,
                  keyword: Optional[str] = None) -> Dict[str, Any]:
    """The ``/paths`` answer: stable paths, optionally filtered."""
    paths = (service.paths_for(keyword) if keyword
             else service.stable_paths())
    return {
        "endpoint": "paths",
        "keyword": keyword,
        "count": len(paths),
        "paths": [{
            "weight": path.weight,
            "nodes": [[interval, idx]
                      for interval, idx in path.nodes],
            "rendered": service.render_path(path),
        } for path in paths],
    }


# ----------------------------------------------------------------------
# The HTTP layer
# ----------------------------------------------------------------------


class _ThreadingServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired back to its ClusterServer."""

    daemon_threads = True
    allow_reuse_address = True
    # socketserver's default listen backlog is 5; a load spike of
    # concurrent connects would overflow it and stall clients on
    # SYN retransmits for whole seconds.
    request_queue_size = 128
    cluster_server: "ClusterServer"


class _Handler(BaseHTTPRequestHandler):
    """One GET request: admit, dispatch, answer JSON."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serving/1"
    # Buffer the response so headers + body leave in one send, and
    # disable Nagle so that send is not held for the client's
    # delayed ACK — otherwise every keep-alive request stalls ~40ms
    # on the Nagle/delayed-ACK interaction.
    wbufsize = -1
    disable_nagle_algorithm = True

    # Quiet by default: the load benchmark would otherwise spray one
    # stderr line per request.
    def log_message(self, format: str, *args: Any) -> None:
        """Suppress per-request stderr logging."""

    def _respond(self, status: int, payload: Dict[str, Any],
                 retry_after: Optional[int] = None) -> None:
        body = encode_payload(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-answer

    def do_GET(self) -> None:
        """Route one request through admission to its endpoint."""
        server = self.server.cluster_server  # type: ignore[attr-defined]
        parsed = urlsplit(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route not in ROUTES:
            self._respond(404, {"error": f"no such endpoint: {route}",
                                "endpoints": list(ROUTES)})
            return
        if not server._admit():
            self._respond(
                429,
                {"error": "server saturated: "
                          f"{server.max_inflight} requests in flight",
                 "retry_after": RETRY_AFTER_SECONDS},
                retry_after=RETRY_AFTER_SECONDS)
            return
        try:
            params = {key: values[-1] for key, values
                      in parse_qs(parsed.query).items()}
            status, payload = server.answer(route, params)
            self._respond(status, payload)
        except Exception as exc:  # noqa: BLE001 — serve, don't die
            server._count("errors")
            self._respond(500, {"error": f"{type(exc).__name__}: "
                                         f"{exc}"})
        finally:
            server._release()


class ClusterServer:
    """A concurrent JSON-over-HTTP server over one cluster index.

    *index* is an index directory (the service — and its reader — are
    opened and owned, closed with the server) or an already-built
    :class:`~repro.service.ClusterQueryService` (borrowed, left open).
    ``memory_budget`` (bytes) splits into the hot-keyword cache, the
    decoded-cluster cache, and the admission bound via
    :func:`repro.engine.planner.split_serving_budget`; ``cache_size``
    / ``cluster_cache_size`` / ``max_inflight`` override individual
    pieces.  ``batching=False`` disables single-flight coalescing
    (the load benchmark's baseline).  ``refresh_seconds`` is the live
    tailing cadence (0 disables it; irrelevant once the index is
    complete).  ``port=0`` binds an ephemeral port — read
    :attr:`port` after :meth:`start`.
    """

    def __init__(self, index: Union[str, ClusterQueryService],
                 host: str = "127.0.0.1", port: int = 0, *,
                 memory_budget: Optional[int] = None,
                 cache_size: Optional[int] = None,
                 cluster_cache_size: Optional[int] = None,
                 max_inflight: Optional[int] = None,
                 batching: bool = True,
                 refresh_seconds: float = DEFAULT_REFRESH_SECONDS
                 ) -> None:
        hot, clusters, admit = split_serving_budget(memory_budget)
        if cache_size is not None:
            hot = cache_size
        if cluster_cache_size is not None:
            clusters = cluster_cache_size
        if max_inflight is not None:
            admit = max_inflight
        if admit < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {admit}")
        self._owns_service = isinstance(index, str)
        if isinstance(index, str):
            self.service = ClusterQueryService(
                index, cache_size=hot, cluster_cache_size=clusters)
        else:
            self.service = index
        self._host = host
        self._port = port
        self.max_inflight = admit
        self.batching = batching
        self.flight = SingleFlight()
        self.refresh_seconds = refresh_seconds
        self._inflight = threading.Semaphore(admit)
        self._counters = {"requests": 0, "rejected": 0, "errors": 0,
                          "index_reads": 0, "refreshes": 0}
        self._counter_lock = threading.Lock()
        self._httpd: Optional[_ThreadingServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._refresh_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ClusterServer":
        """Bind the socket and start serving on background threads.

        Returns self so ``with ClusterServer(...).start() as s:``
        reads naturally."""
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__} used after close()")
        if self._httpd is not None:
            return self
        self._httpd = _ThreadingServer((self._host, self._port),
                                       _Handler)
        self._httpd.cluster_server = self
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serving", daemon=True)
        self._serve_thread.start()
        if self.refresh_seconds > 0 and not self.service.complete:
            self._refresh_thread = threading.Thread(
                target=self._refresh_loop,
                name="repro-serving-refresh", daemon=True)
            self._refresh_thread.start()
        return self

    @property
    def host(self) -> str:
        """The bound host."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (the real one once started with port=0)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._port

    @property
    def url(self) -> str:
        """Base URL clients should hit."""
        return f"http://{self.host}:{self.port}"

    def _refresh_loop(self) -> None:
        """Tail the live index until it finalizes or the server stops.

        Each poll takes the service's write lock only for the actual
        segment swap; in-flight queries drain first, queued ones see
        the new intervals."""
        while not self._stop.wait(self.refresh_seconds):
            try:
                if self.service.refresh():
                    self._count("refreshes")
                if self.service.complete:
                    return
            except RuntimeError:
                return  # service closed under us: shutting down

    def close(self) -> None:
        """Stop serving and close what this server owns (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._refresh_thread is not None:
            self._refresh_thread.join(timeout=5)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5)
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def _admit(self) -> bool:
        """Try to take an admission slot; False means saturated."""
        if self._inflight.acquire(blocking=False):
            self._count("requests")
            return True
        self._count("rejected")
        return False

    def _release(self) -> None:
        self._inflight.release()

    def _count(self, name: str, by: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += by

    def answer(self, route: str,
               params: Dict[str, str]) -> Tuple[int, Dict[str, Any]]:
        """Answer one admitted request: ``(status, payload)``.

        Query endpoints go through single-flight batching when
        enabled; parameter problems (missing keyword, non-integer
        interval, an empty live index) come back as 400 payloads."""
        try:
            if route == "/stats":
                return 200, self.stats_payload()
            interval = self._int_param(params, "interval")
            if route == "/paths":
                keyword = params.get("keyword")
                key: Tuple[Any, ...] = ("paths", keyword)
                return 200, self._read(
                    key, lambda: paths_payload(self.service, keyword))
            keyword = params.get("keyword")
            if not keyword:
                return 400, {"error": f"{route} needs a "
                                      f"keyword= parameter"}
            if route == "/refine":
                top = self._int_param(params, "top", DEFAULT_TOP)
                key = ("refine", keyword, interval, top)
                return 200, self._read(
                    key, lambda: refine_payload(
                        self.service, keyword, interval, top))
            key = ("lookup", keyword, interval)
            return 200, self._read(
                key, lambda: lookup_payload(
                    self.service, keyword, interval))
        except ValueError as exc:
            # Bad parameters or an empty live index: the client's
            # problem (or simply "not yet"), not a server failure.
            return 400, {"error": str(exc)}

    @staticmethod
    def _int_param(params: Dict[str, str], name: str,
                   default: Optional[int] = None) -> Optional[int]:
        raw = params.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ValueError(
                f"{name}= must be an integer, got {raw!r}") from None

    def _read(self, key: Tuple[Any, ...], build) -> Dict[str, Any]:
        """One index read: single-flighted when batching is on."""

        def counted() -> Dict[str, Any]:
            self._count("index_reads")
            return build()

        if self.batching:
            return self.flight.do(key, counted)
        return counted()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def server_stats(self) -> Dict[str, Any]:
        """The server-side counters (requests, admission, batching)."""
        calls, leaders, coalesced, errors = self.flight.stats()
        with self._counter_lock:
            counters = dict(self._counters)
        counters.update(
            max_inflight=self.max_inflight,
            batching=int(self.batching),
            singleflight={"calls": calls, "leaders": leaders,
                          "coalesced": coalesced, "errors": errors})
        return counters

    def stats_payload(self) -> Dict[str, Any]:
        """The ``/stats`` answer: service + server counters."""
        return {
            "endpoint": "stats",
            "service": self.service.stats(),
            "server": self.server_stats(),
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "serving" if self._httpd is not None else "unstarted")
        return (f"ClusterServer({self.url!r}, {state}, "
                f"max_inflight={self.max_inflight}, "
                f"batching={self.batching})")


__all__ = [
    "ClusterServer",
    "DEFAULT_TOP",
    "ROUTES",
    "encode_payload",
    "lookup_payload",
    "paths_payload",
    "refine_payload",
]
