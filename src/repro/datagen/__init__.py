"""Synthetic data generation.

Two generators, matching the paper's two data sources:

* :mod:`repro.datagen.synthetic_graph` — the Section 5.2 cluster-graph
  model used by every performance experiment (n nodes per interval,
  out-degree uniform in [1, 2d], uniform (0, 1] weights, gap-bounded
  edges).
* :mod:`repro.datagen.blogosphere` — an event-driven blog-post corpus
  standing in for the BlogScope crawl: Zipfian background chatter plus
  scripted events whose keyword sets co-occur in bursts, persist,
  vanish and re-appear (gaps), and drift — the behaviours behind the
  paper's Figures 1, 2, 4, 15 and 16.
"""

from repro.datagen.blogosphere import BlogosphereGenerator
from repro.datagen.events import Event, EventSchedule
from repro.datagen.synthetic_graph import synthetic_cluster_graph
from repro.datagen.vocab import ZipfVocabulary

__all__ = [
    "BlogosphereGenerator",
    "Event",
    "EventSchedule",
    "ZipfVocabulary",
    "synthetic_cluster_graph",
]
