"""Zipfian background vocabulary.

Blog chatter has a heavy-tailed word distribution; background words in
the synthetic corpus are drawn from a Zipf-like rank distribution
(P(rank r) ∝ 1 / r^s).  Words are synthesized from random syllables so
they look plausible, are morphologically diverse, survive the
tokenizer, and interact with the Porter stemmer the way real words do.
"""

from __future__ import annotations

import random
from typing import List, Optional

_ONSETS = ["b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h",
           "j", "k", "l", "m", "n", "p", "pl", "pr", "r", "s", "sh",
           "st", "t", "tr", "v", "w", "z"]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ea", "oo", "ou"]
_CODAS = ["", "n", "r", "s", "t", "l", "m", "nd", "st", "ck"]


def _random_word(rng: random.Random) -> str:
    syllables = rng.choice((2, 2, 3))  # mostly two syllables
    parts: List[str] = []
    for _ in range(syllables):
        parts.append(rng.choice(_ONSETS))
        parts.append(rng.choice(_NUCLEI))
    parts.append(rng.choice(_CODAS))
    return "".join(parts)


class ZipfVocabulary:
    """A fixed vocabulary with Zipfian sampling weights."""

    def __init__(self, size: int, exponent: float = 1.05,
                 seed: Optional[int] = None) -> None:
        if size < 1:
            raise ValueError(f"size must be positive, got {size}")
        if exponent <= 0:
            raise ValueError(f"exponent must be positive, got {exponent}")
        self.size = size
        self.exponent = exponent
        self._rng = random.Random(seed)
        seen = set()
        words: List[str] = []
        while len(words) < size:
            word = _random_word(self._rng)
            if 3 <= len(word) <= 14 and word not in seen:
                seen.add(word)
                words.append(word)
        self.words = words
        self._weights = [1.0 / (rank ** exponent)
                         for rank in range(1, size + 1)]

    def sample(self, count: int) -> List[str]:
        """Draw *count* words (with replacement) Zipf-distributed."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return []
        return self._rng.choices(self.words, weights=self._weights,
                                 k=count)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, word: str) -> bool:
        return word in set(self.words)
