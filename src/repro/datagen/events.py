"""Event scripts for the synthetic blogosphere.

An *event* is what makes keywords cluster: many bloggers writing about
the same story use its keywords together.  Each event carries a
keyword set and a per-interval intensity (how many posts discuss it).
Constructors cover the temporal shapes the paper's qualitative study
exhibits: a single-interval burst (Figures 1-2), persistence
(Figure 16's full-week cluster), gaps (Figure 4's soccer rematches),
and drift (Figure 15's iPhone-features → Cisco-lawsuit shift, modelled
as two overlapping events sharing keywords).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Event:
    """One story: a name, its keywords, and interval -> post counts."""

    name: str
    keywords: Tuple[str, ...]
    intensity: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.keywords) < 2:
            raise ValueError(
                f"event {self.name!r} needs at least two keywords to "
                f"form correlations")
        if any(count < 0 for count in self.intensity.values()):
            raise ValueError(
                f"event {self.name!r} has negative intensity")

    # ------------------------------------------------------------------
    # Temporal shapes
    # ------------------------------------------------------------------

    @classmethod
    def burst(cls, name: str, keywords: Sequence[str], interval: int,
              posts: int) -> "Event":
        """A one-interval story (e.g. the stem-cell discovery of
        Figure 1)."""
        return cls(name, tuple(keywords), {interval: posts})

    @classmethod
    def persistent(cls, name: str, keywords: Sequence[str], start: int,
                   duration: int, posts: int,
                   ramp: Sequence[float] = ()) -> "Event":
        """A story alive for *duration* consecutive intervals.

        ``ramp`` optionally scales each interval's intensity (e.g. the
        Figure 16 Somalia story grows after Jan 8).
        """
        if duration < 1:
            raise ValueError(f"duration must be >= 1, got {duration}")
        intensity = {}
        for offset in range(duration):
            scale = ramp[offset] if offset < len(ramp) else 1.0
            intensity[start + offset] = max(0, int(round(posts * scale)))
        return cls(name, tuple(keywords), intensity)

    @classmethod
    def with_gaps(cls, name: str, keywords: Sequence[str],
                  active_intervals: Iterable[int], posts: int) -> "Event":
        """A story that vanishes and re-appears (Figure 4's two
        Liverpool-Arsenal games three days apart)."""
        return cls(name, tuple(keywords),
                   {interval: posts for interval in active_intervals})

    def active_at(self, interval: int) -> int:
        """Posts this event contributes in *interval* (0 if dormant)."""
        return self.intensity.get(interval, 0)

    @property
    def intervals(self) -> List[int]:
        """Sorted intervals in which the event is active."""
        return sorted(i for i, c in self.intensity.items() if c > 0)


def drifting_event(name: str, shared: Sequence[str],
                   first_phase: Sequence[str],
                   second_phase: Sequence[str],
                   start: int, phase1_len: int, phase2_len: int,
                   posts: int) -> List[Event]:
    """Two overlapping events modelling topic drift (Figure 15).

    Both phases share the ``shared`` keywords (e.g. "apple iphone"),
    so consecutive clusters overlap — a stable path — while the
    non-shared keywords shift (features talk → lawsuit talk).
    """
    phase1 = Event.persistent(f"{name}/phase1",
                              tuple(shared) + tuple(first_phase),
                              start, phase1_len, posts)
    phase2 = Event.persistent(f"{name}/phase2",
                              tuple(shared) + tuple(second_phase),
                              start + phase1_len, phase2_len, posts)
    return [phase1, phase2]


@dataclass
class EventSchedule:
    """The full script of events for a synthetic corpus."""

    events: List[Event] = field(default_factory=list)

    def add(self, event: Event) -> "EventSchedule":
        """Append one event (chainable)."""
        self.events.append(event)
        return self

    def extend(self, events: Iterable[Event]) -> "EventSchedule":
        """Append many events (chainable)."""
        self.events.extend(events)
        return self

    def active_at(self, interval: int) -> List[Tuple[Event, int]]:
        """Events posting in *interval*, with their post counts."""
        active = []
        for event in self.events:
            count = event.active_at(interval)
            if count > 0:
                active.append((event, count))
        return active

    @property
    def num_intervals(self) -> int:
        """1 + the largest scripted interval (0 when empty)."""
        last = -1
        for event in self.events:
            if event.intensity:
                last = max(last, max(event.intensity))
        return last + 1
