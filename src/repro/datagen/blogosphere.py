"""Synthetic blogosphere: the BlogScope-crawl stand-in.

The reproduction has no access to the paper's 75M-post BlogScope
crawl, so this generator produces the closest synthetic equivalent
that exercises the same code paths (see docs/architecture.md):

* every post is a bag of words — background chatter drawn from a
  Zipfian vocabulary (heavy-tailed, like real word frequencies); the
  default post length is nearly constant because varying it makes
  *every* frequent word pair positively correlated (a length confound
  that would swamp the event signal the pipeline is meant to detect);
* events inject correlated keyword sets: each event post mentions a
  random large subset of the event's keywords plus background words,
  which is precisely the "lots of bloggers talking about an event"
  signal the chi-square/correlation pipeline detects;
* event schedules control persistence, gaps and drift over intervals,
  producing the stable-cluster structures of Section 5.3.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.datagen.events import EventSchedule
from repro.datagen.vocab import ZipfVocabulary
from repro.text.documents import Document, IntervalCorpus


class BlogosphereGenerator:
    """Generates per-interval blog posts from a vocabulary and events."""

    def __init__(self, vocabulary: ZipfVocabulary,
                 schedule: Optional[EventSchedule] = None,
                 background_posts: int = 200,
                 words_per_post: Tuple[int, int] = (28, 32),
                 keyword_inclusion: float = 0.85,
                 seed: Optional[int] = None) -> None:
        if background_posts < 0:
            raise ValueError(
                f"background_posts must be >= 0, got {background_posts}")
        low, high = words_per_post
        if not 1 <= low <= high:
            raise ValueError(
                f"words_per_post must satisfy 1 <= low <= high, "
                f"got {words_per_post}")
        if not 0.0 < keyword_inclusion <= 1.0:
            raise ValueError(
                f"keyword_inclusion must be in (0, 1], "
                f"got {keyword_inclusion}")
        self.vocabulary = vocabulary
        self.schedule = schedule if schedule is not None else EventSchedule()
        self.background_posts = background_posts
        self.words_per_post = words_per_post
        self.keyword_inclusion = keyword_inclusion
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def generate_interval(self, interval: int) -> List[Document]:
        """All posts of one temporal interval (background + events)."""
        documents: List[Document] = []
        serial = 0
        for _ in range(self.background_posts):
            documents.append(self._background_post(interval, serial))
            serial += 1
        for event, count in self.schedule.active_at(interval):
            for _ in range(count):
                documents.append(
                    self._event_post(interval, serial, event))
                serial += 1
        self._rng.shuffle(documents)
        return documents

    def generate_corpus(self, num_intervals: int) -> IntervalCorpus:
        """An :class:`IntervalCorpus` over intervals 0..num_intervals-1."""
        if num_intervals < 1:
            raise ValueError(
                f"num_intervals must be >= 1, got {num_intervals}")
        corpus = IntervalCorpus()
        for interval in range(num_intervals):
            corpus.extend(self.generate_interval(interval))
        return corpus

    # ------------------------------------------------------------------
    # Post construction
    # ------------------------------------------------------------------

    def _background_words(self) -> List[str]:
        low, high = self.words_per_post
        return self.vocabulary.sample(self._rng.randint(low, high))

    def _background_post(self, interval: int, serial: int) -> Document:
        text = " ".join(self._background_words())
        return Document(doc_id=f"t{interval}-bg{serial}",
                        interval=interval, text=text)

    def _event_post(self, interval: int, serial: int, event) -> Document:
        mentioned = [keyword for keyword in event.keywords
                     if self._rng.random() < self.keyword_inclusion]
        if len(mentioned) < 2:
            # A post that mentions fewer than two event keywords adds
            # no co-occurrence signal; force a minimal pair.
            mentioned = list(event.keywords[:2])
        words = mentioned + self._background_words()
        self._rng.shuffle(words)
        return Document(doc_id=f"t{interval}-{event.name}-{serial}",
                        interval=interval, text=" ".join(words))
