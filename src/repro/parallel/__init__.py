"""Parallel execution layer: executors behind one ``map_stages`` seam.

The per-partition database operators of this reproduction — Section-3
cluster generation per interval, the prefix-filter window join per
index-token partition — are embarrassingly parallel; this package
supplies the process/thread/serial executors they fan out on, and the
worker-resolution helpers the planner and CLI share.  See
:mod:`repro.parallel.executors` for the contract.
"""

from repro.parallel.executors import (
    EXECUTORS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_chunk_size,
    executor_for,
    make_executor,
    open_executor,
    resolve_workers,
)

__all__ = [
    "EXECUTORS",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "default_chunk_size",
    "executor_for",
    "make_executor",
    "open_executor",
    "resolve_workers",
]
