"""Executor abstraction: one ``map_stages`` call, three backends.

The Section-3 pipeline (per-interval cluster generation) and the
window-affinity join are embarrassingly parallel across intervals and
index partitions, but the right degree of parallelism depends on where
the code runs: a test wants deterministic in-process execution, a
notebook wants threads (no pickling), a batch job wants processes (the
work is pure-Python CPU).  This module hides that choice behind one
interface so every stage above it is written once:

* :class:`SerialExecutor` — in-process loop, zero overhead, the
  default and the equivalence oracle;
* :class:`ThreadExecutor` — a thread pool; useful for I/O-bound
  stages and as a pickling-free middle ground;
* :class:`ProcessExecutor` — a process pool; task functions and their
  arguments must pickle (module-level functions or
  :func:`functools.partial` over one).

``map_stages(fn, items)`` applies *fn* to every item and returns the
results **in item order** whatever the backend — callers rely on
positional correspondence (interval *i*'s clusters come back at index
*i*).  Items are shipped in chunks to amortize per-task IPC; chunking
never changes results, only batching.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence

# Submitting one future per item drowns small tasks in IPC; one future
# per worker serializes stragglers.  A few chunks per worker balances
# both (the classic chunksize heuristic of multiprocessing.Pool.map).
CHUNKS_PER_WORKER = 4


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request.

    ``None`` means serial (1); ``0`` means "all cores"; a positive
    count is taken as given.  Negative counts are an error.
    """
    if workers is None:
        return 1
    if workers == 0:
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ValueError(f"workers must be >= 0 or None, got {workers}")
    return workers


def default_chunk_size(num_items: int, workers: int) -> int:
    """Items per submitted chunk: a few chunks per worker."""
    return max(1, -(-num_items // (workers * CHUNKS_PER_WORKER)))


def _apply_chunk(fn: Callable[[Any], Any],
                 chunk: Sequence[Any]) -> List[Any]:
    """Run *fn* over one chunk (module-level so it pickles)."""
    return [fn(item) for item in chunk]


class Executor:
    """The contract every executor satisfies.

    ``map_stages(fn, items)`` returns ``[fn(item) for item in items]``
    — same results, same order, exceptions propagated — computed with
    whatever parallelism the backend provides.  ``workers`` reports
    the degree of parallelism (1 for serial).  Executors are context
    managers; ``close()`` releases any pool and is idempotent.
    """

    name = "executor"
    workers = 1

    def map_stages(self, fn: Callable[[Any], Any],
                   items: Iterable[Any],
                   chunk_size: Optional[int] = None) -> List[Any]:
        """``[fn(item) for item in items]``, possibly in parallel."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (no-op where there are none)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """In-process, single-threaded execution (the oracle backend)."""

    name = "serial"

    def map_stages(self, fn: Callable[[Any], Any],
                   items: Iterable[Any],
                   chunk_size: Optional[int] = None) -> List[Any]:
        """Apply *fn* to every item in-process, in order."""
        return [fn(item) for item in items]


class _PoolExecutor(Executor):
    """Shared chunking/ordering logic over a concurrent.futures pool.

    The pool is created lazily on first use and reused across
    ``map_stages`` calls (a streaming pipeline calls once per
    interval; re-forking per interval would swamp the join it
    parallelizes).
    """

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers if workers is not None
                                       else 0)
        self.chunk_size = chunk_size
        self._pool = None
        self._closed = False

    def _make_pool(self):
        raise NotImplementedError

    def map_stages(self, fn: Callable[[Any], Any],
                   items: Iterable[Any],
                   chunk_size: Optional[int] = None) -> List[Any]:
        """Chunk *items*, run chunks on the pool, reassemble in
        submission (= item) order."""
        if self._closed:
            # Recreating the pool here would leak it: nothing would
            # ever close it again.  Match concurrent.futures'
            # submit-after-shutdown behaviour.
            raise RuntimeError(
                f"{type(self).__name__} used after close()")
        items = list(items)
        if not items:
            return []
        if self._pool is None:
            self._pool = self._make_pool()
        size = chunk_size or self.chunk_size \
            or default_chunk_size(len(items), self.workers)
        chunks = [items[start:start + size]
                  for start in range(0, len(items), size)]
        futures = [self._pool.submit(_apply_chunk, fn, chunk)
                   for chunk in chunks]
        results: List[Any] = []
        for future in futures:  # submission order == item order
            results.extend(future.result())
        return results

    def close(self) -> None:
        """Shut the pool down; later ``map_stages`` calls raise."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution (no pickling; GIL-bound for pure CPU)."""

    name = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution; *fn* and items must pickle."""

    name = "process"

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.workers)


EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(spec, workers: Optional[int] = None) -> Executor:
    """Build an executor from a name (``serial``/``thread``/
    ``process``) or pass an :class:`Executor` instance through."""
    if isinstance(spec, Executor):
        return spec
    try:
        cls = EXECUTORS[spec]
    except KeyError:
        raise ValueError(
            f"unknown executor {spec!r}; choose from "
            f"{sorted(EXECUTORS)}") from None
    if cls is SerialExecutor:
        return cls()
    return cls(workers=workers)


def executor_for(workers) -> Executor:
    """The executor for a worker request: an :class:`Executor`
    instance passes through; ``None``/``1`` is serial; anything more
    parallel is a process pool (the stages this repo fans out are
    pure-Python CPU, where threads cannot help)."""
    if isinstance(workers, Executor):
        return workers
    count = resolve_workers(workers)
    if count <= 1:
        return SerialExecutor()
    return ProcessExecutor(workers=count)


class open_executor:
    """Context manager resolving a ``workers`` argument to an executor.

    An :class:`Executor` instance is used as-is and **not** closed (its
    lifecycle belongs to the caller); an int/None request builds one
    with :func:`executor_for` and disposes of it on exit.  This is the
    idiom every ``workers=``-taking API in the repo uses.
    """

    def __init__(self, workers) -> None:
        self._owned = not isinstance(workers, Executor)
        self._executor = executor_for(workers)

    def __enter__(self) -> Executor:
        return self._executor

    def __exit__(self, *exc_info) -> None:
        if self._owned:
            self._executor.close()
