"""repro — reproduction of "Seeking Stable Clusters in the Blogosphere"
(Bansal, Chiang, Koudas, Tompa; VLDB 2007).

Two-stage pipeline over temporally ordered text:

1. **Cluster generation** (:mod:`repro.cooccur`, :mod:`repro.stats`,
   :mod:`repro.graph`): per-interval keyword co-occurrence graphs,
   chi-square + correlation pruning, biconnected-component clusters.
2. **Stable clusters** (:mod:`repro.core`): the temporal cluster
   graph and the BFS / DFS / TA / normalized / streaming solvers for
   the kl-stable and normalized stable cluster problems.

Supporting packages: :mod:`repro.text` (tokenize/stopwords/Porter),
:mod:`repro.vocab` (keyword interning — the pipeline computes on
integer ids end-to-end and decodes to strings at the rendering edge),
:mod:`repro.extsort` (external merge sort), :mod:`repro.storage`
(paged files, disk dicts, I/O accounting, the compact varint
node-state codec), :mod:`repro.affinity`
(cluster overlap measures and threshold similarity join),
:mod:`repro.datagen` (synthetic blogosphere and cluster graphs),
:mod:`repro.baselines` (cut clustering, KwikCluster),
:mod:`repro.pipeline` (end-to-end batch driver) and
:mod:`repro.streaming` (per-interval document ingestion into
incrementally maintained top-k with bounded state).
"""

__version__ = "1.0.0"

from repro.core import (
    ClusterGraph,
    Path,
    bfs_stable_clusters,
    build_cluster_graph,
    dfs_stable_clusters,
    normalized_stable_clusters,
    ta_stable_clusters,
)
from repro.cooccur import KeywordGraph
from repro.graph import KeywordCluster, extract_clusters
from repro.vocab import FrozenVocabulary, Vocabulary

__all__ = [
    "ClusterGraph",
    "FrozenVocabulary",
    "KeywordCluster",
    "KeywordGraph",
    "Path",
    "Vocabulary",
    "__version__",
    "bfs_stable_clusters",
    "build_cluster_graph",
    "dfs_stable_clusters",
    "extract_clusters",
    "normalized_stable_clusters",
    "ta_stable_clusters",
]
