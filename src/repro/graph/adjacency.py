"""Undirected weighted graph over hashable vertices."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Set, Tuple

Vertex = Any
WeightedEdge = Tuple[Vertex, Vertex, float]


class Graph:
    """Simple undirected graph with per-edge weights.

    Vertices are arbitrary hashable objects.  Parallel edges are not
    supported (re-adding an edge overwrites its weight); self loops are
    rejected — the keyword graph's self pairs are unary counts, not
    edges.
    """

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, v: Vertex) -> None:
        """Ensure *v* exists (no-op when present)."""
        self._adj.setdefault(v, {})

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Insert (or reweight) the undirected edge ``{u, v}``."""
        if u == v:
            raise ValueError(f"self loops are not allowed (vertex {u!r})")
        self._adj.setdefault(u, {})[v] = weight
        self._adj.setdefault(v, {})[u] = weight

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; KeyError when absent."""
        del self._adj[u][v]
        del self._adj[v][u]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices (including isolated ones)."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate over the neighbours of *v*."""
        return iter(self._adj[v])

    def degree(self, v: Vertex) -> int:
        """Number of edges incident to *v*."""
        return len(self._adj[v])

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True when the undirected edge ``{u, v}`` exists."""
        return v in self._adj.get(u, {})

    def weight(self, u: Vertex, v: Vertex) -> float:
        """Weight of the edge ``{u, v}``; KeyError when absent."""
        return self._adj[u][v]

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate over ``(u, v, weight)`` with each edge reported once."""
        seen: Set[Tuple[Vertex, Vertex]] = set()
        for u, nbrs in self._adj.items():
            for v, weight in nbrs.items():
                if (v, u) in seen:
                    continue
                seen.add((u, v))
                yield (u, v, weight)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple],
                   default_weight: float = 1.0) -> "Graph":
        """Build from ``(u, v)`` or ``(u, v, weight)`` tuples."""
        graph = cls()
        for edge in edges:
            if len(edge) == 2:
                graph.add_edge(edge[0], edge[1], default_weight)
            else:
                graph.add_edge(edge[0], edge[1], edge[2])
        return graph

    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """Induced subgraph on the vertex set *keep*."""
        keep_set = set(keep)
        sub = Graph()
        for v in keep_set:
            if v in self._adj:
                sub.add_vertex(v)
        for u, v, weight in self.edges():
            if u in keep_set and v in keep_set:
                sub.add_edge(u, v, weight)
        return sub

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(weight for _, _, weight in self.edges())

    def __repr__(self) -> str:
        return (f"Graph(vertices={self.num_vertices}, "
                f"edges={self.num_edges})")
