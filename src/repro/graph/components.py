"""Connected components (iterative, for arbitrarily deep graphs)."""

from __future__ import annotations

from typing import Any, Iterator, List, Set

from repro.graph.adjacency import Graph

Vertex = Any


def connected_components(graph: Graph) -> Iterator[Set[Vertex]]:
    """Yield the vertex set of each connected component of *graph*."""
    seen: Set[Vertex] = set()
    for start in graph.vertices():
        if start in seen:
            continue
        component: Set[Vertex] = {start}
        frontier: List[Vertex] = [start]
        seen.add(start)
        while frontier:
            u = frontier.pop()
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    component.add(v)
                    frontier.append(v)
        yield component
