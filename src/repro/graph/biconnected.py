"""Articulation points and biconnected components (Algorithm 1).

The paper's Algorithm 1 is the classic Hopcroft–Tarjan scheme: a DFS
assigns discovery numbers ``un[u]`` and low-links ``low[u]``; tree
edges and back edges are pushed on a stack, and whenever a child ``w``
of ``u`` finishes with ``low[w] >= un[u]`` the edges above (and
including) ``(u, w)`` form one biconnected component.

The paper stresses secondary-storage behaviour: the only in-memory
data structure is the edge stack, "efficiently paged to secondary
storage if its size exceeds available resources".  We honour that by
running the edge stack on :class:`~repro.storage.SpillableStack` with a
configurable memory budget.  The DFS itself is iterative, so million-
vertex graphs do not hit Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.graph.adjacency import Graph
from repro.storage.iostats import IOStats
from repro.storage.spillstack import SpillableStack

Vertex = Any
Edge = Tuple[Vertex, Vertex]


@dataclass
class BiconnectedResult:
    """Output of Algorithm 1 over one graph.

    ``components`` holds each biconnected component as a list of edges
    (in stack pop order); ``articulation_points`` is the set of cut
    vertices; ``isolated_vertices`` are degree-0 vertices, which belong
    to no component.
    """

    components: List[List[Edge]] = field(default_factory=list)
    articulation_points: Set[Vertex] = field(default_factory=set)
    isolated_vertices: Set[Vertex] = field(default_factory=set)

    def vertex_sets(self) -> List[Set[Vertex]]:
        """Vertex set of each component, in component order."""
        result = []
        for component in self.components:
            vertices: Set[Vertex] = set()
            for u, v in component:
                vertices.add(u)
                vertices.add(v)
            result.append(vertices)
        return result


def biconnected_components(graph: Graph,
                           stack_budget: int = 0,
                           spill_dir: Optional[str] = None,
                           stats: Optional[IOStats] = None
                           ) -> BiconnectedResult:
    """Run Algorithm 1 over every connected component of *graph*.

    ``stack_budget`` bounds the in-memory portion of the edge stack
    (0 means never spill).  Returns a :class:`BiconnectedResult`.
    """
    result = BiconnectedResult()
    un: Dict[Vertex, int] = {}
    low: Dict[Vertex, int] = {}
    time = 0

    with SpillableStack(memory_budget=stack_budget, spill_dir=spill_dir,
                        stats=stats) as edge_stack:
        for root in graph.vertices():
            if root in un:
                continue
            if graph.degree(root) == 0:
                result.isolated_vertices.add(root)
                continue
            time = _dfs_from_root(graph, root, un, low, time,
                                  edge_stack, result)
    return result


def _dfs_from_root(graph: Graph, root: Vertex, un: Dict, low: Dict,
                   time: int, edge_stack: SpillableStack,
                   result: BiconnectedResult) -> int:
    """Iterative Hopcroft–Tarjan from one root; returns updated clock."""
    time += 1
    un[root] = low[root] = time
    root_children = 0
    # Frames: (vertex, parent, neighbour iterator).
    dfs_stack = [(root, None, graph.neighbors(root))]

    while dfs_stack:
        u, parent, neighbours = dfs_stack[-1]
        w = next(neighbours, None)

        if w is None:
            # u is finished: backtrack and test the articulation
            # condition low[u] >= un[p] at the parent p.
            dfs_stack.pop()
            if not dfs_stack:
                continue
            p = dfs_stack[-1][0]
            if low[u] >= un[p]:
                component = edge_stack.pop_until(
                    lambda edge: edge == (p, u))
                result.components.append(component)
                is_root = len(dfs_stack) == 1
                if not is_root:
                    result.articulation_points.add(p)
            low[p] = min(low[p], low[u])
            continue

        if w == parent:
            continue
        if w not in un:
            # Tree edge.
            edge_stack.push((u, w))
            time += 1
            un[w] = low[w] = time
            if u == root:
                root_children += 1
            dfs_stack.append((w, u, graph.neighbors(w)))
        elif un[w] < un[u]:
            # Back edge to a proper ancestor.
            edge_stack.push((u, w))
            low[u] = min(low[u], un[w])
        # else: w is an already-finished descendant; the edge was
        # pushed when w scanned u, so nothing to do.

    if root_children >= 2:
        result.articulation_points.add(root)
    return time


def articulation_points(graph: Graph) -> Set[Vertex]:
    """Cut vertices of *graph* (convenience over Algorithm 1)."""
    return biconnected_components(graph).articulation_points


def biconnected_vertex_sets(graph: Graph) -> Iterator[Set[Vertex]]:
    """Yield the vertex set of each biconnected component."""
    for vertices in biconnected_components(graph).vertex_sets():
        yield vertices
