"""Keyword-cluster extraction from the pruned graph G' (Section 3).

"The set of clusters we report for G' is the set of all biconnected
components of G' plus all trees connecting those components."  A
bridge (a biconnected component of a single edge) is part of the tree
structure between larger components; by default we report every
component with at least two edges as a cluster and optionally merge in
the bridge/tree keywords of its connected component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.graph.adjacency import Graph
from repro.graph.biconnected import biconnected_components
from repro.storage.iostats import IOStats

Vertex = Any


@dataclass(frozen=True)
class KeywordCluster:
    """One keyword cluster with its edges and the interval it came from.

    ``keywords`` is the vertex set; ``edges`` keeps the supporting
    correlations (u, v, rho), which downstream affinity measures may
    use ("other choices are possible taking into account the strength
    of the correlation between the common pairs of keywords").
    """

    keywords: FrozenSet[str]
    edges: Tuple[Tuple[str, str, float], ...] = ()
    interval: Optional[int] = None

    def __len__(self) -> int:
        return len(self.keywords)

    def jaccard(self, other: "KeywordCluster") -> float:
        """Jaccard affinity with another cluster."""
        union = self.keywords | other.keywords
        if not union:
            return 0.0
        return len(self.keywords & other.keywords) / len(union)

    def intersection_size(self, other: "KeywordCluster") -> int:
        """Overlap affinity with another cluster."""
        return len(self.keywords & other.keywords)


def extract_clusters(pruned: Graph, interval: Optional[int] = None,
                     min_edges: int = 2,
                     include_bridge_trees: bool = False,
                     stack_budget: int = 0,
                     spill_dir: Optional[str] = None,
                     stats: Optional[IOStats] = None
                     ) -> List[KeywordCluster]:
    """Report the clusters of a pruned keyword graph G'.

    ``min_edges`` drops trivially small components (the paper's
    biconnected definition requires at least two edges; pass 1 to also
    report bridges as two-keyword clusters).  With
    ``include_bridge_trees=True`` each surviving component additionally
    absorbs keywords reachable from it through bridge edges that belong
    to no >= *min_edges* component — the paper's "trees connecting
    those components".
    """
    if min_edges < 1:
        raise ValueError(f"min_edges must be >= 1, got {min_edges}")
    result = biconnected_components(pruned, stack_budget=stack_budget,
                                    spill_dir=spill_dir, stats=stats)
    surviving: List[List[Tuple[Vertex, Vertex]]] = [
        component for component in result.components
        if len(component) >= min_edges]

    tree_adjacency: Dict[Vertex, List[Vertex]] = {}
    if include_bridge_trees:
        tree_adjacency = _bridge_adjacency(result.components, min_edges)

    clusters: List[KeywordCluster] = []
    for component in surviving:
        vertices = set()
        for u, v in component:
            vertices.add(u)
            vertices.add(v)
        if include_bridge_trees:
            vertices |= _tree_closure(vertices, tree_adjacency)
        edges = tuple(sorted(
            (min(u, v), max(u, v), pruned.weight(u, v))
            for u, v in component))
        clusters.append(KeywordCluster(keywords=frozenset(vertices),
                                       edges=edges, interval=interval))
    return clusters


def _bridge_adjacency(components: List[List[Tuple[Vertex, Vertex]]],
                      min_edges: int) -> Dict[Vertex, List[Vertex]]:
    """Adjacency restricted to bridge edges (components below the
    reporting threshold)."""
    adjacency: Dict[Vertex, List[Vertex]] = {}
    for component in components:
        if len(component) >= min_edges:
            continue
        for u, v in component:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
    return adjacency


def _tree_closure(seed: set, adjacency: Dict[Vertex, List[Vertex]]) -> set:
    """Vertices reachable from *seed* through bridge edges only."""
    reached = set(seed)
    frontier = [v for v in seed if v in adjacency]
    while frontier:
        u = frontier.pop()
        for v in adjacency.get(u, []):
            if v not in reached:
                reached.add(v)
                frontier.append(v)
    return reached - set(seed)
