"""Keyword-cluster extraction from the pruned graph G' (Section 3).

"The set of clusters we report for G' is the set of all biconnected
components of G' plus all trees connecting those components."  A
bridge (a biconnected component of a single edge) is part of the tree
structure between larger components; by default we report every
component with at least two edges as a cluster and optionally merge in
the bridge/tree keywords of its connected component.

``KeywordCluster`` carries its keywords as a **sorted token tuple** —
interned integer ids bound to a :class:`~repro.vocab.Vocabulary` (or a
frozen snapshot) on the production path, plain strings when built
directly from string graphs.  All computation (affinity measures,
prefix-filter joins, pickled worker payloads) happens on the tokens;
``keywords``/``edges`` decode back to strings lazily, so the
user-facing surface is unchanged whatever the representation
(the decode-at-the-edge rule of docs/architecture.md).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.affinity import measures
from repro.graph.adjacency import Graph
from repro.graph.biconnected import biconnected_components
from repro.storage.iostats import IOStats
from repro.vocab import FrozenVocabulary, Vocabulary, VocabularyLike

Vertex = Any


class KeywordCluster:
    """One keyword cluster with its edges and the interval it came from.

    ``tokens`` is the sorted vertex tuple (ids or strings);
    ``token_edges`` keeps the supporting correlations ``(u, v, rho)``
    in the same token space, which downstream affinity measures may
    use ("other choices are possible taking into account the strength
    of the correlation between the common pairs of keywords").
    ``keywords`` and ``edges`` are the decoded string views; clusters
    are immutable by contract and pickle as their token form plus the
    vocabulary (shared snapshots serialize once per payload).
    """

    __slots__ = ("tokens", "token_edges", "interval", "vocab",
                 "_keywords", "_edges", "_token_set", "_token_buffer",
                 "_signature")

    def __init__(self, keywords: Optional[FrozenSet[str]] = None,
                 edges: Tuple[Tuple[str, str, float], ...] = (),
                 interval: Optional[int] = None, *,
                 tokens: Optional[Tuple] = None,
                 token_edges: Tuple = (),
                 vocab: Optional[VocabularyLike] = None) -> None:
        if tokens is None:
            if keywords is None:
                raise TypeError(
                    "KeywordCluster needs keywords= (string mode) or "
                    "tokens= (interned mode)")
            if vocab is not None or token_edges:
                raise ValueError(
                    "interned construction needs tokens=; keywords/"
                    "edges build a string-mode cluster and cannot be "
                    "combined with vocab or token_edges")
            # Legacy string construction: keywords are the tokens.
            # Edge endpoints are canonicalized (min, max) so a cluster
            # built with reversed edges still equals its rebound form.
            tokens = tuple(sorted(keywords))
            token_edges = tuple(sorted(
                (min(u, v), max(u, v), w) for u, v, w in edges))
        elif keywords is not None or edges:
            raise ValueError(
                "string-mode construction needs keywords=/edges=; "
                "they cannot be combined with tokens (the interned "
                "form carries token_edges instead)")
        self.tokens = tuple(tokens)
        self.token_edges = tuple(token_edges)
        self.interval = interval
        self.vocab = vocab
        self._keywords: Optional[FrozenSet[str]] = None
        self._edges: Optional[Tuple] = None
        self._token_set: Optional[frozenset] = None
        self._token_buffer = None
        self._signature = None

    # ------------------------------------------------------------------
    # Token surface (what computation uses)
    # ------------------------------------------------------------------

    @property
    def token_set(self) -> frozenset:
        """The tokens as a frozenset (cached; the affinity measures'
        comparison form for same-vocabulary clusters)."""
        if self._token_set is None:
            self._token_set = frozenset(self.tokens)
        return self._token_set

    @property
    def token_buffer(self):
        """The tokens as a sorted ``array('I')`` id buffer (cached),
        or None for string-mode clusters — the similarity join's
        galloping-intersection verification form.  ``tokens`` is
        already sorted, so interned clusters pay one packing pass,
        no sort."""
        if self._token_buffer is None and self.vocab is not None:
            from array import array
            self._token_buffer = array("I", self.tokens)
        return self._token_buffer

    @property
    def signature(self):
        """The level-two join signature of this cluster's token set
        (size + checksum-band counts, cached) — the same value
        :func:`repro.affinity.simjoin.token_signature` computes inside
        the join, exposed so candidate callers (e.g. index-backed
        lookups) can pre-filter without touching the token set."""
        if self._signature is None:
            from repro.affinity.simjoin import token_signature
            self._signature = token_signature(self.tokens)
        return self._signature

    # ------------------------------------------------------------------
    # String surface (decode at the edge)
    # ------------------------------------------------------------------

    @property
    def keywords(self) -> FrozenSet[str]:
        """The keyword strings (decoded lazily for interned clusters)."""
        if self._keywords is None:
            if self.vocab is None:
                self._keywords = frozenset(self.tokens)
            else:
                self._keywords = self.vocab.decode_all(self.tokens)
        return self._keywords

    @property
    def edges(self) -> Tuple[Tuple[str, str, float], ...]:
        """The supporting correlations with decoded keywords, sorted
        canonically (so equal clusters compare equal whatever the
        token representation)."""
        if self._edges is None:
            if self.vocab is None:
                self._edges = self.token_edges
            else:
                decode = self.vocab.decode
                self._edges = tuple(sorted(
                    (min(decode(u), decode(v)),
                     max(decode(u), decode(v)), w)
                    for u, v, w in self.token_edges))
        return self._edges

    # ------------------------------------------------------------------
    # Similarity (delegates to the shared affinity implementation)
    # ------------------------------------------------------------------

    def jaccard(self, other: "KeywordCluster") -> float:
        """Jaccard affinity with another cluster."""
        return measures.jaccard(self, other)

    def intersection_size(self, other: "KeywordCluster") -> int:
        """Overlap affinity with another cluster."""
        return measures.intersection_count(self, other)

    # ------------------------------------------------------------------
    # Representation plumbing
    # ------------------------------------------------------------------

    def rebind(self, vocab: Vocabulary) -> "KeywordCluster":
        """This cluster re-interned into *vocab* (growing it).

        Tokens are interned in sorted string order, so the ids a
        sequence of rebinds assigns depend only on cluster content and
        order — the determinism the cross-mode equivalence tests pin.
        Returns ``self`` when already bound to *vocab*.
        """
        if vocab is self.vocab:
            return self
        decode = (lambda token: token) if self.vocab is None \
            else self.vocab.decode
        words = [decode(token) for token in self.tokens]
        # Edge endpoints are interned too: extracted clusters always
        # have them among the keywords, but externally built clusters
        # may not, and they must not crash a rebind.
        edge_words = [(decode(u), decode(v), w)
                      for u, v, w in self.token_edges]
        vocab.intern_sorted(
            words + [w for u, v, _ in edge_words for w in (u, v)])
        id_of = vocab.id_of
        tokens = tuple(sorted(id_of(word) for word in words))
        token_edges = tuple(sorted(
            (min(id_of(u), id_of(v)), max(id_of(u), id_of(v)), w)
            for u, v, w in edge_words))
        return KeywordCluster(tokens=tokens, token_edges=token_edges,
                              interval=self.interval, vocab=vocab)

    def __len__(self) -> int:
        return len(self.tokens)

    def __eq__(self, other) -> bool:
        if not isinstance(other, KeywordCluster):
            return NotImplemented
        if self.vocab is other.vocab:
            return (self.tokens == other.tokens
                    and self.token_edges == other.token_edges
                    and self.interval == other.interval)
        return (self.keywords == other.keywords
                and self.edges == other.edges
                and self.interval == other.interval)

    def __hash__(self) -> int:
        return hash((self.keywords, self.edges, self.interval))

    def __getstate__(self):
        return (self.tokens, self.token_edges, self.interval, self.vocab)

    def __setstate__(self, state) -> None:
        self.tokens, self.token_edges, self.interval, self.vocab = state
        self._keywords = None
        self._edges = None
        self._token_set = None
        self._token_buffer = None
        self._signature = None

    def __repr__(self) -> str:
        kind = "ids" if self.vocab is not None else "strings"
        return (f"KeywordCluster({len(self.tokens)} keywords [{kind}], "
                f"interval={self.interval})")


def extract_clusters(pruned: Graph, interval: Optional[int] = None,
                     min_edges: int = 2,
                     include_bridge_trees: bool = False,
                     stack_budget: int = 0,
                     spill_dir: Optional[str] = None,
                     stats: Optional[IOStats] = None,
                     vocab: Optional[VocabularyLike] = None
                     ) -> List[KeywordCluster]:
    """Report the clusters of a pruned keyword graph G'.

    ``min_edges`` drops trivially small components (the paper's
    biconnected definition requires at least two edges; pass 1 to also
    report bridges as two-keyword clusters).  With
    ``include_bridge_trees=True`` each surviving component additionally
    absorbs keywords reachable from it through bridge edges that belong
    to no >= *min_edges* component — the paper's "trees connecting
    those components".

    When the graph's vertices are interned ids, pass the *vocab* they
    were interned against; the reported clusters stay in id space and
    decode on demand.
    """
    if min_edges < 1:
        raise ValueError(f"min_edges must be >= 1, got {min_edges}")
    result = biconnected_components(pruned, stack_budget=stack_budget,
                                    spill_dir=spill_dir, stats=stats)
    surviving: List[List[Tuple[Vertex, Vertex]]] = [
        component for component in result.components
        if len(component) >= min_edges]

    tree_adjacency: Dict[Vertex, List[Vertex]] = {}
    if include_bridge_trees:
        tree_adjacency = _bridge_adjacency(result.components, min_edges)

    clusters: List[KeywordCluster] = []
    for component in surviving:
        vertices = set()
        for u, v in component:
            vertices.add(u)
            vertices.add(v)
        if include_bridge_trees:
            vertices |= _tree_closure(vertices, tree_adjacency)
        edges = tuple(sorted(
            (min(u, v), max(u, v), pruned.weight(u, v))
            for u, v in component))
        clusters.append(KeywordCluster(tokens=tuple(sorted(vertices)),
                                       token_edges=edges,
                                       interval=interval, vocab=vocab))
    return clusters


def compact_clusters(clusters: Sequence[KeywordCluster]
                     ) -> List[KeywordCluster]:
    """Shrink interned clusters onto a minimal frozen snapshot.

    A generation task interns against its interval's *full* vocabulary
    (every document keyword); the clusters only reference the
    surviving correlated tokens.  This rebinds them to a
    :class:`~repro.vocab.FrozenVocabulary` of exactly those tokens, so
    a pickled task result ships each surviving keyword string once —
    and nothing else.  String-mode clusters pass through unchanged.
    """
    interned = [c for c in clusters if c.vocab is not None]
    if not interned:
        return list(clusters)
    staging = Vocabulary()
    rebound = [cluster.rebind(staging) if cluster.vocab is not None
               else cluster
               for cluster in clusters]
    snapshot = staging.freeze()
    for cluster in rebound:
        if cluster.vocab is staging:
            cluster.vocab = snapshot
    return rebound


def _bridge_adjacency(components: List[List[Tuple[Vertex, Vertex]]],
                      min_edges: int) -> Dict[Vertex, List[Vertex]]:
    """Adjacency restricted to bridge edges (components below the
    reporting threshold)."""
    adjacency: Dict[Vertex, List[Vertex]] = {}
    for component in components:
        if len(component) >= min_edges:
            continue
        for u, v in component:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
    return adjacency


def _tree_closure(seed: set, adjacency: Dict[Vertex, List[Vertex]]) -> set:
    """Vertices reachable from *seed* through bridge edges only."""
    reached = set(seed)
    frontier = [v for v in seed if v in adjacency]
    while frontier:
        u = frontier.pop()
        for v in adjacency.get(u, []):
            if v not in reached:
                reached.add(v)
                frontier.append(v)
    return reached - set(seed)


# FrozenVocabulary is re-exported for callers binding task results.
__all__ = [
    "FrozenVocabulary",
    "KeywordCluster",
    "compact_clusters",
    "extract_clusters",
]
