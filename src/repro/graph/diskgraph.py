"""Disk-resident adjacency for graphs that do not fit in memory.

Section 3 insists the cluster-generation stage be "efficient for
graphs that do not fit in memory": the keyword graphs of Table 1 have
~138M edges.  ``EdgeFileGraph`` keeps the adjacency on disk — each
vertex's neighbour list stored contiguously in a binary file, with an
in-memory index of (offset, count) per vertex — and satisfies the
neighbour-iteration protocol of :func:`repro.graph.biconnected.
biconnected_components`, so Algorithm 1 runs unchanged against it,
reading each adjacency list with one sequential burst and counting the
I/O.

With the techniques of [5] the paper bounds Algorithm 1 at
``O((1 + |V|/M) scan(E) + |V|)`` I/Os; this structure realizes the
``scan(E)`` access pattern (vertex-clustered edge reads).
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.graph.adjacency import Graph
from repro.storage.iostats import IOStats

Vertex = Any

_COUNT = struct.Struct("<I")


class EdgeFileGraph:
    """Read-only undirected graph whose adjacency lives in a file.

    Build once with :meth:`from_edges` or :meth:`from_graph`; vertex
    neighbour lists (with weights) are then served from disk.  Each
    ``neighbors``/``neighbor_weights`` call costs one random read of
    the vertex's list.
    """

    def __init__(self, path: str,
                 index: Dict[Vertex, Tuple[int, int]],
                 stats: Optional[IOStats] = None) -> None:
        self.path = path
        self.stats = stats if stats is not None else IOStats()
        self._index = index
        self._fh = open(path, "rb")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Vertex, Vertex, float]],
                   path: str,
                   stats: Optional[IOStats] = None) -> "EdgeFileGraph":
        """Materialize an edge stream to *path* and open it.

        The construction buffers adjacency in memory (building is a
        one-off step; the paper's giant graphs would use the external
        sort for this grouping — see :mod:`repro.extsort`).
        """
        adjacency: Dict[Vertex, List[Tuple[Vertex, float]]] = {}
        for u, v, weight in edges:
            if u == v:
                raise ValueError(f"self loops are not allowed ({u!r})")
            adjacency.setdefault(u, []).append((v, weight))
            adjacency.setdefault(v, []).append((u, weight))
        index: Dict[Vertex, Tuple[int, int]] = {}
        build_stats = stats if stats is not None else IOStats()
        with open(path, "wb") as out:
            for vertex, neighbours in adjacency.items():
                blob = pickle.dumps(neighbours,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                index[vertex] = (out.tell(), len(blob))
                out.write(blob)
                build_stats.record_write(len(blob), sequential=True)
        return cls(path, index, stats=stats)

    @classmethod
    def from_graph(cls, graph: Graph, path: str,
                   stats: Optional[IOStats] = None) -> "EdgeFileGraph":
        """Spill an in-memory :class:`Graph` to disk form."""
        return cls.from_edges(graph.edges(), path, stats=stats)

    # ------------------------------------------------------------------
    # Graph protocol (as used by Algorithm 1)
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices with at least one edge."""
        return len(self._index)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._index)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._index

    def degree(self, v: Vertex) -> int:
        """Number of neighbours of *v* (one disk read)."""
        return len(self._read_list(v))

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate over neighbours of *v* (one disk read)."""
        return iter([u for u, _ in self._read_list(v)])

    def neighbor_weights(self, v: Vertex) -> List[Tuple[Vertex, float]]:
        """The ``(neighbour, weight)`` list of *v* (one disk read)."""
        return self._read_list(v)

    def weight(self, u: Vertex, v: Vertex) -> float:
        """Weight of edge ``{u, v}``; KeyError when absent."""
        for neighbour, weight in self._read_list(u):
            if neighbour == v:
                return weight
        raise KeyError((u, v))

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True when the undirected edge exists."""
        if u not in self._index:
            return False
        return any(neighbour == v for neighbour, _ in self._read_list(u))

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (scans the index lists)."""
        return sum(self.degree(v) for v in self.vertices()) // 2

    # ------------------------------------------------------------------
    # Internals / lifecycle
    # ------------------------------------------------------------------

    def _read_list(self, v: Vertex) -> List[Tuple[Vertex, float]]:
        offset, length = self._index[v]
        self._fh.seek(offset)
        blob = self._fh.read(length)
        self.stats.record_read(length)
        return pickle.loads(blob)

    def close(self) -> None:
        """Close the adjacency file (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    def delete(self) -> None:
        """Close and remove the backing file."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "EdgeFileGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
