"""Graph substrate: adjacency structures and Algorithm 1.

The paper reports the biconnected components of the pruned keyword
graph G' as keyword clusters (Section 3, Algorithm 1).  This package
provides the undirected weighted graph type, an iterative
Hopcroft–Tarjan implementation of articulation points / biconnected
components whose edge stack can spill to disk, and the cluster
extraction that layers the paper's reporting rules on top.
"""

from repro.graph.adjacency import Graph
from repro.graph.biconnected import (
    BiconnectedResult,
    articulation_points,
    biconnected_components,
)
from repro.graph.clusters import (
    KeywordCluster,
    compact_clusters,
    extract_clusters,
)
from repro.graph.components import connected_components

__all__ = [
    "BiconnectedResult",
    "Graph",
    "KeywordCluster",
    "articulation_points",
    "biconnected_components",
    "compact_clusters",
    "connected_components",
    "extract_clusters",
]
