"""Normalized stable clusters (Problem 2, Section 4.5).

Top-k paths of length at least ``lmin`` under the *stability* score
``weight(π) / length(π)``.  The search runs in the BFS framework of
Algorithm 2, with the per-node state the paper prescribes:

* ``smallpaths[x]`` — **all** paths of length ``x < lmin`` ending at
  the node (they are not yet scoreable and cannot be pruned);
* ``bestpaths`` — candidate paths of length ``>= lmin`` ending at the
  node, pruned by Theorem 1: a path ``π = πpre · πcurr`` with
  ``length(πcurr) >= lmin`` and ``stability(πpre) <= stability(πcurr)``
  is replaced by ``πcurr``, because for any *improving* suffix the
  suffix-only path scores at least as well; and by suffix dominance
  (a retained path subsumes retained paths that are its suffixes —
  Theorem 1 re-derives the suffix from the longer path later if the
  suffix starts to dominate).

Every candidate is checked against the global heap **before** pruning,
so pruning only affects what propagates forward.  Theorem 1 preserves
the top-1 exactly; for k > 1 a reported path may stand in for a
dominated true top-k member (see docs/architecture.md).
``exact=True`` disables
pruning and keeps every path (exponential; the differential-test
oracle uses it on small graphs).

One deliberate generalization over the paper's pseudocode: with gaps,
an extension can jump from length ``lmin - 2`` straight past ``lmin``,
so candidates are drawn from ``smallpaths[x]`` for every ``x`` with
``x + edge_length >= lmin``, not only ``x = lmin - edge_length``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.cluster_graph import ClusterGraph
from repro.core.heaps import TopK
from repro.core.paths import NodeId, Path, edge_path
from repro.core.solver_stats import SolverStats
from repro.storage.backends import StateStore


def stability_key(path: Path) -> Tuple[float, Tuple[NodeId, ...]]:
    """Problem 2 total order: stability, then nodes."""
    return (path.stability, path.nodes)


@dataclass
class NormalizedStats(SolverStats):
    """Work counters for a normalized-BFS run."""

    nodes_processed: int = 0
    candidates_generated: int = 0
    theorem1_reductions: int = 0
    suffix_subsumptions: int = 0
    small_paths_held: int = 0
    best_paths_held: int = 0


@dataclass
class _NodeState:
    small: Dict[int, List[Path]] = field(default_factory=dict)
    best: List[Path] = field(default_factory=list)


class NormalizedBFSEngine:
    """Sliding-window search for normalized stable clusters.

    ``store`` may be any :class:`~repro.storage.StateStore` backend;
    each node's ``smallpaths``/``bestpaths`` state is saved after it
    is computed, mirroring what the BFS engine does with its heaps.
    ``evict_store=True`` (the streaming mode) deletes stored state —
    and prunes recorded edge weights down to the edges still
    referenced by window paths — once an interval slides out of the
    ``g + 1`` window, bounding memory regardless of stream length.
    """

    def __init__(self, lmin: int, k: int, gap: int,
                 exact: bool = False,
                 max_best_per_node: Optional[int] = None,
                 store: Optional[StateStore] = None,
                 evict_store: bool = False,
                 stats: Optional[NormalizedStats] = None) -> None:
        if lmin < 1:
            raise ValueError(f"lmin must be >= 1, got {lmin}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.lmin = lmin
        self.k = k
        self.gap = gap
        self.exact = exact
        self.max_best_per_node = max_best_per_node
        self.store = store
        self.evict_store = evict_store
        self.stats = stats if stats is not None else NormalizedStats()
        self.global_heap: TopK[Path] = TopK(k, key=stability_key)
        self._window: Dict[NodeId, _NodeState] = {}
        self._window_intervals: Deque[int] = deque()
        self._window_nodes: Dict[int, List[NodeId]] = {}
        # Edge weights are needed to score path prefixes/suffixes in
        # Theorem-1 reductions; every edge flows through
        # process_interval, so the engine records them as seen.
        self._edge_weights: Dict[Tuple[NodeId, NodeId], float] = {}

    # ------------------------------------------------------------------
    # Per-interval step
    # ------------------------------------------------------------------

    def process_interval(self, interval: int,
                         nodes_with_parents: Sequence[
                             Tuple[NodeId, Sequence[Tuple[NodeId, float]]]]
                         ) -> None:
        """Compute small/best path state for one interval's nodes."""
        interval_nodes = []
        for node, parent_edges in nodes_with_parents:
            state = self._compute_node_state(node, parent_edges)
            self._window[node] = state
            interval_nodes.append(node)
            if self.store is not None:
                self.store[node] = {"small": state.small,
                                    "best": state.best}
        self._window_intervals.append(interval)
        self._window_nodes[interval] = interval_nodes
        evicted = False
        while (self._window_intervals
               and self._window_intervals[0] < interval - self.gap):
            expired = self._window_intervals.popleft()
            for node in self._window_nodes.pop(expired, []):
                self._window.pop(node, None)
                evicted = True
                if self.store is not None and self.evict_store:
                    del self.store[node]
        if evicted and self.evict_store:
            self._prune_edge_weights()

    def _prune_edge_weights(self) -> None:
        """Drop recorded edge weights no longer reachable.

        Future Theorem-1 reductions only consult edges of candidate
        paths, and every candidate extends a path held by a window
        node (or is a brand-new edge, recorded on arrival) — so the
        consecutive node pairs of the window's small/best paths are
        exactly the weights worth keeping.  Without this, a
        long-running stream's ``_edge_weights`` grows without bound.
        """
        live: Dict[Tuple[NodeId, NodeId], float] = {}
        for state in self._window.values():
            for paths in state.small.values():
                for path in paths:
                    self._collect_edges(path, live)
            for path in state.best:
                self._collect_edges(path, live)
        self._edge_weights = live

    def _collect_edges(self, path: Path,
                       live: Dict[Tuple[NodeId, NodeId], float]) -> None:
        for edge in zip(path.nodes, path.nodes[1:]):
            live[edge] = self._edge_weights[edge]

    def _compute_node_state(self, node: NodeId,
                            parent_edges: Sequence[Tuple[NodeId, float]]
                            ) -> _NodeState:
        state = _NodeState()
        candidates: List[Path] = []
        for parent, weight in parent_edges:
            self._edge_weights[(parent, node)] = weight
            length = node[0] - parent[0]
            bare = edge_path(parent, node, weight)
            if length < self.lmin:
                state.small.setdefault(length, []).append(bare)
            else:
                candidates.append(bare)
            parent_state = self._window.get(parent)
            if parent_state is None:
                continue
            for x, paths in parent_state.small.items():
                total = x + length
                for path in paths:
                    extended = path.append(node, weight)
                    if total < self.lmin:
                        state.small.setdefault(total, []).append(extended)
                    else:
                        candidates.append(extended)
            for path in parent_state.best:
                candidates.append(path.append(node, weight))
        self.stats.nodes_processed += 1
        self.stats.candidates_generated += len(candidates)
        self.stats.small_paths_held += sum(
            len(paths) for paths in state.small.values())
        # Global check happens before pruning: every generated path of
        # admissible length is a legitimate answer candidate.
        for path in candidates:
            self.global_heap.check(path)
        state.best = self._prune_candidates(candidates)
        self.stats.best_paths_held += len(state.best)
        return state

    # ------------------------------------------------------------------
    # Theorem 1 pruning and suffix subsumption
    # ------------------------------------------------------------------

    def _prune_candidates(self, candidates: List[Path]) -> List[Path]:
        if self.exact:
            return list(dict.fromkeys(candidates))
        reduced = [self._reduce(path) for path in candidates]
        survivors = self._drop_suffix_duplicates(reduced)
        survivors.sort(key=stability_key, reverse=True)
        if self.max_best_per_node is not None:
            del survivors[self.max_best_per_node:]
        return survivors

    def _reduce(self, path: Path) -> Path:
        """Apply Theorem 1 repeatedly until the path is irreducible.

        Every intermediate is offered to the global heap: a reduced
        suffix scores at least as well as the path it came from, and
        checking the whole chain is what makes the top-1 guarantee
        hold even when the suffix was subsumed at an earlier node.
        """
        while True:
            replacement = self._reducible_suffix(path)
            if replacement is None:
                return path
            self.stats.theorem1_reductions += 1
            self.global_heap.check(replacement)
            path = replacement

    def _reducible_suffix(self, path: Path) -> Optional[Path]:
        """The suffix replacing *path* under Theorem 1, or None.

        Splits are scanned left to right (longest suffix first); any
        admissible split is dominance-preserving, so the scan order
        only picks among equivalent reduction chains.
        """
        nodes = path.nodes
        if len(nodes) < 3:
            return None
        prefix_weight = 0.0
        for s in range(1, len(nodes) - 1):
            prefix_weight += self._edge_weights[(nodes[s - 1], nodes[s])]
            prefix_length = nodes[s][0] - nodes[0][0]
            suffix_length = nodes[-1][0] - nodes[s][0]
            if suffix_length < self.lmin:
                break  # later splits only shrink the suffix
            suffix_weight = path.weight - prefix_weight
            if (prefix_weight / prefix_length
                    <= suffix_weight / suffix_length):
                return Path(weight=suffix_weight, nodes=nodes[s:])
        return None

    def _drop_suffix_duplicates(self, paths: List[Path]) -> List[Path]:
        """Remove paths that are suffixes of another retained path."""
        unique = sorted(set(paths), key=lambda p: (-len(p.nodes), p.nodes))
        survivors: List[Path] = []
        for path in unique:
            if any(path.is_suffix_of(longer) for longer in survivors):
                self.stats.suffix_subsumptions += 1
                continue
            survivors.append(path)
        return survivors

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def results(self) -> List[Path]:
        """Current top-k paths by stability, best first."""
        return self.global_heap.items()


def normalized_stable_clusters(graph: ClusterGraph, lmin: int, k: int,
                               exact: bool = False,
                               max_best_per_node: Optional[int] = None,
                               store: Optional[StateStore] = None,
                               stats: Optional[NormalizedStats] = None
                               ) -> List[Path]:
    """Top-k paths of length >= *lmin* by stability (Problem 2)."""
    if lmin > graph.num_intervals - 1:
        return []
    engine = NormalizedBFSEngine(lmin=lmin, k=k, gap=graph.gap,
                                 exact=exact,
                                 max_best_per_node=max_best_per_node,
                                 store=store,
                                 stats=stats)
    for i in range(graph.num_intervals):
        engine.process_interval(
            i, [(node, graph.parents(node)) for node in graph.nodes_at(i)])
    return engine.results()
