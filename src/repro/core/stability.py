"""Cluster-graph construction from per-interval keyword clusters.

This ties Section 3's output to Section 4's input: given the keyword
clusters of m temporal intervals, compute affinities between clusters
of intervals ``i < j <= i + g + 1``, keep pairs above θ (0.1 in the
paper), normalize unbounded measures, and emit the
:class:`~repro.core.cluster_graph.ClusterGraph` the stable-cluster
algorithms consume.

For large per-interval cluster counts the all-pairs affinity
computation is replaced by the threshold similarity join of
:mod:`repro.affinity.simjoin` (the paper's pointer to approximate
string processing [11]); this is exact for Jaccard affinity.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.affinity import (
    JoinStats,
    collection_token_sets,
    get_measure,
    jaccard,
    threshold_jaccard_join,
)
from repro.core.cluster_graph import ClusterGraph, ClusterGraphBuilder

THETA_DEFAULT = 0.1


def build_cluster_graph(interval_clusters: Sequence[Sequence],
                        affinity: Union[str, Callable] = "jaccard",
                        theta: float = THETA_DEFAULT,
                        gap: int = 0,
                        use_simjoin: Optional[bool] = None,
                        simjoin_cutoff: int = 2000,
                        join_stats: Optional[JoinStats] = None
                        ) -> ClusterGraph:
    """Build the cluster graph G (Section 4.1).

    ``interval_clusters[i]`` is the cluster list of interval ``i``
    (objects exposing ``keywords``).  ``affinity`` is a measure name
    from :data:`repro.affinity.AFFINITY_MEASURES` or a callable.
    ``use_simjoin`` forces the prefix-filter join on or off; by default
    it engages for Jaccard affinity when an interval pair's cluster
    count product exceeds ``simjoin_cutoff``².  Edge weights are
    normalized to (0, 1] when the measure is unbounded.  ``join_stats``
    accumulates the two-level filter's candidate/verified counters
    over every engaged interval-pair join.
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    measure = get_measure(affinity) if isinstance(affinity, str) \
        else affinity
    is_jaccard = measure is jaccard

    m = len(interval_clusters)
    if m == 0:
        raise ValueError("need at least one interval of clusters")
    builder = ClusterGraphBuilder(m, gap=gap)
    node_ids: List[List] = []
    for interval, clusters in enumerate(interval_clusters):
        node_ids.append([builder.add_node(interval, payload=cluster)
                         for cluster in clusters])

    for i in range(m):
        for j in range(i + 1, min(i + gap + 2, m)):
            left = interval_clusters[i]
            right = interval_clusters[j]
            if not left or not right:
                continue
            engage_join = use_simjoin if use_simjoin is not None else (
                is_jaccard and len(left) * len(right) > simjoin_cutoff ** 2)
            if engage_join and is_jaccard:
                _join_edges(builder, node_ids, i, j, left, right, theta,
                            join_stats)
            else:
                _all_pairs_edges(builder, node_ids, i, j, left, right,
                                 measure, theta)
    return builder.build(normalize=True)


def _all_pairs_edges(builder, node_ids, i, j, left, right, measure,
                     theta) -> None:
    for a, cluster_a in enumerate(left):
        for b, cluster_b in enumerate(right):
            weight = measure(cluster_a, cluster_b)
            if weight > theta:
                builder.add_edge(node_ids[i][a], node_ids[j][b], weight)


def _join_edges(builder, node_ids, i, j, left, right, theta,
                join_stats=None) -> None:
    # Interned id sets when both intervals share one vocabulary,
    # decoded keyword strings otherwise — the join is exact either way.
    left_sets, right_sets = collection_token_sets(left, right)
    for a, b, weight in threshold_jaccard_join(left_sets, right_sets,
                                               theta,
                                               stats=join_stats):
        # The join is >= theta; the paper keeps affinities > theta.
        if weight > theta:
            builder.add_edge(node_ids[i][a], node_ids[j][b], weight)
