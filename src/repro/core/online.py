"""Streaming (online) stable-cluster maintenance (Section 4.6).

New intervals arrive continuously; the BFS engine is incremental by
construction — "when nodes for the next temporal interval G_{m+1}
arrive, heaps for them can be computed without redoing any past
computation".  The paper notes that once streaming, the BFS- and
DFS-based algorithms perform the same per-interval operation and
differ only in bootstrap, so a single streaming front end is provided
for both problems (kl-stable and normalized).

``StreamingStableClusters`` owns a growing cluster timeline: callers
push each new interval's clusters and affinity edges (or raw
per-interval keyword clusters, letting the affinity threshold and gap
policy of Section 4.1 build the edges), and read the current top-k at
any time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bfs import BFSEngine
from repro.core.normalized import NormalizedBFSEngine
from repro.core.paths import NodeId, Path
from repro.storage.backends import StateStore


class StreamingStableClusters:
    """Incrementally maintained top-k stable clusters.

    ``mode='kl'`` maintains Problem 1 (paths of length exactly ``l``);
    ``mode='normalized'`` maintains Problem 2 (length >= ``lmin``,
    score weight/length).  ``l`` is interpreted accordingly.  ``store``
    may be any :class:`~repro.storage.StateStore` backend for the
    per-node heaps.
    """

    def __init__(self, l: int, k: int, gap: int = 0,
                 mode: str = "kl",
                 store: Optional[StateStore] = None) -> None:
        if mode not in ("kl", "normalized"):
            raise ValueError(
                f"mode must be 'kl' or 'normalized', got {mode!r}")
        self.mode = mode
        self.gap = gap
        if mode == "kl":
            self._engine = BFSEngine(l=l, k=k, gap=gap, store=store)
        else:
            self._engine = NormalizedBFSEngine(lmin=l, k=k, gap=gap)
        self._next_interval = 0
        self._interval_sizes: List[int] = []

    @classmethod
    def from_query(cls, query,
                   store: Optional[StateStore] = None
                   ) -> "StreamingStableClusters":
        """Build a streaming maintainer for a
        :class:`~repro.engine.StableQuery` (full-path queries cannot
        stream — the target length must be known up front)."""
        length = query.min_length if query.problem == "normalized" \
            else query.l
        if length is None:
            raise ValueError(
                "streaming needs a concrete length bound; full-path "
                "queries (l=None) grow with the stream")
        return cls(l=length, k=query.k, gap=query.gap,
                   mode=query.problem, store=store)

    # ------------------------------------------------------------------
    # Feeding the stream
    # ------------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        """Intervals consumed so far."""
        return self._next_interval

    def add_interval(self, num_clusters: int,
                     edges: Sequence[Tuple[NodeId, int, float]]
                     ) -> List[NodeId]:
        """Append one interval with *num_clusters* clusters.

        ``edges`` are ``(parent_node, local_index, weight)`` where
        ``parent_node`` is a node id returned for one of the previous
        ``gap + 1`` intervals and ``local_index`` indexes this
        interval's new clusters.  Returns the new node ids.
        """
        interval = self._next_interval
        nodes = [(interval, j) for j in range(num_clusters)]
        incoming: Dict[NodeId, List[Tuple[NodeId, float]]] = {
            node: [] for node in nodes}
        for parent, local_index, weight in edges:
            if not 0 <= local_index < num_clusters:
                raise ValueError(
                    f"edge targets cluster {local_index}, interval has "
                    f"{num_clusters}")
            length = interval - parent[0]
            if not 1 <= length <= self.gap + 1:
                raise ValueError(
                    f"parent {parent} is {length} intervals back; the "
                    f"gap policy allows 1..{self.gap + 1}")
            if not 0.0 < weight <= 1.0:
                raise ValueError(
                    f"affinity weight must be in (0, 1], got {weight}")
            incoming[(interval, local_index)].append((parent, weight))
        self._engine.process_interval(
            interval, [(node, incoming[node]) for node in nodes])
        self._interval_sizes.append(num_clusters)
        self._next_interval += 1
        return nodes

    # ------------------------------------------------------------------
    # Reading results
    # ------------------------------------------------------------------

    def top_k(self) -> List[Path]:
        """Current top-k paths, best first."""
        return self._engine.results()

    @property
    def stats(self):
        """The underlying engine's work counters."""
        return self._engine.stats


class StreamingAffinityPipeline:
    """Streams *keyword clusters* instead of pre-built edges.

    Wraps :class:`StreamingStableClusters`, computing affinity edges
    against the clusters of the previous ``gap + 1`` intervals with the
    supplied measure and threshold θ (Section 4.1's construction,
    applied online).  Cluster objects must expose ``keywords``.
    """

    def __init__(self, l: int, k: int, gap: int = 0,
                 affinity: Optional[Callable] = None,
                 theta: float = 0.1,
                 mode: str = "kl") -> None:
        from repro.affinity import jaccard
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self.affinity = affinity if affinity is not None else jaccard
        self.theta = theta
        self.stream = StreamingStableClusters(l=l, k=k, gap=gap, mode=mode)
        self._recent: List[Tuple[List[NodeId], List]] = []  # per interval

    def add_interval(self, clusters: Sequence) -> List[NodeId]:
        """Append one interval's keyword clusters; affinity edges to
        the recent window are computed here."""
        edges: List[Tuple[NodeId, int, float]] = []
        for node_ids, old_clusters in self._recent:
            for parent_id, old_cluster in zip(node_ids, old_clusters):
                for j, cluster in enumerate(clusters):
                    weight = self.affinity(old_cluster, cluster)
                    if weight > self.theta:
                        edges.append((parent_id, j, min(weight, 1.0)))
        node_ids = self.stream.add_interval(len(clusters), edges)
        self._recent.append((node_ids, list(clusters)))
        if len(self._recent) > self.stream.gap + 1:
            self._recent.pop(0)
        return node_ids

    def top_k(self) -> List[Path]:
        """Current top-k paths, best first."""
        return self.stream.top_k()

    def cluster_for(self, node: NodeId):
        """The cluster object behind *node*, if still in the recent
        window (older intervals have been evicted — streaming keeps
        only g + 1 of them)."""
        for node_ids, clusters in self._recent:
            if node in node_ids:
                return clusters[node_ids.index(node)]
        return None
