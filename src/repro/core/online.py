"""Streaming (online) stable-cluster maintenance (Section 4.6).

New intervals arrive continuously; the BFS engine is incremental by
construction — "when nodes for the next temporal interval G_{m+1}
arrive, heaps for them can be computed without redoing any past
computation".  The paper notes that once streaming, the BFS- and
DFS-based algorithms perform the same per-interval operation and
differ only in bootstrap, so a single streaming front end is provided
for both problems (kl-stable and normalized).

``StreamingStableClusters`` owns a growing cluster timeline: callers
push each new interval's clusters and affinity edges (or raw
per-interval keyword clusters, letting the affinity threshold and gap
policy of Section 4.1 build the edges), and read the current top-k at
any time.  Both modes honour a pluggable
:class:`~repro.storage.StateStore` and evict stored node state once an
interval leaves the ``gap + 1`` window, so memory (and store size)
stays bounded no matter how long the stream runs.

For raw *documents* rather than clusters or edges, see
:class:`repro.streaming.StreamingDocumentPipeline`, which runs the
Section-3 cluster generation per interval and feeds this module.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.affinity.simjoin import JoinStats
from repro.affinity.windowjoin import (
    STREAM_SIMJOIN_CUTOFF,
    WindowFrequencyTracker,
    window_affinity_edges,
)
from repro.core.bfs import BFSEngine
from repro.core.cluster_graph import EPSILON
from repro.core.normalized import NormalizedBFSEngine
from repro.core.paths import NodeId, Path
from repro.storage.backends import StateStore

# Dead bytes a disk-backed store may accumulate before the streaming
# maintainer compacts it.  Eviction deletes keys, but an append-only
# layout only grows — without compaction the state file would expand
# with stream length even though the live key set is bounded.
# Mirrors the planner's COMPACT_GARBAGE_BYTES.
STREAM_COMPACT_GARBAGE_BYTES = 4 * 1024 * 1024


class StreamingStableClusters:
    """Incrementally maintained top-k stable clusters.

    ``mode='kl'`` maintains Problem 1 (paths of length exactly ``l``);
    ``mode='normalized'`` maintains Problem 2 (length >= ``lmin``,
    score weight/length).  ``l`` is interpreted accordingly.  ``store``
    may be any :class:`~repro.storage.StateStore` backend for the
    per-node state; both modes honour it, and stored state is evicted
    with the sliding window (``evict=False`` keeps every interval, the
    batch Algorithm-2 behaviour).  Disk-backed stores are additionally
    compacted once their dead bytes pass *compact_garbage_bytes*
    (``None`` disables), so the state *file* stays bounded too, not
    just the key count.
    """

    def __init__(self, l: int, k: int, gap: int = 0,
                 mode: str = "kl",
                 store: Optional[StateStore] = None,
                 evict: bool = True,
                 compact_garbage_bytes: Optional[int] =
                 STREAM_COMPACT_GARBAGE_BYTES) -> None:
        if mode not in ("kl", "normalized"):
            raise ValueError(
                f"mode must be 'kl' or 'normalized', got {mode!r}")
        self.mode = mode
        self.gap = gap
        self.compact_garbage_bytes = compact_garbage_bytes
        if mode == "kl":
            self._engine = BFSEngine(l=l, k=k, gap=gap, store=store,
                                     evict_store=evict)
        else:
            self._engine = NormalizedBFSEngine(lmin=l, k=k, gap=gap,
                                               store=store,
                                               evict_store=evict)
        self._next_interval = 0
        self._interval_sizes: List[int] = []

    @classmethod
    def from_query(cls, query,
                   store: Optional[StateStore] = None
                   ) -> "StreamingStableClusters":
        """Build a streaming maintainer for a
        :class:`~repro.engine.StableQuery` (full-path queries cannot
        stream — the target length must be known up front)."""
        return cls(l=query.streaming_length(), k=query.k,
                   gap=query.gap, mode=query.problem, store=store)

    # ------------------------------------------------------------------
    # Feeding the stream
    # ------------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        """Intervals consumed so far."""
        return self._next_interval

    def add_interval(self, num_clusters: int,
                     edges: Sequence[Tuple[NodeId, int, float]]
                     ) -> List[NodeId]:
        """Append one interval with *num_clusters* clusters.

        ``edges`` are ``(parent_node, local_index, weight)`` where
        ``parent_node`` is a node id returned for one of the previous
        ``gap + 1`` intervals and ``local_index`` indexes this
        interval's new clusters.  Weights follow the batch graph's
        semantics — ``(0, 1]`` up to float slop, clamped to 1.0 —
        so a streamed graph and a batch-built one are identical.
        Returns the new node ids.
        """
        interval = self._next_interval
        nodes = [(interval, j) for j in range(num_clusters)]
        incoming: Dict[NodeId, List[Tuple[NodeId, float]]] = {
            node: [] for node in nodes}
        for parent, local_index, weight in edges:
            if not 0 <= local_index < num_clusters:
                raise ValueError(
                    f"edge targets cluster {local_index}, interval has "
                    f"{num_clusters}")
            length = interval - parent[0]
            if not 1 <= length <= self.gap + 1:
                raise ValueError(
                    f"parent {parent} is {length} intervals back; the "
                    f"gap policy allows 1..{self.gap + 1}")
            if not 0.0 < weight <= 1.0 + EPSILON:
                raise ValueError(
                    f"affinity weight must be in (0, 1], got {weight}")
            incoming[(interval, local_index)].append(
                (parent, min(weight, 1.0)))
        self._engine.process_interval(
            interval, [(node, incoming[node]) for node in nodes])
        self._maybe_compact_store()
        self._interval_sizes.append(num_clusters)
        self._next_interval += 1
        return nodes

    def _maybe_compact_store(self) -> None:
        """Compact a disk-backed store once evicted records have left
        enough dead bytes behind (no-op for stores without a
        garbage/compact surface, e.g. MemoryStore; a backstop for
        sharded stores not configured to self-compact)."""
        store = self._engine.store
        if store is None or self.compact_garbage_bytes is None:
            return
        garbage = getattr(store, "garbage_bytes", None)
        compact = getattr(store, "compact", None)
        if garbage is not None and compact is not None \
                and garbage > self.compact_garbage_bytes:
            compact()

    # ------------------------------------------------------------------
    # Reading results
    # ------------------------------------------------------------------

    def top_k(self) -> List[Path]:
        """Current top-k paths, best first."""
        return self._engine.results()

    @property
    def stats(self):
        """The underlying engine's work counters."""
        return self._engine.stats


class StreamingAffinityPipeline:
    """Streams *keyword clusters* instead of pre-built edges.

    Wraps :class:`StreamingStableClusters`, computing affinity edges
    against the clusters of the previous ``gap + 1`` intervals with the
    supplied measure and threshold θ (Section 4.1's construction,
    applied online).  Cluster objects must expose ``keywords``.  The
    comparison uses the same inverted-keyword-index candidate join as
    the batch graph builder once interval sizes warrant it
    (:func:`~repro.affinity.window_affinity_edges`), not an all-pairs
    loop, and the same weight semantics — edges above θ, weights in
    ``(0, 1]``; an unbounded measure raises instead of being silently
    clamped.  ``store`` is forwarded to the underlying maintainer.
    ``executor`` (a :class:`~repro.parallel.Executor`; not owned, the
    caller closes it) partitions the engaged join by index token
    across its workers — edges are executor-invariant.
    """

    def __init__(self, l: int, k: int, gap: int = 0,
                 affinity: Optional[Callable] = None,
                 theta: float = 0.1,
                 mode: str = "kl",
                 store: Optional[StateStore] = None,
                 use_simjoin: Optional[bool] = None,
                 simjoin_cutoff: int = STREAM_SIMJOIN_CUTOFF,
                 executor=None) -> None:
        from repro.affinity import jaccard
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self.affinity = affinity if affinity is not None else jaccard
        self.theta = theta
        self.use_simjoin = use_simjoin
        self.simjoin_cutoff = simjoin_cutoff
        self.executor = executor
        self.stream = StreamingStableClusters(l=l, k=k, gap=gap,
                                              mode=mode, store=store)
        self.last_num_edges = 0
        # Token frequencies of the window join, maintained across
        # ingests (per-interval deltas instead of full recounts), and
        # the two-level filter's running candidate/verified counters.
        self.frequency_tracker = WindowFrequencyTracker()
        self.join_stats = JoinStats()
        self._recent: List[Tuple[List[NodeId], List]] = []  # per interval

    def add_interval(self, clusters: Sequence) -> List[NodeId]:
        """Append one interval's keyword clusters; affinity edges to
        the recent window are computed here."""
        edges = window_affinity_edges(
            self._recent, clusters, measure=self.affinity,
            theta=self.theta, use_simjoin=self.use_simjoin,
            simjoin_cutoff=self.simjoin_cutoff,
            executor=self.executor,
            frequency_tracker=self.frequency_tracker,
            join_stats=self.join_stats)
        self.last_num_edges = len(edges)
        node_ids = self.stream.add_interval(len(clusters), edges)
        self._recent.append((node_ids, list(clusters)))
        if len(self._recent) > self.stream.gap + 1:
            self._recent.pop(0)
        return node_ids

    def top_k(self) -> List[Path]:
        """Current top-k paths, best first."""
        return self.stream.top_k()

    def cluster_for(self, node: NodeId):
        """The cluster object behind *node*, if still in the recent
        window (older intervals have been evicted — streaming keeps
        only g + 1 of them)."""
        for node_ids, clusters in self._recent:
            if node in node_ids:
                return clusters[node_ids.index(node)]
        return None
