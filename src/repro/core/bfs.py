"""BFS-based kl-stable clusters (Algorithm 2).

One pass over the intervals in temporal order.  Each node ``c_ij`` is
annotated with up to ``l`` bounded heaps ``h^x_ij`` — the top-k paths
of length (temporal span) ``x`` ending at ``c_ij``.  Because a node's
parents live at most ``g + 1`` intervals back, keeping a sliding
window of the last ``g + 1`` intervals of heaps in memory lets every
heap be computed without re-reading older intervals; the global heap
``H`` collects paths of length exactly ``l``.

The special case ``l = m - 1`` (full paths) needs only one heap per
node; the implementation gets this for free by materializing heaps
lazily (a node at interval ``i`` can only ever hold heaps for lengths
``<= i``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.cluster_graph import ClusterGraph
from repro.core.heaps import TopK
from repro.core.paths import NodeId, Path, edge_path
from repro.core.solver_stats import SolverStats
from repro.storage.backends import StateStore

NodeHeaps = Dict[int, TopK]  # path length -> top-k paths of that length


def path_key(path: Path) -> Tuple[float, Tuple[NodeId, ...]]:
    """Problem 1 total order: weight, then nodes for determinism."""
    return (path.weight, path.nodes)


@dataclass
class BFSStats(SolverStats):
    """Work counters for a BFS run (benchmark output)."""

    nodes_processed: int = 0
    edges_processed: int = 0
    paths_generated: int = 0
    window_passes: int = 0


class BFSEngine:
    """Sliding-window BFS over a cluster graph.

    ``store`` may be any :class:`~repro.storage.StateStore` backend
    (e.g. a :class:`~repro.storage.DiskDict` or sharded store); the
    paper's Algorithm 2 saves each node's heaps to disk after
    computing them (line 17), which also enables the streaming mode of
    Section 4.6.  ``evict_store=True`` deletes a node's stored heaps
    when its interval slides out of the ``g + 1`` window, so a
    long-running stream holds state for at most ``g + 1`` intervals
    (batch runs default to keeping every node, preserving the
    Algorithm-2 "saved to disk" artifact).

    ``window_block_nodes`` bounds how many window nodes' heaps are
    consulted per pass.  When the window exceeds the bound, an
    interval is processed in ``ceil(window / bound)`` passes, each
    restricted to one block of parents — the paper's M < Mreq case:
    "this situation is very similar to block-nested loops".  Results
    are identical; only the pass count (``stats.window_passes``)
    changes.
    """

    def __init__(self, l: int, k: int, gap: int,
                 store: Optional[StateStore] = None,
                 window_block_nodes: Optional[int] = None,
                 evict_store: bool = False,
                 stats: Optional[BFSStats] = None) -> None:
        if l < 1:
            raise ValueError(f"l must be >= 1, got {l}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if window_block_nodes is not None and window_block_nodes < 1:
            raise ValueError(
                f"window_block_nodes must be >= 1, "
                f"got {window_block_nodes}")
        self.l = l
        self.k = k
        self.gap = gap
        self.store = store
        self.evict_store = evict_store
        self.window_block_nodes = window_block_nodes
        self.stats = stats if stats is not None else BFSStats()
        self.global_heap: TopK[Path] = TopK(k, key=path_key)
        self._window: Dict[NodeId, NodeHeaps] = {}
        self._window_intervals: Deque[int] = deque()
        self._window_nodes: Dict[int, List[NodeId]] = {}

    # ------------------------------------------------------------------
    # Per-interval step (shared with the streaming version)
    # ------------------------------------------------------------------

    def process_interval(self, interval: int,
                         nodes_with_parents: Sequence[
                             Tuple[NodeId, Sequence[Tuple[NodeId, float]]]]
                         ) -> None:
        """Compute heaps for every node of *interval* and slide the
        window.  Parents must lie within the previous ``gap + 1``
        intervals and have been processed already."""
        interval_nodes: List[NodeId] = []
        heaps_by_node: Dict[NodeId, NodeHeaps] = {
            node: {} for node, _ in nodes_with_parents}

        for block in self._window_blocks():
            self.stats.window_passes += 1
            for node, parent_edges in nodes_with_parents:
                self._accumulate_heaps(heaps_by_node[node], node,
                                       parent_edges, block)

        for node, _ in nodes_with_parents:
            heaps = heaps_by_node[node]
            self._window[node] = heaps
            interval_nodes.append(node)
            self.stats.nodes_processed += 1
            if self.store is not None:
                self.store[node] = {x: heap.items()
                                    for x, heap in heaps.items()}
        self._window_intervals.append(interval)
        self._window_nodes[interval] = interval_nodes
        while (self._window_intervals
               and self._window_intervals[0] < interval - self.gap):
            expired = self._window_intervals.popleft()
            for node in self._window_nodes.pop(expired, []):
                self._window.pop(node, None)
                if self.store is not None and self.evict_store:
                    del self.store[node]

    def _window_blocks(self):
        """Partition the current window's nodes into memory-sized
        blocks (a single unrestricted block when unbounded)."""
        if (self.window_block_nodes is None
                or len(self._window) <= self.window_block_nodes):
            yield None
            return
        nodes = list(self._window)
        for start in range(0, len(nodes), self.window_block_nodes):
            yield frozenset(nodes[start:start + self.window_block_nodes])

    def _accumulate_heaps(self, heaps: NodeHeaps, node: NodeId,
                          parent_edges: Sequence[Tuple[NodeId, float]],
                          block) -> None:
        for parent, weight in parent_edges:
            if block is not None and parent not in block:
                continue
            length = node[0] - parent[0]
            if length > self.l:
                continue
            self.stats.edges_processed += 1
            self._offer(heaps, edge_path(parent, node, weight), length)
            for x, parent_heap in self._window.get(parent, {}).items():
                total = x + length
                if total > self.l:
                    continue
                for path in parent_heap.items():
                    self._offer(heaps, path.append(node, weight), total)

    def _offer(self, heaps: NodeHeaps, path: Path, length: int) -> None:
        heap = heaps.get(length)
        if heap is None:
            heap = heaps[length] = TopK(self.k, key=path_key)
        heap.check(path)
        if length == self.l:
            self.global_heap.check(path)
        self.stats.paths_generated += 1

    # ------------------------------------------------------------------
    # Results and introspection
    # ------------------------------------------------------------------

    def results(self) -> List[Path]:
        """Current top-k paths of length exactly l, best first."""
        return self.global_heap.items()

    def window_heap_count(self) -> int:
        """Heaps currently resident in the window (memory benchmark)."""
        return sum(len(heaps) for heaps in self._window.values())

    def window_path_count(self) -> int:
        """Paths currently retained across the window's heaps."""
        return sum(len(heap) for heaps in self._window.values()
                   for heap in heaps.values())


def bfs_stable_clusters(graph: ClusterGraph, l: int, k: int,
                        store: Optional[StateStore] = None,
                        window_block_nodes: Optional[int] = None,
                        stats: Optional[BFSStats] = None) -> List[Path]:
    """Top-k paths of length exactly *l*, best first (Problem 1)."""
    if l > graph.num_intervals - 1:
        return []
    engine = BFSEngine(l=l, k=k, gap=graph.gap, store=store,
                       window_block_nodes=window_block_nodes,
                       stats=stats)
    for i in range(graph.num_intervals):
        engine.process_interval(
            i, [(node, graph.parents(node)) for node in graph.nodes_at(i)])
    return engine.results()
