"""Diversified top-k variants of the kl-stable clusters problem.

Section 4: "the top-k paths produced may share common subpaths which,
depending on the context, may not be very informative from an
information discovery perspective.  Variants of the kl-stable cluster
problem with additional constraints are possible to discard paths with
the same prefix or suffix."

This module implements those variants as a rank-preserving greedy
filter over a candidate pool: fetch the top ``pool_factor * k`` paths
with the ordinary solver, then select greedily in rank order, skipping
any path that conflicts with an already-selected one under the chosen
policy:

* ``"prefix-suffix"`` (the paper's suggestion) — reject a path that
  shares its first node (prefix) or last node (suffix) with a
  selected path;
* ``"endpoints"`` — reject only when *both* endpoints are shared;
* ``"node-disjoint"`` — reject any path touching a selected node
  (the strongest notion: one path per story).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.core.bfs import bfs_stable_clusters
from repro.core.cluster_graph import ClusterGraph
from repro.core.paths import Path

POLICIES = ("prefix-suffix", "endpoints", "node-disjoint")


def _conflicts(candidate: Path, selected: Sequence[Path],
               policy: str) -> bool:
    for chosen in selected:
        if policy == "prefix-suffix":
            if (candidate.start == chosen.start
                    or candidate.end == chosen.end):
                return True
        elif policy == "endpoints":
            if (candidate.start == chosen.start
                    and candidate.end == chosen.end):
                return True
        else:  # node-disjoint
            if set(candidate.nodes) & set(chosen.nodes):
                return True
    return False


def diversify_paths(paths: Sequence[Path], k: int,
                    policy: str = "prefix-suffix") -> List[Path]:
    """Greedy rank-order selection of at most *k* non-conflicting
    paths from an already-ranked candidate list."""
    if policy not in POLICIES:
        raise ValueError(
            f"policy must be one of {POLICIES}, got {policy!r}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    selected: List[Path] = []
    for path in paths:
        if len(selected) >= k:
            break
        if not _conflicts(path, selected, policy):
            selected.append(path)
    return selected


def diverse_stable_clusters(graph: ClusterGraph, l: int, k: int,
                            policy: str = "prefix-suffix",
                            pool_factor: int = 10,
                            solver: Callable = bfs_stable_clusters
                            ) -> List[Path]:
    """Top-k *diverse* paths of length exactly l.

    The candidate pool is the ordinary top ``pool_factor * k``; a
    larger factor trades work for a better-populated diverse set (the
    greedy filter cannot select what the pool never contained).
    """
    if pool_factor < 1:
        raise ValueError(
            f"pool_factor must be >= 1, got {pool_factor}")
    pool = solver(graph, l=l, k=pool_factor * k)
    return diversify_paths(pool, k, policy=policy)
