"""DFS-based kl-stable clusters (Algorithm 3).

A depth-first traversal from a virtual source whose children are every
node that could *start* a path of length ``l`` (for full paths,
``l = m - 1``, exactly the first interval — the paper's source).  Each
node carries, on disk:

* a ``visited`` flag — set means the node's subtree has been fully
  considered and its ``bestpaths`` may be reused (memoization);
* ``maxweight[x]`` — the weight of the heaviest known path of length
  ``x`` *ending* at the node (pruning bound);
* ``bestpaths[x]`` — top-k paths of length ``x`` *starting* at the
  node (note the direction flip versus the BFS heaps).

Pruning (``CanPrune``): with ``min-k`` the weight of the k-th best
length-``l`` path so far, a freshly pushed node is abandoned when
every known prefix of length ``x`` satisfies
``maxweight[x] + (l - x) < min-k`` — the remaining length can add at
most ``l - x`` because edge weights are in (0, 1].  Abandoning a node
unmarks the visited flag of everything on the stack (their subtrees
are no longer fully explored); a later, heavier arrival re-explores.

Two correctness refinements over the paper's pseudocode (documented in
docs/architecture.md):

* a node that could still be the *first* node of a top-k path (i.e.
  ``interval + l <= last interval``) is never pruned — the paper's
  bound only covers paths entering the node from a prefix;
* a pruned pop still merges the node's current ``bestpaths`` (and the
  entering edge) into its parent, so paths *ending* at the pruned node
  are not lost.

The stack never holds more than one frame per interval plus the
source, honouring the paper's O(m) memory claim; all other state lives
in the node store (a DiskDict in I/O-accounted runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.cluster_graph import ClusterGraph
from repro.core.heaps import TopK
from repro.core.paths import NodeId, Path, edge_path
from repro.core.bfs import path_key
from repro.core.solver_stats import SolverStats
from repro.storage.backends import StateStore

SOURCE: NodeId = (-1, -1)


@dataclass
class NodeAnnotation:
    """Per-node on-disk state of Algorithm 3."""

    visited: bool = False
    maxweight: Dict[int, float] = field(default_factory=dict)
    bestpaths: Dict[int, List[Path]] = field(default_factory=dict)


@dataclass
class DFSStats(SolverStats):
    """Work/I-O counters for a DFS run (benchmark output)."""

    pushes: int = 0
    pops: int = 0
    prunes: int = 0
    merges: int = 0
    node_reads: int = 0
    node_writes: int = 0


@dataclass
class _Frame:
    node: NodeId
    annotation: NodeAnnotation
    children: List[Tuple[NodeId, float]]
    next_child: int = 0
    entry_weight: float = 0.0  # weight of the edge the DFS arrived by


class DFSEngine:
    """Depth-first kl-stable cluster search over a cluster graph."""

    def __init__(self, graph: ClusterGraph, l: int, k: int,
                 store: Optional[StateStore] = None,
                 prune: bool = True,
                 stats: Optional[DFSStats] = None) -> None:
        if l < 1:
            raise ValueError(f"l must be >= 1, got {l}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.graph = graph
        self.l = l
        self.k = k
        self.prune = prune
        self.stats = stats if stats is not None else DFSStats()
        self.global_heap: TopK[Path] = TopK(k, key=path_key)
        self._store: Union[StateStore, dict]
        self._store = store if store is not None else {}
        self._last_interval = graph.num_intervals - 1

    # ------------------------------------------------------------------
    # Node store access (one random I/O per read/write when disk-backed)
    # ------------------------------------------------------------------

    def _read(self, node: NodeId) -> NodeAnnotation:
        self.stats.node_reads += 1
        annotation = self._store.get(node)
        return annotation if annotation is not None else NodeAnnotation()

    def _write(self, node: NodeId, annotation: NodeAnnotation) -> None:
        self.stats.node_writes += 1
        self._store[node] = annotation

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> List[Path]:
        """Execute the search; returns top-k length-l paths, best first."""
        if self.l > self._last_interval:
            return []
        source_frame = _Frame(
            node=SOURCE, annotation=NodeAnnotation(),
            children=self._source_children())
        stack: List[_Frame] = [source_frame]

        while stack:
            frame = stack[-1]
            if frame.next_child < len(frame.children):
                child, weight = frame.children[frame.next_child]
                frame.next_child += 1
                self._consider_child(stack, frame, child, weight)
            else:
                self._pop(stack)
        return self.global_heap.items()

    def _source_children(self) -> List[Tuple[NodeId, float]]:
        """Every node that can start a length-l path, earliest first."""
        children: List[Tuple[NodeId, float]] = []
        for interval in range(self._last_interval - self.l + 1):
            for node in self.graph.nodes_at(interval):
                children.append((node, 0.0))
        return children

    def _consider_child(self, stack: List[_Frame], frame: _Frame,
                        child: NodeId, weight: float) -> None:
        annotation = self._read(child)
        if annotation.visited:
            # Memoized subtree: propagate its bestpaths into the parent.
            if frame.node != SOURCE:
                self._merge_into(frame, child, weight, annotation)
            return
        # Fresh (or previously unmarked) node: push and explore.
        annotation.visited = True
        if frame.node != SOURCE:
            self._update_maxweight(frame, child, weight, annotation)
        child_frame = _Frame(node=child, annotation=annotation,
                             children=list(self.graph.children(child)),
                             entry_weight=weight)
        stack.append(child_frame)
        self.stats.pushes += 1
        if self.prune and self._can_prune(child, annotation):
            self.stats.prunes += 1
            # Nothing below this node can reach the top-k right now:
            # postpone its subtree until a heavier prefix arrives.
            for pending in stack:
                pending.annotation.visited = False
            self._pop(stack)

    def _update_maxweight(self, frame: _Frame, child: NodeId,
                          weight: float,
                          annotation: NodeAnnotation) -> None:
        length = child[0] - frame.node[0]
        self._raise_maxweight(annotation, length, weight)
        for x, best in frame.annotation.maxweight.items():
            total = x + length
            if total <= self.l:
                self._raise_maxweight(annotation, total, best + weight)

    @staticmethod
    def _raise_maxweight(annotation: NodeAnnotation, length: int,
                         weight: float) -> None:
        current = annotation.maxweight.get(length)
        if current is None or weight > current:
            annotation.maxweight[length] = weight

    def _can_prune(self, node: NodeId, annotation: NodeAnnotation) -> bool:
        min_key = self.global_heap.min_key()
        if min_key is None:
            return False
        min_weight = min_key[0]
        interval = node[0]
        if interval + self.l <= self._last_interval:
            # A top-k path could *start* here; its weight is bounded
            # only by l, which always reaches min-k (weights are <= 1
            # per unit length).  Never prune such a node.
            return False
        for x, best in annotation.maxweight.items():
            if x >= self.l:
                continue
            if best + (self.l - x) >= min_weight:
                return False
        return True

    def _pop(self, stack: List[_Frame]) -> None:
        frame = stack.pop()
        if frame.node == SOURCE:
            return
        self.stats.pops += 1
        self._write(frame.node, frame.annotation)
        parent = stack[-1]
        if parent.node != SOURCE:
            self._merge_into(parent, frame.node, frame.entry_weight,
                             frame.annotation)

    def _merge_into(self, frame: _Frame, child: NodeId, weight: float,
                    child_annotation: NodeAnnotation) -> None:
        """Extend the child's suffix paths backward into the parent
        (paper: "update bestpaths(c) using info from c'")."""
        self.stats.merges += 1
        length = child[0] - frame.node[0]
        if length > self.l:
            return
        self._offer_bestpath(frame.annotation,
                             edge_path(frame.node, child, weight), length)
        for x, paths in child_annotation.bestpaths.items():
            total = x + length
            if total > self.l:
                continue
            for path in paths:
                self._offer_bestpath(frame.annotation,
                                     path.prepend(frame.node, weight),
                                     total)

    def _offer_bestpath(self, annotation: NodeAnnotation, path: Path,
                        length: int) -> None:
        paths = annotation.bestpaths.setdefault(length, [])
        if path in paths:
            return
        self._insort_bounded(paths, path)
        if length == self.l:
            self.global_heap.check(path)

    def _insort_bounded(self, paths: List[Path], path: Path) -> None:
        """Insert *path* into the descending-by-key list *paths*,
        keeping at most k entries — O(log k) compares and one O(k)
        list shift, versus the naive append+sort's O(k log k)."""
        key = path_key(path)
        lo, hi = 0, len(paths)
        while lo < hi:
            mid = (lo + hi) // 2
            if path_key(paths[mid]) > key:
                lo = mid + 1
            else:
                hi = mid
        if lo >= self.k:
            return
        paths.insert(lo, path)
        del paths[self.k:]


def dfs_stable_clusters(graph: ClusterGraph, l: int, k: int,
                        store: Optional[StateStore] = None,
                        prune: bool = True,
                        stats: Optional[DFSStats] = None) -> List[Path]:
    """Top-k paths of length exactly *l*, best first (Problem 1)."""
    engine = DFSEngine(graph, l=l, k=k, store=store, prune=prune,
                       stats=stats)
    return engine.run()
