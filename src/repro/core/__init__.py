"""The paper's primary contribution: stable keyword clusters.

Problem 1 (kl-stable clusters): top-k paths of length exactly l in the
cluster graph, by total affinity weight.  Problem 2 (normalized):
top-k paths of length >= lmin by weight/length.  Solvers: BFS
(Algorithm 2), DFS (Algorithm 3), a Threshold Algorithm adaptation
(full paths only), exact brute force (test oracle), and streaming
front ends (Section 4.6).
"""

from repro.core.bfs import BFSEngine, BFSStats, bfs_stable_clusters
from repro.core.bruteforce import (
    bruteforce_normalized,
    bruteforce_topk,
    count_paths,
    enumerate_paths,
)
from repro.core.cluster_graph import ClusterGraph, ClusterGraphBuilder
from repro.core.dfs import DFSEngine, DFSStats, dfs_stable_clusters
from repro.core.diversify import diverse_stable_clusters, diversify_paths
from repro.core.heaps import TopK
from repro.core.normalized import (
    NormalizedBFSEngine,
    NormalizedStats,
    normalized_stable_clusters,
)
from repro.core.online import (
    StreamingAffinityPipeline,
    StreamingStableClusters,
)
from repro.core.paths import NodeId, Path, edge_path
from repro.core.solver_stats import SolverStats
from repro.core.stability import build_cluster_graph
from repro.core.ta import TAEngine, TAStats, ta_stable_clusters

__all__ = [
    "BFSEngine",
    "BFSStats",
    "ClusterGraph",
    "ClusterGraphBuilder",
    "DFSEngine",
    "DFSStats",
    "NodeId",
    "NormalizedBFSEngine",
    "NormalizedStats",
    "Path",
    "SolverStats",
    "StreamingAffinityPipeline",
    "StreamingStableClusters",
    "TAEngine",
    "TAStats",
    "TopK",
    "bfs_stable_clusters",
    "bruteforce_normalized",
    "bruteforce_topk",
    "build_cluster_graph",
    "count_paths",
    "dfs_stable_clusters",
    "diverse_stable_clusters",
    "diversify_paths",
    "edge_path",
    "enumerate_paths",
    "normalized_stable_clusters",
    "ta_stable_clusters",
]
