"""Paths in the cluster graph.

A node of the cluster graph is identified by ``(interval, index)`` —
the paper's :math:`c_{ij}`.  A path is a tuple of nodes with strictly
increasing intervals; its **length** is the temporal span (sum of edge
lengths, where an edge over a gap counts the skipped intervals — "the
length of an edge over a single gap of length g is considered to be
g + 1"), and its **weight** is the sum of edge affinities.

Paths order by ``(weight, nodes)``: weight first, node tuple as a
deterministic tie break.  That makes top-k sets unique, which lets the
BFS, DFS, TA and brute-force implementations be compared for exact
equality in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

NodeId = Tuple[int, int]


@dataclass(frozen=True, order=True)
class Path:
    """An immutable weighted path (ordering: weight, then nodes)."""

    weight: float
    nodes: Tuple[NodeId, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ValueError(
                f"a path needs at least two nodes, got {self.nodes!r}")
        intervals = [interval for interval, _ in self.nodes]
        if any(a >= b for a, b in zip(intervals, intervals[1:])):
            raise ValueError(
                f"path intervals must strictly increase, got {intervals}")

    @property
    def length(self) -> int:
        """Temporal span: last interval minus first interval."""
        return self.nodes[-1][0] - self.nodes[0][0]

    @property
    def num_edges(self) -> int:
        """Number of edges (at most ``length``; fewer only never —
        gaps make edges longer, not more numerous)."""
        return len(self.nodes) - 1

    @property
    def stability(self) -> float:
        """Normalized weight: weight / length (Problem 2's score)."""
        return self.weight / self.length

    @property
    def start(self) -> NodeId:
        """First node."""
        return self.nodes[0]

    @property
    def end(self) -> NodeId:
        """Last node."""
        return self.nodes[-1]

    def append(self, node: NodeId, edge_weight: float) -> "Path":
        """Path extended forward by one edge (paper's ``append``)."""
        return Path(weight=self.weight + edge_weight,
                    nodes=self.nodes + (node,))

    def prepend(self, node: NodeId, edge_weight: float) -> "Path":
        """Path extended backward by one edge (DFS builds suffixes)."""
        return Path(weight=self.weight + edge_weight,
                    nodes=(node,) + self.nodes)

    def is_suffix_of(self, other: "Path") -> bool:
        """True when this path's nodes are a suffix of *other*'s."""
        n = len(self.nodes)
        return n <= len(other.nodes) and other.nodes[-n:] == self.nodes

    def __str__(self) -> str:
        chain = "-".join(f"c{i}.{j}" for i, j in self.nodes)
        return f"{chain} (w={self.weight:.3f}, len={self.length})"


def edge_path(u: NodeId, v: NodeId, weight: float) -> Path:
    """The single-edge path ``u -> v``."""
    return Path(weight=weight, nodes=(u, v))
