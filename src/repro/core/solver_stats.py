"""Unified solver statistics protocol.

Every solver historically carried its own ad-hoc counter dataclass
(``BFSStats``, ``DFSStats``, ``TAStats``, ``NormalizedStats``) with no
shared surface, so benchmarks and the CLI had to special-case each
solver to report work done.  ``SolverStats`` is the common base: any
dataclass of integer counters inheriting from it gains a uniform
``counters()`` mapping, a one-line ``summary()`` and a ``reset()``,
which is what the engine layer (``repro.engine``) and ``bench-graph``
report for every solver without knowing which one ran.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict


@dataclass
class SolverStats:
    """Base class for per-solver work counters.

    Subclasses declare integer dataclass fields; this base turns them
    into a uniform reporting surface.  An instance with no fields (the
    base itself) is a valid, empty stats object, which lets generic
    code always hold *some* stats without None checks.
    """

    def counters(self) -> Dict[str, int]:
        """All integer counter fields as an ordered name -> value map."""
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)
                if not f.name.startswith("_")}

    def summary(self) -> str:
        """One-line ``name=value`` rendering for benchmark output."""
        counters = self.counters()
        if not counters:
            return "(no counters)"
        return " ".join(f"{name}={value}"
                        for name, value in counters.items())

    def reset(self) -> None:
        """Zero every counter field."""
        for f in dataclasses.fields(self):
            if not f.name.startswith("_"):
                setattr(self, f.name, 0)
