"""The cluster graph G of Section 4.1.

Nodes are per-interval keyword clusters, identified by
``(interval, index)``; an edge connects clusters of intervals ``i < j``
with ``j - i <= g + 1`` (gap ``g``) whose affinity exceeds the
threshold.  Edge *length* is ``j - i``; edge *weight* is the affinity,
required to lie in ``(0, 1]`` (the DFS pruning bound and the TA
threshold depend on it — "normalization is required for others, e.g.,
intersect", handled by :meth:`ClusterGraphBuilder.build`).

Conceptually edges are undirected; the algorithms orient them forward
in time, with a virtual source before the first interval and sink
after the last (both contributing zero length and weight).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence, Tuple

from repro.core.paths import NodeId

EPSILON = 1e-12


class ClusterGraph:
    """Temporal cluster graph with gap-bounded forward edges."""

    def __init__(self, num_intervals: int, gap: int = 0) -> None:
        if num_intervals < 1:
            raise ValueError(
                f"need at least one interval, got {num_intervals}")
        if gap < 0:
            raise ValueError(f"gap must be >= 0, got {gap}")
        self.num_intervals = num_intervals
        self.gap = gap
        self._interval_nodes: List[List[NodeId]] = [
            [] for _ in range(num_intervals)]
        self._children: Dict[NodeId, List[Tuple[NodeId, float]]] = {}
        self._parents: Dict[NodeId, List[Tuple[NodeId, float]]] = {}
        self._payloads: Dict[NodeId, Any] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, interval: int, payload: Any = None) -> NodeId:
        """Create a node in *interval*; returns its ``(interval, index)``."""
        if not 0 <= interval < self.num_intervals:
            raise ValueError(
                f"interval {interval} out of range [0, {self.num_intervals})")
        index = len(self._interval_nodes[interval])
        node = (interval, index)
        self._interval_nodes[interval].append(node)
        self._children[node] = []
        self._parents[node] = []
        if payload is not None:
            self._payloads[node] = payload
        return node

    def add_edge(self, a: NodeId, b: NodeId, weight: float) -> None:
        """Connect two clusters; *a* must precede *b* temporally."""
        if a not in self._children or b not in self._children:
            raise KeyError(f"unknown node in edge ({a}, {b})")
        length = b[0] - a[0]
        if length <= 0:
            raise ValueError(
                f"edge must go forward in time: {a} -> {b}")
        if length > self.gap + 1:
            raise ValueError(
                f"edge {a} -> {b} spans {length} intervals, which "
                f"exceeds the gap bound g + 1 = {self.gap + 1}")
        if not 0.0 < weight <= 1.0 + EPSILON:
            raise ValueError(
                f"edge weight must be in (0, 1], got {weight}")
        self._children[a].append((b, min(weight, 1.0)))
        self._parents[b].append((a, min(weight, 1.0)))
        self._num_edges += 1

    def sort_children_by_weight(self) -> None:
        """Order every child list by descending edge weight — the DFS
        heuristic of Section 4.3 ("children connected with edges of
        high weight are considered first")."""
        for node, children in self._children.items():
            children.sort(key=lambda edge: (-edge[1], edge[0]))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total clusters across all intervals."""
        return sum(len(nodes) for nodes in self._interval_nodes)

    @property
    def num_edges(self) -> int:
        """Total affinity edges."""
        return self._num_edges

    def interval_size(self, interval: int) -> int:
        """T_i: number of clusters in *interval*."""
        return len(self._interval_nodes[interval])

    def nodes_at(self, interval: int) -> Sequence[NodeId]:
        """Nodes of one interval."""
        return self._interval_nodes[interval]

    def nodes(self) -> Iterator[NodeId]:
        """All nodes, interval by interval."""
        for interval_nodes in self._interval_nodes:
            yield from interval_nodes

    def children(self, node: NodeId) -> List[Tuple[NodeId, float]]:
        """Outgoing ``(child, weight)`` edges of *node*."""
        return self._children[node]

    def parents(self, node: NodeId) -> List[Tuple[NodeId, float]]:
        """Incoming ``(parent, weight)`` edges of *node*."""
        return self._parents[node]

    def payload(self, node: NodeId) -> Any:
        """The cluster object attached to *node* (None if absent)."""
        return self._payloads.get(node)

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, float]]:
        """All edges as ``(parent, child, weight)``."""
        for node, children in self._children.items():
            for child, weight in children:
                yield (node, child, weight)

    def max_out_degree(self) -> int:
        """d: the largest number of children of any node."""
        if not self._children:
            return 0
        return max(len(children) for children in self._children.values())

    def __repr__(self) -> str:
        return (f"ClusterGraph(m={self.num_intervals}, g={self.gap}, "
                f"nodes={self.num_nodes}, edges={self.num_edges})")


class ClusterGraphBuilder:
    """Accumulates raw affinity edges, then normalizes weights to (0, 1].

    Affinity functions like intersection size are unbounded; "the
    maximum score seen so far can be maintained to normalize all
    weights to the range (0, 1]" (Section 4.1).  The builder collects
    edges, divides by the maximum when asked, and emits the graph.
    """

    def __init__(self, num_intervals: int, gap: int = 0) -> None:
        self.graph = ClusterGraph(num_intervals, gap=gap)
        self._raw_edges: List[Tuple[NodeId, NodeId, float]] = []

    def add_node(self, interval: int, payload: Any = None) -> NodeId:
        """Forwarded to the underlying graph."""
        return self.graph.add_node(interval, payload=payload)

    def add_edge(self, a: NodeId, b: NodeId, raw_weight: float) -> None:
        """Record an edge with an arbitrary positive raw affinity."""
        if raw_weight <= 0:
            raise ValueError(
                f"raw affinity must be positive, got {raw_weight}")
        self._raw_edges.append((a, b, raw_weight))

    def build(self, normalize: bool = True,
              sort_children: bool = True) -> ClusterGraph:
        """Materialize all edges; with *normalize* divide by the max."""
        scale = 1.0
        if normalize and self._raw_edges:
            max_weight = max(weight for _, _, weight in self._raw_edges)
            if max_weight > 1.0:
                scale = 1.0 / max_weight
        for a, b, weight in self._raw_edges:
            self.graph.add_edge(a, b, weight * scale)
        if sort_children:
            self.graph.sort_children_by_weight()
        return self.graph
