"""Bounded top-k heaps over paths (the paper's "check" operation).

``TopK`` keeps the k best items under a total order.  For paths the
order is ``(weight, nodes)`` — or ``(stability, nodes)`` for the
normalized problem via the ``key`` parameter — so the retained set is
unique and algorithm outputs are exactly comparable.
"""

from __future__ import annotations

import heapq
from typing import (
    Callable,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    TypeVar,
)

T = TypeVar("T")


class TopK(Generic[T]):
    """A fixed-capacity max-set maintained as a min-heap.

    :meth:`check` is the paper's check operation: the candidate enters
    iff it beats the current minimum (or the heap is not yet full).
    """

    def __init__(self, k: int,
                 key: Optional[Callable[[T], object]] = None) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._key = key if key is not None else (lambda item: item)
        self._heap: List = []
        self._members: set = set()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        """True once k items are retained."""
        return len(self._heap) >= self.k

    def check(self, item: T) -> bool:
        """Offer *item*; returns True when it was retained.

        Items must be hashable; re-offering a retained item is a no-op
        (the DFS algorithm can regenerate a path after a pruning pass
        unmarks part of the stack).
        """
        if item in self._members:
            return False
        entry = (self._key(item), item)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            self._members.add(item)
            return True
        if entry <= self._heap[0]:
            return False
        _, evicted = heapq.heapreplace(self._heap, entry)
        self._members.discard(evicted)
        self._members.add(item)
        return True

    def extend(self, items: Iterable[T]) -> None:
        """Offer every item of *items*."""
        for item in items:
            self.check(item)

    def min_key(self):
        """Smallest retained key, or ``None`` when not yet full.

        The DFS pruning bound (min-k) must treat a non-full heap as
        unboundedly accepting, so callers get ``None`` rather than the
        current minimum in that case.
        """
        if not self.is_full:
            return None
        return self._heap[0][0]

    def items(self) -> List[T]:
        """Retained items, best first."""
        return [item for _, item in
                sorted(self._heap, key=lambda e: e[0], reverse=True)]

    def __iter__(self) -> Iterator[T]:
        return iter(self.items())

    def __contains__(self, item: T) -> bool:
        return item in self._members

    def __repr__(self) -> str:
        return f"TopK(k={self.k}, size={len(self._heap)})"
