"""Threshold-Algorithm adaptation for full stable paths (Section 4.4).

For every interval pair ``(i, j)`` with ``j - i <= g + 1`` a list of
edges sorted by descending weight is maintained (sorted access).
Edges are consumed round-robin; each newly seen edge triggers random
probes that enumerate every full path (first interval to last)
containing it — all prefixes ending at its tail times all suffixes
starting at its head.  The scan stops when the k-th best discovered
path is at least the *threshold*: the best weight any undiscovered
path could still achieve, computed by a dynamic program over the
current per-list ceilings (for ``g = 0`` this reduces to Fagin's
classic sum-of-heads virtual tuple).

As the paper observes, the number of random probes can reach
``m^(d-1)``, so the adaptation is only practical for small ``m``; the
``startwts`` / ``endwts`` hash tables (aggregate weight of the best
path starting/ending at a node, filled in as probes complete) bound
whole edges away without I/O and are implemented here as well.

This algorithm only finds *full* paths: ``l`` is fixed to ``m - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.bfs import path_key
from repro.core.cluster_graph import ClusterGraph
from repro.core.heaps import TopK
from repro.core.paths import NodeId, Path
from repro.core.solver_stats import SolverStats

NEG_INF = float("-inf")


@dataclass
class TAStats(SolverStats):
    """Work counters for a TA run (benchmark output)."""

    sorted_accesses: int = 0
    random_probes: int = 0
    paths_enumerated: int = 0
    edges_skipped_by_bounds: int = 0
    rounds: int = 0


@dataclass
class _EdgeList:
    """One sorted edge list for an interval pair."""

    pair: Tuple[int, int]
    edges: List[Tuple[float, NodeId, NodeId]]  # weight-desc
    cursor: int = 0

    @property
    def exhausted(self) -> bool:
        return self.cursor >= len(self.edges)

    @property
    def ceiling(self) -> float:
        """Largest weight an *unseen* edge of this list can have.

        Once exhausted, the last weight keeps bounding paths that use a
        seen edge of this list (classic TA behaviour).
        """
        if not self.edges:
            return NEG_INF
        if self.exhausted:
            return self.edges[-1][0]
        return self.edges[self.cursor][0]


class TAEngine:
    """Threshold-algorithm search for top-k full paths."""

    def __init__(self, graph: ClusterGraph, k: int,
                 stats: Optional[TAStats] = None) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.graph = graph
        self.k = k
        self.stats = stats if stats is not None else TAStats()
        self.global_heap: TopK[Path] = TopK(k, key=path_key)
        self._m = graph.num_intervals
        self._startwts: Dict[NodeId, float] = {}
        self._endwts: Dict[NodeId, float] = {}
        # Canonical per-edge weights: a path found through different
        # seed edges must get bit-identical weight (left-to-right sum)
        # or the top-k heap would retain float-jittered duplicates.
        self._edge_weight: Dict[Tuple[NodeId, NodeId], float] = {}
        self._lists = self._build_lists()

    def _build_lists(self) -> List[_EdgeList]:
        by_pair: Dict[Tuple[int, int], List[Tuple[float, NodeId, NodeId]]]
        by_pair = {}
        for parent, child, weight in self.graph.edges():
            by_pair.setdefault((parent[0], child[0]), []).append(
                (weight, parent, child))
            known = self._edge_weight.get((parent, child))
            if known is None or weight > known:
                self._edge_weight[(parent, child)] = weight
        lists = []
        for pair in sorted(by_pair):
            edges = sorted(by_pair[pair],
                           key=lambda e: (-e[0], e[1], e[2]))
            lists.append(_EdgeList(pair=pair, edges=edges))
        return lists

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> List[Path]:
        """Round-robin over the sorted lists until the threshold test
        certifies the current top-k."""
        if self._m < 2 or not self._lists:
            return []
        while True:
            self.stats.rounds += 1
            progressed = False
            for edge_list in self._lists:
                if edge_list.exhausted:
                    continue
                weight, tail, head = edge_list.edges[edge_list.cursor]
                edge_list.cursor += 1
                self.stats.sorted_accesses += 1
                progressed = True
                self._process_edge(tail, head, weight)
                if self._can_stop():
                    return self.global_heap.items()
            if not progressed:
                # Every list exhausted: all paths have been enumerated.
                return self.global_heap.items()

    def _process_edge(self, tail: NodeId, head: NodeId,
                      weight: float) -> None:
        min_key = self.global_heap.min_key()
        start_bound = self._startwts.get(head)
        end_bound = self._endwts.get(tail)
        if (min_key is not None and start_bound is not None
                and end_bound is not None
                and end_bound + weight + start_bound < min_key[0]):
            # Upper bound already below min-k: skip all probes.
            self.stats.edges_skipped_by_bounds += 1
            return
        prefixes = list(self._paths_ending_at(tail))
        suffixes = list(self._paths_starting_at(head))
        self._endwts[tail] = max((p for p, _ in prefixes), default=NEG_INF)
        self._startwts[head] = max((s for s, _ in suffixes),
                                   default=NEG_INF)
        for prefix_weight, prefix_nodes in prefixes:
            for suffix_weight, suffix_nodes in suffixes:
                nodes = prefix_nodes + suffix_nodes
                total = 0.0
                for a, b in zip(nodes, nodes[1:]):
                    total += self._edge_weight[(a, b)]
                self.stats.paths_enumerated += 1
                self.global_heap.check(Path(weight=total, nodes=nodes))

    # ------------------------------------------------------------------
    # Random probes
    # ------------------------------------------------------------------

    def _paths_ending_at(self, node: NodeId
                         ) -> Iterator[Tuple[float, Tuple[NodeId, ...]]]:
        """All (weight, nodes) of paths from the first interval ending
        at *node* — including the trivial one when *node* is there."""
        if node[0] == 0:
            yield (0.0, (node,))
            return
        for parent, weight in self.graph.parents(node):
            self.stats.random_probes += 1
            for prefix_weight, prefix_nodes in self._paths_ending_at(parent):
                yield (prefix_weight + weight, prefix_nodes + (node,))

    def _paths_starting_at(self, node: NodeId
                           ) -> Iterator[Tuple[float, Tuple[NodeId, ...]]]:
        """All (weight, nodes) of paths from *node* to the last
        interval — including the trivial one when *node* is there."""
        if node[0] == self._m - 1:
            yield (0.0, (node,))
            return
        for child, weight in self.graph.children(node):
            self.stats.random_probes += 1
            for suffix_weight, suffix_nodes in self._paths_starting_at(child):
                yield (suffix_weight + weight, (node,) + suffix_nodes)

    # ------------------------------------------------------------------
    # Threshold
    # ------------------------------------------------------------------

    def _threshold(self) -> float:
        """Best conceivable weight of a not-yet-discovered full path.

        Dynamic program over intervals: the ceiling of list (i, j)
        bounds any unseen edge between those intervals.  For g = 0
        this is exactly the sum of the per-list heads (Fagin's virtual
        tuple); with gaps it is the heaviest head-chain.
        """
        ceilings: Dict[Tuple[int, int], float] = {
            edge_list.pair: edge_list.ceiling for edge_list in self._lists}
        best = [NEG_INF] * self._m
        best[0] = 0.0
        for j in range(1, self._m):
            for i in range(max(0, j - self.graph.gap - 1), j):
                ceiling = ceilings.get((i, j), NEG_INF)
                if best[i] > NEG_INF and ceiling > NEG_INF:
                    candidate = best[i] + ceiling
                    if candidate > best[j]:
                        best[j] = candidate
        return best[self._m - 1]

    def _can_stop(self) -> bool:
        # Strict inequality: an undiscovered path tying min-k could
        # still beat the retained one under the deterministic
        # (weight, nodes) order, so only a strictly larger min-k is a
        # safe certificate.
        min_key = self.global_heap.min_key()
        if min_key is None:
            return False
        return min_key[0] > self._threshold()


def ta_stable_clusters(graph: ClusterGraph, k: int,
                       stats: Optional[TAStats] = None) -> List[Path]:
    """Top-k full paths (length m - 1), best first, via TA."""
    return TAEngine(graph, k=k, stats=stats).run()
