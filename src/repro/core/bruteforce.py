"""Exact brute-force solutions to Problems 1 and 2.

These enumerate every path of the cluster graph and therefore run in
time exponential in the worst case; they exist as the ground-truth
oracle for the BFS, DFS and TA implementations (and for small ad-hoc
analyses).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.cluster_graph import ClusterGraph
from repro.core.heaps import TopK
from repro.core.paths import Path, edge_path


def enumerate_paths(graph: ClusterGraph,
                    min_length: int = 1,
                    max_length: Optional[int] = None) -> Iterator[Path]:
    """Yield every path whose temporal span lies in the given range."""
    if max_length is None:
        max_length = graph.num_intervals - 1
    if min_length < 1:
        raise ValueError(f"min_length must be >= 1, got {min_length}")

    def extend(path: Path) -> Iterator[Path]:
        if min_length <= path.length <= max_length:
            yield path
        if path.length >= max_length:
            return
        for child, weight in graph.children(path.end):
            if path.length + (child[0] - path.end[0]) <= max_length:
                yield from extend(path.append(child, weight))

    for node in graph.nodes():
        for child, weight in graph.children(node):
            yield from extend(edge_path(node, child, weight))


def bruteforce_topk(graph: ClusterGraph, l: int, k: int) -> List[Path]:
    """Problem 1 exactly: top-k paths of length exactly *l* by weight
    (ties broken by node tuple, making the answer unique)."""
    heap: TopK[Path] = TopK(k, key=lambda p: (p.weight, p.nodes))
    for path in enumerate_paths(graph, min_length=l, max_length=l):
        heap.check(path)
    return heap.items()


def bruteforce_normalized(graph: ClusterGraph, lmin: int,
                          k: int) -> List[Path]:
    """Problem 2 exactly: top-k paths of length >= *lmin* by stability
    (weight / length; ties broken by node tuple)."""
    heap: TopK[Path] = TopK(k, key=lambda p: (p.stability, p.nodes))
    for path in enumerate_paths(graph, min_length=lmin):
        heap.check(path)
    return heap.items()


def count_paths(graph: ClusterGraph, l: int) -> int:
    """Number of paths of length exactly *l* (diagnostics for tests)."""
    return sum(1 for _ in enumerate_paths(graph, min_length=l,
                                          max_length=l))
