"""Scatter-gather coordination over a pool of shard workers.

:class:`DistributedQueryService` exposes the same query surface as
:class:`repro.service.ClusterQueryService` — refine, lookup, stable
paths, rendering, refresh, stats — but executes each query as a
scatter-gather: the candidate space is hash-partitioned over worker
processes (:mod:`repro.distributed.partition`), each worker answers
its partial over a :mod:`multiprocessing.connection` pipe, and the
coordinator merges the partials into the exact single-process
answer.  The HTTP tier accepts it wherever it accepts the in-process
service (``serve --shards N``), keeping single-flight batching and
admission control in front of the fan-out.

Straggler and failure handling follows the classic tail-tolerance
recipe: every scatter carries a total deadline; a partial still
outstanding after ``hedge_delay`` seconds is re-sent to the
partition's replica worker (workers are symmetric, so any worker can
answer any partition); a worker whose pipe dies mid-query is
respawned and the outstanding partials re-dispatched.  Duplicate
answers — from hedges or re-sends — are de-duplicated by call id, so
fault handling never changes a merged result, only its latency.

Consistency: the coordinator reads the manifest itself and workers
reopen the index independently, which is safe because segments are
append-only — an interval, once written, is immutable.  ``refresh``
re-checks the manifest and broadcasts to every worker so a live
(streamed) index advances the whole pool together.
"""

import multiprocessing
import threading
import time
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional

from repro.core.paths import Path
from repro.distributed.partition import (
    build_refinement,
    merge_best,
    merge_paths,
    revive_cluster,
)
from repro.distributed.worker import worker_main
from repro.graph.clusters import KeywordCluster
from repro.index.format import load_manifest, shard_for
from repro.pipeline.stable_pipeline import render_path_clusters
from repro.search.refinement import Refinement
from repro.storage.lru import LRUCache
from repro.text.stemmer import stem

# Defaults of the tail-tolerance knobs: a scatter that misses the
# request timeout raises; a partial outstanding past the hedge delay
# is re-sent to the partition's replica worker.
DEFAULT_WORKERS = 2
DEFAULT_REQUEST_TIMEOUT = 10.0
DEFAULT_HEDGE_DELAY = 0.25
DEFAULT_HOT_CACHE = 256
_SPAWN_TIMEOUT = 60.0

_MISSING = object()


class DistributedTimeout(RuntimeError):
    """A scatter-gather query missed its total request deadline."""


class DistributedWorkerError(RuntimeError):
    """A worker failed a partial query (its error, relayed)."""


class _Worker:
    """One live worker process and its pipe, by partition index."""

    __slots__ = ("index", "process", "conn")

    def __init__(self, index, process, conn):
        self.index = index
        self.process = process
        self.conn = conn


class DistributedQueryService:
    """Scatter-gather query execution over shard worker processes.

    Drop-in for :class:`repro.service.ClusterQueryService` from the
    serving tier's point of view, with answers pinned byte-identical
    to it by the test suite.  ``workers`` sets the fan-out width
    (partition count); ``request_timeout`` bounds every scatter;
    ``hedge_delay`` is the straggler budget before a partial is
    re-sent to its replica.  Thread-safe; queries serialize on one
    coordinator lock while the heavy lifting runs in the workers.
    """

    def __init__(self, directory: str,
                 workers: int = DEFAULT_WORKERS, *,
                 cache_size: int = DEFAULT_HOT_CACHE,
                 cluster_cache_size: int = 1024,
                 request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
                 hedge_delay: float = DEFAULT_HEDGE_DELAY) -> None:
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.directory = directory
        self.num_workers = workers
        self.request_timeout = float(request_timeout)
        self.hedge_delay = float(hedge_delay)
        self._cluster_cache_size = cluster_cache_size
        self._manifest = load_manifest(directory)
        self._hot = LRUCache(cache_size)
        self._lock = threading.RLock()
        self._closed = False
        self._call_id = 0
        self._counters = dict.fromkeys(
            ("queries", "scatters", "partial_calls", "hedged_calls",
             "worker_deaths", "respawns", "timeouts",
             "stale_replies"), 0)
        self._workers: List[_Worker] = []
        try:
            for index in range(workers):
                self._workers.append(self._spawn(index))
            self._paths = self._fetch_paths()
        except Exception:
            self._shutdown_workers()
            raise

    # ------------------------------------------------------------------
    # Worker pool plumbing
    # ------------------------------------------------------------------

    def _spawn(self, index: int) -> _Worker:
        parent, child = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=worker_main,
            args=(child, self.directory),
            kwargs={"cluster_cache_size": self._cluster_cache_size},
            name=f"repro-dist-worker-{index}", daemon=True)
        process.start()
        child.close()
        if not parent.poll(_SPAWN_TIMEOUT):
            process.terminate()
            parent.close()
            raise DistributedWorkerError(
                f"worker {index} did not report ready within "
                f"{_SPAWN_TIMEOUT:.0f}s")
        message = parent.recv()
        if message[0] != "ready":
            process.join(timeout=5)
            parent.close()
            raise DistributedWorkerError(
                f"worker {index} failed to open {self.directory!r}: "
                f"{message[1]}")
        return _Worker(index, process, parent)

    def _replace(self, worker: _Worker) -> _Worker:
        """Reap a dead worker and respawn its partition slot."""
        self._counters["worker_deaths"] += 1
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)
        replacement = self._spawn(worker.index)
        self._workers[worker.index] = replacement
        self._counters["respawns"] += 1
        return replacement

    def _send_batch(self, worker: _Worker, calls) -> _Worker:
        """Send a batch; a dead pipe respawns and retries once."""
        try:
            worker.conn.send(("batch", calls))
            return worker
        except (BrokenPipeError, OSError):
            replacement = self._replace(worker)
            replacement.conn.send(("batch", calls))
            return replacement

    def _worker_for(self, conn) -> Optional[_Worker]:
        for worker in self._workers:
            if worker.conn is conn:
                return worker
        return None

    def _next_call_id(self) -> int:
        self._call_id += 1
        return self._call_id

    def _drain(self) -> None:
        """Discard replies left over from hedged/abandoned calls."""
        for worker in self._workers:
            try:
                while worker.conn.poll(0):
                    worker.conn.recv()
                    self._counters["stale_replies"] += 1
            except (EOFError, OSError):
                pass  # death surfaces on the next send to this pipe

    # ------------------------------------------------------------------
    # The scatter-gather core
    # ------------------------------------------------------------------

    def _scatter(self, calls: Dict[int, tuple]) -> Dict[int, Any]:
        """Run one partial call per partition and gather the answers.

        *calls* maps partition -> (method, kwargs).  Returns
        partition -> payload.  Implements the full tail-tolerance
        loop: hedge to replicas after ``hedge_delay``, respawn and
        re-dispatch on worker death, raise on the total deadline.
        """
        self._drain()
        self._counters["scatters"] += 1
        self._counters["partial_calls"] += len(calls)
        pending: Dict[int, tuple] = {}
        per_worker: Dict[int, list] = {}
        for part, (method, kwargs) in calls.items():
            call_id = self._next_call_id()
            pending[call_id] = (part, method, kwargs)
            per_worker.setdefault(part % self.num_workers, []).append(
                (call_id, method, kwargs))
        for index, batch in per_worker.items():
            self._send_batch(self._workers[index], batch)
        results: Dict[int, Any] = {}
        deadline = time.monotonic() + self.request_timeout
        hedge_at = time.monotonic() + self.hedge_delay
        hedged = False
        while pending:
            now = time.monotonic()
            if now >= deadline:
                self._counters["timeouts"] += 1
                raise DistributedTimeout(
                    f"scatter-gather missed its "
                    f"{self.request_timeout:.1f}s deadline with "
                    f"{len(pending)} partial answer(s) outstanding")
            if not hedged and now >= hedge_at:
                hedged = True
                self._hedge(pending)
            wait_until = deadline if hedged \
                else min(hedge_at, deadline)
            ready = mp_connection.wait(
                [worker.conn for worker in self._workers],
                timeout=max(wait_until - now, 0.0))
            for conn in ready:
                worker = self._worker_for(conn)
                if worker is None:
                    continue  # replaced while iterating
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._redispatch(worker, pending)
                    continue
                self._absorb(worker, message, pending, results)
        return results

    def _absorb(self, worker, message, pending, results) -> None:
        """Fold one reply message into the gather state."""
        if message[0] != "result":
            return
        for call_id, ok, payload in message[1]:
            info = pending.pop(call_id, None)
            if info is None:
                self._counters["stale_replies"] += 1
                continue
            if not ok:
                raise DistributedWorkerError(
                    f"partial query {info[1]!r} failed on worker "
                    f"{worker.index}: {payload}")
            results[info[0]] = payload

    def _hedge(self, pending) -> None:
        """Re-send outstanding partials to each partition's replica."""
        per_worker: Dict[int, list] = {}
        for call_id, (part, method, kwargs) in pending.items():
            replica = (part + 1) % self.num_workers
            per_worker.setdefault(replica, []).append(
                (call_id, method, kwargs))
        self._counters["hedged_calls"] += len(pending)
        for index, batch in per_worker.items():
            self._send_batch(self._workers[index], batch)

    def _redispatch(self, worker, pending) -> None:
        """Respawn a dead worker, re-send outstanding partials.

        Every pending call goes back to its primary partition owner
        (the fresh replacement when the primary died); duplicates
        from earlier sends are dropped by call id on arrival.
        """
        self._replace(worker)
        per_worker: Dict[int, list] = {}
        for call_id, (part, method, kwargs) in pending.items():
            per_worker.setdefault(part % self.num_workers, []).append(
                (call_id, method, kwargs))
        for index, batch in per_worker.items():
            self._send_batch(self._workers[index], batch)

    def _call_worker(self, worker: _Worker, method: str,
                     kwargs: dict) -> Any:
        """One direct, un-hedged call to a specific worker."""
        call_id = self._next_call_id()
        worker = self._send_batch(worker,
                                  [(call_id, method, kwargs)])
        deadline = time.monotonic() + self.request_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._counters["timeouts"] += 1
                raise DistributedTimeout(
                    f"worker {worker.index} did not answer "
                    f"{method!r} within {self.request_timeout:.1f}s")
            if not worker.conn.poll(remaining):
                continue
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                worker = self._replace(worker)
                worker = self._send_batch(
                    worker, [(call_id, method, kwargs)])
                continue
            if message[0] != "result":
                continue
            for reply_id, ok, payload in message[1]:
                if reply_id != call_id:
                    self._counters["stale_replies"] += 1
                    continue
                if not ok:
                    raise DistributedWorkerError(
                        f"{method!r} failed on worker "
                        f"{worker.index}: {payload}")
                return payload

    def _broadcast(self, method: str, kwargs: dict) -> Dict[int, Any]:
        """The same direct call on every worker (control plane)."""
        return {worker.index: self._call_worker(worker, method,
                                                kwargs)
                for worker in list(self._workers)}

    def _fetch_paths(self) -> List[Path]:
        return list(self._scatter({0: ("paths", {})})[0])

    def _scatter_best(self, keyword: str,
                      interval: int) -> Optional[KeywordCluster]:
        calls = {
            part: ("shard_best",
                   {"keyword": keyword, "interval": interval,
                    "shard": part, "num_shards": self.num_workers})
            for part in range(self.num_workers)}
        return merge_best(self._scatter(calls).values())

    # ------------------------------------------------------------------
    # The query surface (ClusterQueryService-compatible)
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "DistributedQueryService is closed")

    @property
    def num_intervals(self) -> int:
        """Intervals the coordinator's manifest view covers."""
        return int(self._manifest["num_intervals"])

    @property
    def complete(self) -> bool:
        """Whether the producing run finalized the index."""
        return bool(self._manifest["complete"])

    @property
    def latest_interval(self) -> int:
        """The most recent indexed interval (raises while empty)."""
        self._check_open()
        if self.num_intervals == 0:
            raise ValueError("the index holds no intervals yet")
        return self.num_intervals - 1

    def refine(self, keyword: str,
               interval: Optional[int] = None
               ) -> Optional[Refinement]:
        """Refinement suggestions for *keyword* (None = no cluster).

        Scatters a partial best-candidate query over every
        partition, merges the winners, and builds the refinement —
        byte-identical to the in-process service over the same
        index.  Hot (interval, stem) answers are served from the
        coordinator's LRU without touching the workers.
        """
        self._check_open()
        with self._lock:
            if interval is None:
                interval = self.latest_interval
            key = (interval, stem(keyword.lower()))
            cached = self._hot.get(key, _MISSING)
            if cached is not _MISSING:
                return cached
            self._counters["queries"] += 1
            cluster = self._scatter_best(keyword, interval)
            result = build_refinement(keyword, cluster)
            self._hot.put(key, result)
            return result

    def lookup(self, keyword: str,
               interval: Optional[int] = None
               ) -> Optional[KeywordCluster]:
        """The merged best cluster for *keyword*, uncached."""
        self._check_open()
        with self._lock:
            if interval is None:
                interval = self.latest_interval
            self._counters["queries"] += 1
            return self._scatter_best(keyword, interval)

    def stable_paths(self) -> List[Path]:
        """The run's current top-k stable paths (coordinator copy)."""
        self._check_open()
        with self._lock:
            return list(self._paths)

    def paths_for(self, keyword: str) -> List[Path]:
        """Stable paths passing through *keyword*, merged by index."""
        self._check_open()
        with self._lock:
            self._counters["queries"] += 1
            calls = {
                part: ("shard_paths_for",
                       {"keyword": keyword, "shard": part,
                        "num_shards": self.num_workers})
                for part in range(self.num_workers)}
            return merge_paths(self._scatter(calls).values())

    def render_path(self, path: Path, max_keywords: int = 8) -> str:
        """Render one stable path, gathering clusters by owner."""
        self._check_open()
        with self._lock:
            by_part: Dict[int, list] = {}
            for node in path.nodes:
                part = shard_for(node[0], node[1], self.num_workers)
                by_part.setdefault(part, []).append(node)
            calls = {part: ("clusters", {"nodes": nodes})
                     for part, nodes in by_part.items()}
            mapping = {}
            for pairs in self._scatter(calls).values():
                for node, detached in pairs:
                    mapping[tuple(node)] = revive_cluster(detached)
            return render_path_clusters(
                path, mapping.get, max_keywords=max_keywords,
                missing="(not in index)")

    def refresh(self) -> bool:
        """Advance the whole pool over a live index's new tail.

        Re-reads the manifest; on growth, broadcasts a refresh to
        every worker, drops hot cache entries at or beyond the
        previously-newest interval, and refetches the stored paths.
        Returns whether anything changed.
        """
        self._check_open()
        with self._lock:
            manifest = load_manifest(self.directory)
            if manifest.get("generation") == \
                    self._manifest.get("generation"):
                return False
            before = self.num_intervals
            self._broadcast("refresh", {})
            self._manifest = manifest
            for key in self._hot.keys():
                if key[0] >= before - 1:
                    self._hot.pop(key)
            self._paths = self._fetch_paths()
            return True

    # ------------------------------------------------------------------
    # Fault injection and introspection
    # ------------------------------------------------------------------

    def set_worker_delay(self, index: int, seconds: float) -> bool:
        """Inject *seconds* of latency into one worker's batches.

        The fault-injection hook the tests and benchmarks use to
        create a straggler: the target worker sleeps before
        answering each later batch, which drives queries through the
        hedging path.  Never hedged itself (it must land on exactly
        one worker).
        """
        with self._lock:
            self._check_open()
            return self._call_worker(self._workers[index],
                                     "set_delay",
                                     {"seconds": seconds})

    def worker_pids(self) -> List[int]:
        """Live worker process ids, by partition slot."""
        with self._lock:
            self._check_open()
            return [worker.process.pid for worker in self._workers]

    def worker_stats(self) -> Dict[int, Dict[str, Any]]:
        """Each worker's own counters (direct, un-hedged calls)."""
        with self._lock:
            self._check_open()
            return self._broadcast("stats", {})

    def stats(self) -> Dict[str, Any]:
        """Coordinator counters, flat and JSON-safe.

        Includes the scatter/hedge/respawn/timeout totals that make
        tail-tolerance observable, plus the hot-cache counters under
        the same names the in-process service reports.
        """
        self._check_open()
        with self._lock:
            hits, misses, entries, _ = self._hot.info()
            out: Dict[str, Any] = dict(self._counters)
            out.update(
                workers=self.num_workers,
                refiner_hits=hits,
                refiner_misses=misses,
                refiner_entries=entries,
                intervals=self.num_intervals,
                generation=int(self._manifest.get("generation", 0)),
                complete=int(self.complete))
            return out

    def describe_stats(self) -> str:
        """One line per counter, aligned (the CLI's stats view)."""
        stats = self.stats()
        width = max(len(name) for name in stats)
        return "\n".join(f"{name.ljust(width)}  {value}"
                         for name, value in sorted(stats.items()))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _shutdown_workers(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    def close(self) -> None:
        """Stop and reap every worker process (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self._shutdown_workers()

    def __enter__(self) -> "DistributedQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"DistributedQueryService(dir={self.directory!r}, "
                f"workers={self.num_workers}, {state})")
