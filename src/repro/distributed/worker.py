"""The shard worker process of the distributed serving tier.

Each worker owns its *own* :class:`repro.index.ClusterIndexReader`
over a reopened index and answers partial queries for any partition
of the postings space.  Workers are deliberately symmetric — the
partition is a parameter of every call, not of the process — which
is what lets the coordinator hedge a straggling partial onto a
replica worker or re-dispatch after a crash and still merge a
byte-identical answer.

The wire protocol is tiny and batched (cf. the master/worker
message-passing shape of the MPI exemplars): the parent sends
``("batch", [(call_id, method, kwargs), ...])`` over a duplex
:mod:`multiprocessing.connection` pipe and the worker replies
``("result", [(call_id, ok, payload), ...])``.  A ``("stop",)``
sentinel, pipe EOF, or the coordinator process dying (detected by
reparenting) ends the loop.  On startup the worker sends
``("ready", pid)`` once its reader is open — or ``("fatal",
message)`` and exits, so a coordinator never respawns a worker into
a directory that cannot be served.
"""

import os
import time

from repro.distributed.partition import detach_cluster
from repro.index.format import shard_for
from repro.index.reader import ClusterIndexReader
from repro.search.refinement import prefer_larger


def _shard_best(reader, keyword, interval, shard, num_shards):
    """This partition's best candidate for a refine/lookup query."""
    best = None
    best_node = None
    for node in reader.postings_for(keyword):
        if node[0] != interval:
            continue
        if shard_for(node[0], node[1], num_shards) != shard:
            continue
        chosen = prefer_larger(best, reader.cluster(node))
        if chosen is not best:
            best, best_node = chosen, node
    if best is None:
        return None
    return (best_node, detach_cluster(best))


def _shard_paths_for(reader, keyword, shard, num_shards):
    """Stored-order (index, path) matches for this partition."""
    nodes = set(node for node in reader.postings_for(keyword)
                if shard_for(node[0], node[1], num_shards) == shard)
    if not nodes:
        return []
    return [(index, path)
            for index, path in enumerate(reader.paths())
            if nodes.intersection(path.nodes)]


def _clusters(reader, nodes):
    """Detached clusters behind *nodes* (absent nodes are skipped)."""
    out = []
    for node in nodes:
        node = tuple(node)
        if reader.has_node(node):
            out.append((node, detach_cluster(reader.cluster(node))))
    return out


def _stats(reader):
    """A worker's own counters, for debugging and benchmarks."""
    hits, misses, entries, capacity = reader.cache_info()
    return {
        "pid": os.getpid(),
        "generation": reader.generation,
        "intervals": reader.num_intervals,
        "cluster_hits": hits,
        "cluster_misses": misses,
        "bytes_scanned": reader.bytes_scanned,
    }


def _dispatch(reader, state, method, kwargs):
    """Route one partial call to its handler."""
    if method == "shard_best":
        return _shard_best(reader, **kwargs)
    if method == "shard_paths_for":
        return _shard_paths_for(reader, **kwargs)
    if method == "paths":
        return reader.paths()
    if method == "clusters":
        return _clusters(reader, **kwargs)
    if method == "refresh":
        return reader.refresh()
    if method == "stats":
        return _stats(reader)
    if method == "set_delay":
        state["delay"] = float(kwargs["seconds"])
        return True
    if method == "ping":
        return "pong"
    raise ValueError(f"unknown worker method {method!r}")


def worker_main(conn, directory, cluster_cache_size=1024):
    """Serve partial queries over *conn* until told to stop.

    The worker process's entry point: opens its own reader over
    *directory* (answering ``("ready", pid)`` on success, ``("fatal",
    message)`` on failure), then answers batches until the stop
    sentinel or pipe EOF.  A fault-injected delay (``set_delay``)
    makes the worker sleep before answering each later batch — the
    hook the benchmarks and fault tests use to create a straggler.
    """
    try:
        reader = ClusterIndexReader(directory,
                                    cache_size=cluster_cache_size)
    except Exception as exc:  # surfaced to the coordinator
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    state = {"delay": 0.0}
    # Forked siblings inherit copies of every pipe's coordinator end,
    # so a dead coordinator does not reliably EOF this connection —
    # reparenting (getppid() changes) is the signal that always fires.
    parent_pid = os.getppid()
    try:
        conn.send(("ready", os.getpid()))
        while True:
            try:
                if not conn.poll(1.0):
                    if os.getppid() != parent_pid:
                        break
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            calls = message[1]
            if state["delay"] and not any(
                    method == "set_delay" for _, method, _ in calls):
                time.sleep(state["delay"])
            results = []
            for call_id, method, kwargs in calls:
                try:
                    payload = _dispatch(reader, state, method,
                                        kwargs)
                    results.append((call_id, True, payload))
                except Exception as exc:
                    results.append((call_id, False,
                                    f"{type(exc).__name__}: {exc}"))
            try:
                conn.send(("result", results))
            except (BrokenPipeError, OSError):
                break
    finally:
        reader.close()
        conn.close()
