"""Distributed scatter-gather query execution over shard workers.

The serving tier's escape from the single-process ceiling: a
coordinator (:class:`DistributedQueryService`) fans each refine/
lookup/paths query out to per-shard worker processes over
:mod:`multiprocessing.connection` pipes and merges the partial
answers into the exact single-process result — byte-identical to
:class:`repro.service.ClusterQueryService`, pinned by the test
suite.  Slow or dead workers are absorbed by per-request timeouts,
hedged re-sends to a replica worker, and automatic respawn
(:mod:`repro.distributed.coordinator`); the partition and merge
rules live in :mod:`repro.distributed.partition`; the worker
process in :mod:`repro.distributed.worker`; and the shard-parallel
build path in :mod:`repro.distributed.build`.
"""

from repro.distributed.build import build_sharded_index
from repro.distributed.coordinator import (
    DEFAULT_HEDGE_DELAY,
    DEFAULT_REQUEST_TIMEOUT,
    DEFAULT_WORKERS,
    DistributedQueryService,
    DistributedTimeout,
    DistributedWorkerError,
)
from repro.distributed.partition import (
    build_refinement,
    detach_cluster,
    merge_best,
    merge_paths,
    revive_cluster,
)
from repro.distributed.worker import worker_main

__all__ = [
    "DEFAULT_HEDGE_DELAY",
    "DEFAULT_REQUEST_TIMEOUT",
    "DEFAULT_WORKERS",
    "DistributedQueryService",
    "DistributedTimeout",
    "DistributedWorkerError",
    "build_refinement",
    "build_sharded_index",
    "detach_cluster",
    "merge_best",
    "merge_paths",
    "revive_cluster",
    "worker_main",
]
