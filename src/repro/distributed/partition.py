"""The partition and merge contract of scatter-gather queries.

A coordinator splits one logical query into per-partition partial
queries, each answered by a worker process over its slice of the
postings space, and folds the partial answers back into the exact
single-process result.  Partition ownership reuses the index's hash
sharding (:func:`repro.index.format.shard_for` over ``(interval,
idx)`` nodes), so the partial answer sets are disjoint and their
union is the full candidate set — the precondition every merge rule
here relies on.

Clusters cross the process boundary in a *detached* form — plain
``(keywords, edges, interval)`` tuples — so a worker bound to an
interned vocabulary and a string-mode coordinator still exchange
byte-identical answers.  Both sides of a cluster's canonical order
(sorted keywords, canonically sorted edges) survive the round trip,
which is what keeps the rendered payloads byte-comparable to
:class:`repro.service.ClusterQueryService`.
"""

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.paths import Path
from repro.graph.clusters import KeywordCluster
from repro.search.refinement import (
    Refinement,
    prefer_larger,
    rank_suggestions,
)
from repro.text.stemmer import stem

# A cluster flattened for the pipe: (sorted keywords, canonical
# edges, source interval label).
DetachedCluster = Tuple[Tuple[str, ...],
                        Tuple[Tuple[str, str, float], ...],
                        Optional[int]]

# A partition's partial answer: the postings node where its local
# winner first appeared, plus the winner itself (None = no candidate
# in this partition).
PartialBest = Optional[Tuple[Tuple[int, int], DetachedCluster]]


def detach_cluster(cluster: KeywordCluster) -> DetachedCluster:
    """Flatten *cluster* into its vocabulary-free wire form.

    Keywords are sorted and edges kept in the cluster's canonical
    order, so :func:`revive_cluster` rebuilds an object whose
    rendered payloads match the original byte for byte.
    """
    return (tuple(sorted(cluster.keywords)), tuple(cluster.edges),
            cluster.interval)


def revive_cluster(detached: DetachedCluster) -> KeywordCluster:
    """Rebuild a string-mode :class:`KeywordCluster` from wire form.

    The inverse of :func:`detach_cluster` for everything queries
    observe: keyword set, edge list, interval label and size.
    """
    keywords, edges, interval = detached
    return KeywordCluster(frozenset(keywords), edges=tuple(edges),
                          interval=interval)


def merge_best(partials: Iterable[PartialBest]
               ) -> Optional[KeywordCluster]:
    """Fold per-partition winners into the global best cluster.

    Replays the single-process rule — ``prefer_larger`` over
    candidates in ascending node order — on the partial winners.
    Each partition reports the node where its local winner first
    appeared, so sorting partials by node and folding again selects
    exactly the cluster a single reader would have: the global
    first-seen largest candidate.
    """
    best: Optional[KeywordCluster] = None
    ordered = sorted((pair for pair in partials if pair is not None),
                     key=lambda pair: tuple(pair[0]))
    for _, detached in ordered:
        best = prefer_larger(best, revive_cluster(detached))
    return best


def build_refinement(keyword: str,
                     cluster: Optional[KeywordCluster]
                     ) -> Optional[Refinement]:
    """Assemble the final :class:`Refinement` around a merged winner.

    Mirrors :meth:`repro.search.QueryRefiner.refine` exactly: the
    stemmed query, the winning cluster, and the ranked suggestion
    list derived from its edges.  Returns None when no partition held
    a candidate.
    """
    if cluster is None:
        return None
    query_stem = stem(keyword.lower())
    return Refinement(query_stem=query_stem, cluster=cluster,
                      suggestions=rank_suggestions(cluster,
                                                   query_stem))


def merge_paths(partials: Iterable[Sequence[Tuple[int, Path]]]
                ) -> List[Path]:
    """Merge per-partition ``(index, path)`` matches, de-duplicated.

    A stable path matches a keyword when any of its nodes does, so a
    path may surface from several partitions; indexing into the
    reader's stored path order both de-duplicates and restores the
    exact single-process ordering.
    """
    by_index = {}
    for pairs in partials:
        for index, path in pairs:
            by_index[index] = path
    return [by_index[index] for index in sorted(by_index)]
