"""Shard-parallel construction of a persistent cluster index.

:func:`build_sharded_index` is the distributed tier's build path
(``index build --shards N``): the sequential planning pass walks the
run's intervals exactly like :class:`repro.index.ClusterIndexWriter`
— rebinding clusters into the vocabulary, assigning each record to
its hash shard, accumulating postings in encounter order — and then
the expensive part, encoding and framing every shard's cluster
records, fans out over worker processes that each produce one
shard's log blob end-to-end.  The parent lays the blobs down as one
sealed segment and publishes a manifest.

The output is byte-identical to what the serial writer produces for
the same run (the test suite compares the files directly): record
framing goes through the same :func:`repro.storage.frame_record`,
shard assignment through the same :func:`repro.index.format.
shard_for`, and the manifest replays the serial writer's save
count so even its generation number lines up.
"""

import os
import shutil
from typing import Any, Optional, Sequence

from repro.index.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    PATHS_FILE,
    POSTINGS_FILE,
    VOCABULARY_FILE,
    ClusterIndexError,
    manifest_path,
    new_segment_meta,
    save_manifest,
    segment_dir,
    segment_name,
    segments_root,
    shard_file,
    shard_for,
)
from repro.index.writer import DEFAULT_SHARDS, ClusterIndexWriter
from repro.parallel import open_executor
from repro.storage.codec import encode_compact
from repro.storage.recordlog import frame_record


def _frame_shard(records) -> bytes:
    """Encode and frame one shard's cluster records (worker task)."""
    return b"".join(frame_record(encode_compact(record))
                    for record in records)


def _prepare_directory(directory: str, overwrite: bool) -> None:
    """Mirror the serial writer's directory preconditions."""
    if os.path.exists(manifest_path(directory)):
        if not overwrite:
            raise ClusterIndexError(
                f"{directory!r} already holds a cluster index; pass "
                f"overwrite=True to rebuild it")
        os.unlink(manifest_path(directory))
        shutil.rmtree(segments_root(directory), ignore_errors=True)
    elif os.path.isdir(directory) and os.listdir(directory):
        raise ClusterIndexError(
            f"refusing to write an index into non-empty directory "
            f"{directory!r} (no manifest found)")
    os.makedirs(segments_root(directory), exist_ok=True)


def build_sharded_index(directory: str,
                        interval_clusters: Sequence[Sequence],
                        paths: Sequence, *,
                        vocab: Optional[Any] = None,
                        query: Optional[Any] = None,
                        plan: Optional[Any] = None,
                        num_shards: int = DEFAULT_SHARDS,
                        workers: Optional[int] = None,
                        overwrite: bool = True) -> int:
    """Persist a batch run with shard-parallel workers.

    A drop-in for :meth:`ClusterIndexWriter.write_run` producing a
    byte-identical single-segment index: same record frames, same
    shard assignment, same postings order, same manifest.  *workers*
    sizes the encoding pool (``None`` = serial, ``0`` = all cores).
    Returns total log bytes written.
    """
    if num_shards < 1:
        raise ValueError(
            f"num_shards must be >= 1, got {num_shards}")
    interval_clusters = [list(clusters)
                         for clusters in interval_clusters]
    if query is None and plan is not None:
        query = plan.query
    provenance = plan.explain().splitlines() \
        if plan is not None else []
    _prepare_directory(directory, overwrite)
    # The sequential planning pass: vocabulary rebinding must happen
    # in interval order (token ids are append-ordered) and postings
    # must keep the writer's encounter order, so only the per-shard
    # encode+frame step is worth distributing.
    shard_records: list = [[] for _ in range(num_shards)]
    vocab_deltas = []
    postings_frames = []
    vocab_written = 0
    num_clusters = 0
    for interval, clusters in enumerate(interval_clusters):
        if vocab is not None:
            clusters = [cluster.rebind(vocab)
                        for cluster in clusters]
            fresh = vocab.tokens[vocab_written:]
            if fresh:
                vocab_deltas.append(
                    frame_record(encode_compact(tuple(fresh))))
                vocab_written = len(vocab.tokens)
        postings: dict = {}
        for idx, cluster in enumerate(clusters):
            if vocab is not None:
                tokens_out = cluster.tokens
                edges_out = cluster.token_edges
            else:
                tokens_out = tuple(sorted(cluster.keywords))
                edges_out = cluster.edges
            record = (interval, idx, cluster.interval,
                      tuple(tokens_out), tuple(edges_out))
            shard_records[shard_for(interval, idx,
                                    num_shards)].append(record)
            for token in tokens_out:
                postings.setdefault(token, []).append(idx)
        postings_frames.append(
            frame_record(encode_compact((interval, postings))))
        num_clusters += len(clusters)
    with open_executor(workers) as executor:
        blobs = executor.map_stages(_frame_shard, shard_records)
    name = segment_name(0)
    seg = segment_dir(directory, name)
    os.makedirs(seg)
    meta = new_segment_meta(name, first_interval=0, vocab_base=0)

    def _write(fname: str, blob: bytes) -> None:
        with open(os.path.join(seg, fname), "wb") as fh:
            fh.write(blob)
        meta["files"][fname] = len(blob)

    for shard, blob in enumerate(blobs):
        _write(shard_file(shard), blob)
    _write(POSTINGS_FILE, b"".join(postings_frames))
    _write(PATHS_FILE,
           frame_record(encode_compact((0, list(paths)))))
    if vocab is not None:
        _write(VOCABULARY_FILE, b"".join(vocab_deltas))
    num_intervals = len(interval_clusters)
    meta.update(num_intervals=num_intervals,
                num_clusters=num_clusters,
                vocab_size=vocab_written,
                path_generations=1,
                num_paths=len(paths),
                sealed=True)
    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "token_kind": "id" if vocab is not None else "str",
        "num_shards": num_shards,
        # The serial writer bumps the generation on every manifest
        # save: one at open, one per appended interval, one for the
        # paths, one sealing the segment, one marking completion.
        # Replaying that count keeps a sharded rebuild byte-identical
        # to write_run, manifest included.
        "generation": num_intervals + 4,
        "next_segment": 1,
        "complete": True,
        "query": ClusterIndexWriter._query_dict(query),
        "provenance": provenance,
        "segments": [meta],
        "num_intervals": num_intervals,
        "num_clusters": num_clusters,
        "vocab_size": vocab_written,
        "path_generations": 1,
        "num_paths": len(paths),
    }
    save_manifest(directory, manifest)
    return sum(meta["files"].values())
