"""Correlation clustering via the KwikCluster pivot algorithm.

The correlation-clustering formulation of Bansal, Blum and Chawla
labels each edge '+' (similar) or '-' (dissimilar) and partitions the
vertices to maximize agreement.  The paper's complaint: the known
approximation algorithms are impractical and require binary labels,
which correlation-weighted keyword graphs do not have.

KwikCluster (Ailon, Charikar, Newman 2008) is the simplest practical
variant — pick a random pivot, cluster it with all its '+' neighbours,
recurse on the rest; it is a 3-approximation in expectation.  Edges of
the weighted keyword graph are binarized with a threshold, which is
itself the kind of lossy step the paper's design avoids.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Set

from repro.graph.adjacency import Graph


def kwik_cluster(graph: Graph, positive_threshold: float = 0.0,
                 seed: Optional[int] = None) -> List[Set[Any]]:
    """Pivot-based correlation clustering.

    An edge counts as '+' when its weight exceeds
    *positive_threshold*; absent edges are '-'.  Returns vertex sets
    (singletons included).
    """
    rng = random.Random(seed)
    remaining = list(graph.vertices())
    rng.shuffle(remaining)
    unassigned = set(remaining)
    clusters: List[Set[Any]] = []
    for pivot in remaining:
        if pivot not in unassigned:
            continue
        cluster = {pivot}
        for neighbour in graph.neighbors(pivot):
            if (neighbour in unassigned
                    and graph.weight(pivot, neighbour)
                    > positive_threshold):
                cluster.add(neighbour)
        unassigned -= cluster
        clusters.append(cluster)
    return clusters


def disagreements(graph: Graph, clusters: List[Set[Any]],
                  positive_threshold: float = 0.0) -> int:
    """Correlation-clustering objective (lower is better).

    Counts '+' edges cut across clusters plus co-clustered pairs that
    are *not* '+' (absent edges are implicitly '-').
    """
    assignment = {}
    for index, cluster in enumerate(clusters):
        for v in cluster:
            if v in assignment:
                raise ValueError(f"vertex {v!r} assigned twice")
            assignment[v] = index

    def is_positive(u: Any, v: Any) -> bool:
        return (graph.has_edge(u, v)
                and graph.weight(u, v) > positive_threshold)

    count = 0
    for u, v, weight in graph.edges():
        if (weight > positive_threshold
                and assignment[u] != assignment[v]):
            count += 1
    for cluster in clusters:
        members = list(cluster)
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                if not is_positive(members[a], members[b]):
                    count += 1
    return count
