"""Cut clustering (Flake, Tarjan, Tsioutsiouliklis 2004).

The algorithm connects an artificial sink to every vertex with edge
capacity α, then computes, for each vertex, the minimum cut between
the vertex and the sink; the source sides of the cuts form the
clusters.  The full min-cut-tree construction is simplified to the
standard iterative form: repeatedly pick an unassigned vertex, solve
one max-flow (via networkx's preflow-push), and assign the entire
source-side community.

The paper's complaint — a sensitivity parameter α that must be chosen
in advance and a prohibitive number of max-flow computations — is
exactly what the ablation benchmark demonstrates.
"""

from __future__ import annotations

from typing import Any, List, Set

import networkx as nx

from repro.graph.adjacency import Graph

SINK = "__cut_clustering_sink__"


def cut_clustering(graph: Graph, alpha: float) -> List[Set[Any]]:
    """Cluster *graph* with sensitivity *alpha*; returns vertex sets.

    Higher α yields smaller, denser clusters.  Isolated vertices come
    back as singletons.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    expanded = nx.Graph()
    expanded.add_nodes_from(graph.vertices())
    for u, v, weight in graph.edges():
        expanded.add_edge(u, v, capacity=weight)
    for v in graph.vertices():
        if v == SINK:
            raise ValueError(
                "graph contains the reserved sink vertex name")
        expanded.add_edge(v, SINK, capacity=alpha)

    clusters: List[Set[Any]] = []
    assigned: Set[Any] = set()
    for v in graph.vertices():
        if v in assigned:
            continue
        cut_value, (source_side, sink_side) = nx.minimum_cut(
            expanded, v, SINK)
        community = (source_side if v in source_side else sink_side)
        community = set(community) - {SINK} - assigned
        community.add(v)
        assigned |= community
        clusters.append(community)
    return clusters
