"""Baseline graph-clustering algorithms the paper compares against.

Section 2 discusses two alternatives to the biconnected-component
clustering and dismisses both on practicality grounds:

* Flake et al.'s cut clustering via minimum-cut trees — "required six
  hours to conduct a graph cut on a graph with a few thousand edges
  and vertices" (:mod:`repro.baselines.mincut`);
* correlation clustering — approximation algorithms that are "very
  interesting theoretically, but far from practical"
  (:mod:`repro.baselines.correlation_clustering`, implemented as the
  KwikCluster pivot algorithm, its simplest practical variant).

Both are implemented to reproduce that comparison (quality and speed)
at laptop scale in ``benchmarks/bench_ablation_baselines.py``.
"""

from repro.baselines.correlation_clustering import kwik_cluster
from repro.baselines.mincut import cut_clustering

__all__ = ["cut_clustering", "kwik_cluster"]
