"""K-way merge of sorted run files."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, List, Optional, Sequence

from repro.extsort.runs import read_run
from repro.storage.iostats import IOStats


def merge_runs(paths: Sequence[str],
               key: Optional[Callable[[Any], Any]] = None,
               stats: Optional[IOStats] = None) -> Iterator[Any]:
    """Yield all records of the given sorted run files in merged order.

    Uses :func:`heapq.merge`, which holds one record per run in memory —
    the standard external-merge memory footprint of one block per run.
    """
    streams: List[Iterator[Any]] = [read_run(path, stats) for path in paths]
    if key is None:
        return heapq.merge(*streams)
    return heapq.merge(*streams, key=key)
