"""External merge sort.

Section 3 of the paper sorts the file of emitted keyword pairs
"lexicographically (using external memory merge sort) such that all
identical keyword pairs appear together in the output".  This package
implements that substrate: bounded-memory sorted-run generation
followed by a k-way merge, for arbitrary picklable records and for the
line-oriented pair files the co-occurrence stage produces.
"""

from repro.extsort.extsort import external_sort, sort_lines_file
from repro.extsort.runs import RunWriter, write_runs
from repro.extsort.merge import merge_runs

__all__ = [
    "RunWriter",
    "external_sort",
    "merge_runs",
    "sort_lines_file",
    "write_runs",
]
