"""Sorted-run generation for external merge sort.

Records are accumulated in memory up to ``max_records``, sorted, and
written to a run file as length-prefixed pickles.  The run files are
consumed by :mod:`repro.extsort.merge`.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
from typing import Any, Callable, Iterable, Iterator, List, Optional

from repro.storage.iostats import IOStats

_LEN = struct.Struct("<I")


class RunWriter:
    """Writes one sorted run of records to a temporary file."""

    def __init__(self, directory: Optional[str] = None,
                 stats: Optional[IOStats] = None) -> None:
        self.stats = stats if stats is not None else IOStats()
        fd, self.path = tempfile.mkstemp(prefix="run-", suffix=".bin",
                                         dir=directory)
        self._fh = os.fdopen(fd, "wb")
        self.count = 0

    def write_sorted(self, records: List[Any],
                     key: Optional[Callable[[Any], Any]] = None) -> None:
        """Sort *records* in memory and append them to the run file."""
        records.sort(key=key)
        for record in records:
            blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            self._fh.write(_LEN.pack(len(blob)))
            self._fh.write(blob)
            self.stats.record_write(len(blob) + _LEN.size, sequential=True)
            self.count += 1

    def close(self) -> None:
        """Flush and close the run file."""
        if not self._fh.closed:
            self._fh.close()


def read_run(path: str, stats: Optional[IOStats] = None) -> Iterator[Any]:
    """Yield the records of a run file in stored (sorted) order."""
    with open(path, "rb") as fh:
        while True:
            header = fh.read(_LEN.size)
            if not header:
                return
            (length,) = _LEN.unpack(header)
            blob = fh.read(length)
            if len(blob) != length:
                raise IOError(f"truncated run file {path!r}")
            if stats is not None:
                stats.record_read(length + _LEN.size, sequential=True)
            yield pickle.loads(blob)


def write_runs(records: Iterable[Any], max_records: int,
               key: Optional[Callable[[Any], Any]] = None,
               directory: Optional[str] = None,
               stats: Optional[IOStats] = None) -> List[str]:
    """Partition *records* into sorted runs of at most *max_records*.

    Returns the list of run-file paths (possibly empty for empty
    input).  The caller owns the files and should delete them after
    merging.
    """
    if max_records <= 0:
        raise ValueError(f"max_records must be positive, got {max_records}")
    paths: List[str] = []
    buffer: List[Any] = []
    for record in records:
        buffer.append(record)
        if len(buffer) >= max_records:
            paths.append(_flush_run(buffer, key, directory, stats))
            buffer = []
    if buffer:
        paths.append(_flush_run(buffer, key, directory, stats))
    return paths


def _flush_run(buffer: List[Any], key, directory, stats) -> str:
    writer = RunWriter(directory=directory, stats=stats)
    writer.write_sorted(buffer, key=key)
    writer.close()
    return writer.path
