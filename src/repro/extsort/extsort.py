"""Public external-sort entry points."""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.extsort.merge import merge_runs
from repro.extsort.runs import write_runs
from repro.storage.iostats import IOStats


def external_sort(records: Iterable[Any], max_records: int = 100_000,
                  key: Optional[Callable[[Any], Any]] = None,
                  directory: Optional[str] = None,
                  stats: Optional[IOStats] = None) -> Iterator[Any]:
    """Sort an arbitrarily large record stream with bounded memory.

    At most ``max_records`` records are held in memory while building
    runs, plus one record per run while merging.  Run files are deleted
    once the merged stream is exhausted.
    """
    paths = write_runs(records, max_records, key=key,
                       directory=directory, stats=stats)
    if not paths:
        return
    try:
        for record in merge_runs(paths, key=key, stats=stats):
            yield record
    finally:
        for path in paths:
            try:
                os.unlink(path)
            except OSError:
                pass


def sort_lines_file(in_path: str, out_path: str,
                    max_records: int = 100_000,
                    directory: Optional[str] = None,
                    stats: Optional[IOStats] = None) -> int:
    """External-sort a text file line-by-line (lexicographically).

    This is the exact operation Section 3 performs on the emitted
    keyword-pair file.  Returns the number of lines written.
    """

    def lines() -> Iterator[str]:
        with open(in_path, "r", encoding="utf-8") as fh:
            for line in fh:
                yield line.rstrip("\n")

    count = 0
    with open(out_path, "w", encoding="utf-8") as out:
        for line in external_sort(lines(), max_records=max_records,
                                  directory=directory, stats=stats):
            out.write(line)
            out.write("\n")
            count += 1
    return count
