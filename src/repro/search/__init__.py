"""Search applications of keyword clusters (Section 1's motivation).

"If a search query for a specific interval falls in a cluster, the
rest of the keywords in that cluster are good candidates for query
refinement ... for a query keyword we may suggest the strongest
correlation as a refinement."
"""

from repro.search.refinement import (
    ClusterSource,
    ListClusterSource,
    QueryRefiner,
    Refinement,
    prefer_larger,
    rank_suggestions,
    render_refinement,
)

__all__ = [
    "ClusterSource",
    "ListClusterSource",
    "QueryRefiner",
    "Refinement",
    "prefer_larger",
    "rank_suggestions",
    "render_refinement",
]
