"""Query refinement from per-interval keyword clusters.

``QueryRefiner`` indexes the clusters of one temporal interval by
keyword; :meth:`refine` returns the refinement candidates for a query
term — the other keywords of its cluster, ranked by the strength of
their correlation with the query (the paper's "suggest the strongest
correlation as a refinement"), plus the cluster itself for context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.clusters import KeywordCluster
from repro.text.stemmer import stem


@dataclass(frozen=True)
class Refinement:
    """Refinement result for one query term."""

    query_stem: str
    cluster: KeywordCluster
    suggestions: Tuple[Tuple[str, float], ...]  # (keyword, rho) desc

    @property
    def strongest(self) -> Optional[str]:
        """The single best suggestion (None when the cluster carries
        no scored edges for the query)."""
        return self.suggestions[0][0] if self.suggestions else None


class QueryRefiner:
    """Keyword -> cluster index over one interval's clusters."""

    def __init__(self, clusters: Sequence[KeywordCluster]) -> None:
        self._by_keyword: Dict[str, KeywordCluster] = {}
        for cluster in clusters:
            for keyword in cluster.keywords:
                # Biconnected components can share articulation
                # keywords; keep the larger (more informative) cluster.
                current = self._by_keyword.get(keyword)
                if current is None or len(cluster) > len(current):
                    self._by_keyword[keyword] = cluster

    def __contains__(self, query: str) -> bool:
        return stem(query.lower()) in self._by_keyword

    def refine(self, query: str) -> Optional[Refinement]:
        """Refinement for *query* (stemmed), or None when the query
        falls in no cluster this interval."""
        query_stem = stem(query.lower())
        cluster = self._by_keyword.get(query_stem)
        if cluster is None:
            return None
        scored: Dict[str, float] = {}
        for u, v, rho in cluster.edges:
            if query_stem == u:
                scored[v] = max(scored.get(v, 0.0), rho)
            elif query_stem == v:
                scored[u] = max(scored.get(u, 0.0), rho)
        # Keywords in the cluster but not adjacent to the query are
        # still candidates (they co-occur transitively); rank them
        # after the directly correlated ones with score 0.
        for keyword in cluster.keywords:
            if keyword != query_stem:
                scored.setdefault(keyword, 0.0)
        ranked = tuple(sorted(scored.items(),
                              key=lambda item: (-item[1], item[0])))
        return Refinement(query_stem=query_stem, cluster=cluster,
                          suggestions=ranked)

    def vocabulary(self) -> List[str]:
        """Every keyword that has a cluster this interval."""
        return sorted(self._by_keyword)
