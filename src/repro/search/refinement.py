"""Query refinement from per-interval keyword clusters.

:class:`QueryRefiner` answers the paper's Section-1 serving question:
for a query term that falls in a cluster, the other keywords of that
cluster are refinement candidates, ranked by the strength of their
correlation with the query ("suggest the strongest correlation as a
refinement"), plus the cluster itself for context.

The refiner is split from where clusters live: it reads them through a
:class:`ClusterSource` — an in-memory cluster list (the historical
form, still the one-argument constructor), or the persistent cluster
index (:meth:`repro.index.ClusterIndexReader.refiner`), so a serving
tier answers refinements without re-reading any source documents.
Answers are source-independent: the same clusters give byte-identical
:class:`Refinement` objects whichever backing is used, which the
round-trip tests pin.  An optional LRU cache keeps hot keywords'
answers resident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.graph.clusters import KeywordCluster
from repro.storage.lru import LRUCache
from repro.text.stemmer import stem

_MISSING = object()


@dataclass(frozen=True)
class Refinement:
    """Refinement result for one query term."""

    query_stem: str
    cluster: KeywordCluster
    suggestions: Tuple[Tuple[str, float], ...]  # (keyword, rho) desc

    @property
    def strongest(self) -> Optional[str]:
        """The single best suggestion.

        None when the cluster carries no scored edges (and no other
        keywords) for the query."""
        return self.suggestions[0][0] if self.suggestions else None


def rank_suggestions(cluster: KeywordCluster, query_stem: str
                     ) -> Tuple[Tuple[str, float], ...]:
    """Rank *cluster*'s other keywords as refinements of *query_stem*.

    Keywords adjacent to the query rank by their strongest supporting
    correlation, descending; keywords in the cluster but not adjacent
    (they co-occur transitively) follow with score 0.  Ties break
    alphabetically, so the ranking is deterministic for any storage of
    the same cluster.
    """
    scored: Dict[str, float] = {}
    for u, v, rho in cluster.edges:
        if query_stem == u:
            scored[v] = max(scored.get(v, 0.0), rho)
        elif query_stem == v:
            scored[u] = max(scored.get(u, 0.0), rho)
    for keyword in cluster.keywords:
        if keyword != query_stem:
            scored.setdefault(keyword, 0.0)
    return tuple(sorted(scored.items(),
                        key=lambda item: (-item[1], item[0])))


def prefer_larger(current: Optional[KeywordCluster],
                  candidate: KeywordCluster) -> KeywordCluster:
    """The keyword -> cluster assignment rule.

    Biconnected components can share articulation keywords; the more
    informative (strictly larger) cluster wins, and ties keep the
    earlier one.  Both the in-memory source and the index postings
    apply candidates in cluster-list order through this one rule, so
    the chosen cluster is identical across backings.
    """
    if current is None or len(candidate) > len(current):
        return candidate
    return current


@runtime_checkable
class ClusterSource(Protocol):
    """Where a :class:`QueryRefiner` reads its clusters from.

    ``best_cluster(stem)`` returns the cluster assigned to a stemmed
    keyword (by the :func:`prefer_larger` rule) or ``None``;
    ``stems()`` enumerates every stem that has a cluster.
    """

    def best_cluster(self, query_stem: str) -> Optional[KeywordCluster]:
        """The cluster for *query_stem*, or None when it has none."""

    def stems(self) -> Iterable[str]:
        """Every stemmed keyword that maps to a cluster."""


class ListClusterSource:
    """In-memory :class:`ClusterSource` over one interval's clusters."""

    def __init__(self, clusters: Sequence[KeywordCluster]) -> None:
        self._by_keyword: Dict[str, KeywordCluster] = {}
        for cluster in clusters:
            for keyword in cluster.keywords:
                self._by_keyword[keyword] = prefer_larger(
                    self._by_keyword.get(keyword), cluster)

    def best_cluster(self, query_stem: str) -> Optional[KeywordCluster]:
        """The assigned cluster for *query_stem* (dict lookup)."""
        return self._by_keyword.get(query_stem)

    def stems(self) -> Iterable[str]:
        """Every keyword that has a cluster."""
        return self._by_keyword.keys()


class QueryRefiner:
    """Keyword -> refinement answers over one interval's clusters.

    ``QueryRefiner(clusters)`` serves from an in-memory cluster list;
    ``QueryRefiner(source=...)`` serves from any
    :class:`ClusterSource` (the index reader builds one over its
    keyword postings).  ``cache_size`` bounds an LRU of refinement
    answers for hot keywords (0 disables it).
    """

    def __init__(self,
                 clusters: Optional[Sequence[KeywordCluster]] = None,
                 *, source: Optional[ClusterSource] = None,
                 cache_size: int = 0) -> None:
        if (clusters is None) == (source is None):
            raise TypeError(
                "QueryRefiner needs exactly one of clusters= (an "
                "in-memory list) or source= (a ClusterSource)")
        self._source: ClusterSource = (
            ListClusterSource(clusters) if source is None else source)
        self._cache = LRUCache(cache_size)

    def __contains__(self, query: str) -> bool:
        return self.refine(query) is not None

    def refine(self, query: str) -> Optional[Refinement]:
        """Refinement for *query* (stemmed).

        Returns None when the query falls in no cluster this
        interval."""
        query_stem = stem(query.lower())
        cached = self._cache.get(query_stem, _MISSING)
        if cached is not _MISSING:
            return cached
        cluster = self._source.best_cluster(query_stem)
        result = None if cluster is None else Refinement(
            query_stem=query_stem, cluster=cluster,
            suggestions=rank_suggestions(cluster, query_stem))
        self._cache.put(query_stem, result)
        return result

    def vocabulary(self) -> List[str]:
        """Every keyword that has a cluster this interval."""
        return sorted(self._source.stems())

    def clear_cache(self) -> None:
        """Drop cached answers (after the backing index refreshed)."""
        self._cache.clear()

    def cache_info(self) -> Tuple[int, int, int, int]:
        """``(hits, misses, size, capacity)`` of the answer cache."""
        return self._cache.info()


def render_refinement(refinement: Refinement,
                      max_suggestions: int = 8) -> str:
    """Human-readable rendering of one refinement answer.

    The CLI ``query refine`` subcommand and the round-trip tests share
    this renderer, so "byte-identical answers" is checkable on the
    exact strings users see.
    """
    cluster = refinement.cluster
    keywords = " ".join(sorted(cluster.keywords))
    lines = [f"cluster ({len(cluster)} keywords"
             + (f", interval {cluster.interval}" if cluster.interval
                is not None else "") + f"): {keywords}"]
    shown = refinement.suggestions[:max_suggestions]
    rendered = "  ".join(f"{kw} ({rho:.3f})" for kw, rho in shown)
    suffix = " ..." if len(refinement.suggestions) > len(shown) else ""
    lines.append(f"refinements: {rendered}{suffix}")
    lines.append(f"strongest: {refinement.strongest}")
    return "\n".join(lines)
