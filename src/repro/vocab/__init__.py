"""Keyword interning: the string <-> integer-id vocabulary layer.

Every stage of the reproduction computes on *keywords*.  Representing
them as Python strings makes each set intersection hash text and each
pickled payload repeat the same words; dictionary-encoding them once
into dense integer ids makes pair records smaller and
faster-comparing, co-occurrence counting hash machine ints, affinity
joins intersect id sets, and worker payloads ship one token table
instead of re-pickling strings per cluster — the same compact-encoding
argument disk-based keyword search (EMBANKS) and multidimensional
compression work make for their physical layers.

Two classes split mutability from shippability:

* :class:`~repro.vocab.vocabulary.Vocabulary` — the growing,
  corpus-owned mapping.  Batch drivers and the streaming pipeline own
  exactly one and intern into it incrementally; ids are assigned
  deterministically (new tokens in sorted order per bulk intern), so
  serial, parallel, and streaming runs agree on every id.
* :class:`~repro.vocab.vocabulary.FrozenVocabulary` — an immutable
  snapshot that pickles as a bare token table.  Per-interval worker
  tasks bind their clusters to one compact snapshot, so a pickled
  result carries each keyword string once, not once per cluster.

The decode-at-the-edge rule: ids never leak to users.  Renderers, the
CLI, and ``KeywordCluster.keywords`` decode back to strings; see
docs/architecture.md ("Vocabulary & interning").
"""

from repro.vocab.vocabulary import (
    FrozenVocabulary,
    Vocabulary,
    VocabularyLike,
)

__all__ = [
    "FrozenVocabulary",
    "Vocabulary",
    "VocabularyLike",
]
