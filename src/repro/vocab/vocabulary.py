"""Bidirectional keyword interning with deterministic id assignment.

The contract every execution mode relies on: given the same sequence
of bulk interns, a :class:`Vocabulary` assigns the same ids — new
tokens of a bulk call are added in **sorted order**, so the ids an
interval produces depend only on which intervals were interned before
it, never on document order, executor, or worker count.  The
equivalence suites (parallel == serial, streaming == batch) lean on
this.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Sequence,
    Tuple,
    Union,
)


class FrozenVocabulary:
    """An immutable id -> token table (ids are positions).

    The picklable worker-task form of a vocabulary: it serializes as
    the bare token tuple, and the reverse (token -> id) index is
    rebuilt lazily on first lookup, so shipping a snapshot to a
    process pool costs the strings once and nothing else.  Interning
    raises — snapshots never grow; thaw into a :class:`Vocabulary`
    (``Vocabulary(snapshot.tokens)``) to continue growing.
    """

    __slots__ = ("_tokens", "_ids")

    def __init__(self, tokens: Sequence[str] = ()) -> None:
        self._tokens: Tuple[str, ...] = tuple(tokens)
        self._ids: Dict[str, int] = {}

    @property
    def tokens(self) -> Tuple[str, ...]:
        """The full id-ordered token table."""
        return self._tokens

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._index()

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def _index(self) -> Dict[str, int]:
        if not self._ids and self._tokens:
            self._ids = {token: i for i, token in
                         enumerate(self._tokens)}
        return self._ids

    def id_of(self, token: str) -> int:
        """The id of *token*; KeyError when not interned."""
        return self._index()[token]

    def decode(self, token_id: int) -> str:
        """The token behind *token_id*."""
        return self._tokens[token_id]

    def decode_all(self, token_ids: Iterable[int]) -> FrozenSet[str]:
        """Decode a collection of ids to the keyword string set."""
        tokens = self._tokens
        return frozenset(tokens[i] for i in token_ids)

    def intern(self, token: str) -> int:
        """Snapshots are immutable; growing them is a caller bug."""
        raise TypeError(
            "FrozenVocabulary is immutable; thaw it with "
            "Vocabulary(snapshot.tokens) to intern new keywords")

    def __reduce__(self):
        # Ship only the token table; the reverse index rebuilds
        # lazily in the receiving process.
        return (type(self), (self._tokens,))

    def __repr__(self) -> str:
        return f"FrozenVocabulary(size={len(self._tokens)})"


class Vocabulary:
    """A growing string <-> id mapping with deterministic growth.

    ``intern`` appends unseen tokens; ``intern_sorted`` bulk-interns a
    token collection adding its *new* tokens in sorted order (the
    determinism rule above); ``intern_sets`` applies that rule to a
    batch of keyword sets and returns their id-set forms — the call
    the per-interval generation stage makes once per interval.
    """

    __slots__ = ("_tokens", "_ids")

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._tokens: List[str] = []
        self._ids: Dict[str, int] = {}
        for token in tokens:
            self.intern(token)

    @property
    def tokens(self) -> Tuple[str, ...]:
        """The current id-ordered token table (a copy)."""
        return tuple(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def intern(self, token: str) -> int:
        """The id of *token*, assigning the next id when unseen."""
        token_id = self._ids.get(token)
        if token_id is None:
            token_id = len(self._tokens)
            self._ids[token] = token_id
            self._tokens.append(token)
        return token_id

    def intern_sorted(self, tokens: Iterable[str]) -> None:
        """Intern a token collection, new tokens in sorted order.

        This is the deterministic bulk form: the resulting ids depend
        only on the vocabulary's prior state and the token *set*, not
        on the iteration order of *tokens*.
        """
        ids = self._ids
        fresh = sorted({token for token in tokens
                        if token not in ids})
        for token in fresh:
            self.intern(token)

    def intern_sets(self, keyword_sets: Iterable[Iterable[str]]
                    ) -> List[FrozenSet[int]]:
        """Intern a batch of keyword sets; return their id-set forms.

        New tokens across the whole batch are assigned ids in sorted
        order, so for a fresh vocabulary id order equals lexicographic
        token order — which makes an interned interval's pipeline
        (pair emission sorts keywords per document) behave
        *positionally identically* to the string-era one.
        """
        materialized = [frozenset(kws) for kws in keyword_sets]
        union: set = set()
        for keywords in materialized:
            union |= keywords
        self.intern_sorted(union)
        ids = self._ids
        return [frozenset(ids[token] for token in keywords)
                for keywords in materialized]

    def id_of(self, token: str) -> int:
        """The id of *token*; KeyError when not interned."""
        return self._ids[token]

    def decode(self, token_id: int) -> str:
        """The token behind *token_id*."""
        return self._tokens[token_id]

    def decode_all(self, token_ids: Iterable[int]) -> FrozenSet[str]:
        """Decode a collection of ids to the keyword string set."""
        tokens = self._tokens
        return frozenset(tokens[i] for i in token_ids)

    def freeze(self) -> FrozenVocabulary:
        """An immutable, compactly-picklable snapshot of this state."""
        return FrozenVocabulary(self._tokens)

    def __reduce__(self):
        return (type(self), (tuple(self._tokens),))

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self._tokens)})"


# Anything a KeywordCluster may be bound to: the growing corpus
# vocabulary in-process, a frozen snapshot across a process boundary.
VocabularyLike = Union[Vocabulary, FrozenVocabulary]
