"""The solver registry: five algorithms behind one interface.

Each entry adapts one of the search implementations in
:mod:`repro.core` to the uniform :class:`Solver` surface —
``solve(graph, query, backend=..., stats=..., plan=...)`` — so the
pipeline, CLI, streaming front end and benchmarks can pick algorithms
by name (or let the planner pick) instead of importing solver-specific
functions.  ``register`` adds new solvers; future PRs plug in here.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.bfs import BFSEngine, BFSStats
from repro.core.bruteforce import bruteforce_normalized, bruteforce_topk
from repro.core.cluster_graph import ClusterGraph
from repro.core.dfs import DFSEngine, DFSStats
from repro.core.normalized import NormalizedBFSEngine, NormalizedStats
from repro.core.paths import Path
from repro.core.solver_stats import SolverStats
from repro.core.ta import TAEngine, TAStats
from repro.storage.backends import StateStore


class Solver:
    """Base class / protocol for a registered solver.

    Subclasses set ``name`` and ``problems`` (the query problems they
    can answer) and implement :meth:`solve`.  ``supports`` returns a
    human-readable reason when a query is out of the solver's domain,
    or ``None`` when it can run — the engine raises on mismatch and
    the planner uses it to restrict its choices.
    """

    name: str = ""
    problems = ("kl",)
    #: True when the solver only answers full-path queries (l = m - 1).
    full_paths_only: bool = False
    #: True when the solver can keep node state in a StateStore.
    uses_backend: bool = False

    def supports(self, query, num_intervals: int) -> Optional[str]:
        """Reason this solver cannot answer *query* (None = it can)."""
        if query.problem not in self.problems:
            return (f"{self.name} answers {self.problems} queries, "
                    f"not {query.problem!r}")
        if (self.full_paths_only
                and not query.is_full_paths(num_intervals)):
            return (f"{self.name} only answers full-path queries "
                    f"(l = m - 1)")
        return None

    def new_stats(self) -> SolverStats:
        """A fresh stats object of this solver's counter type."""
        return SolverStats()

    def solve(self, graph: ClusterGraph, query,
              backend: Optional[StateStore] = None,
              stats: Optional[SolverStats] = None,
              plan=None) -> List[Path]:
        """Answer *query* over *graph*; top-k paths, best first."""
        raise NotImplementedError


class BFSSolver(Solver):
    """Algorithm 2: one temporal pass with a sliding window of heaps.

    Honours the plan's ``window_block_nodes`` (the paper's M < Mreq
    block-nested mode) and writes per-node heaps to *backend* when one
    is given (enabling streaming restarts)."""

    name = "bfs"
    uses_backend = True

    def new_stats(self) -> BFSStats:
        """Fresh BFS counters."""
        return BFSStats()

    def solve(self, graph, query, backend=None, stats=None,
              plan=None) -> List[Path]:
        """Run the sliding-window BFS for *query*."""
        length = query.length_for(graph.num_intervals)
        if length > graph.num_intervals - 1:
            return []
        window_block_nodes = getattr(plan, "window_block_nodes", None)
        engine = BFSEngine(l=length, k=query.k, gap=graph.gap,
                           store=backend,
                           window_block_nodes=window_block_nodes,
                           stats=stats)
        for i in range(graph.num_intervals):
            engine.process_interval(
                i,
                [(node, graph.parents(node))
                 for node in graph.nodes_at(i)])
        return engine.results()


class DFSSolver(Solver):
    """Algorithm 3: depth-first search with the min-k pruning bound.

    Node annotations live in the :class:`StateStore`; only O(m)
    stack frames stay resident."""

    name = "dfs"
    uses_backend = True

    def new_stats(self) -> DFSStats:
        """Fresh DFS counters."""
        return DFSStats()

    def solve(self, graph, query, backend=None, stats=None,
              plan=None) -> List[Path]:
        """Run the pruned DFS for *query*."""
        length = query.length_for(graph.num_intervals)
        engine = DFSEngine(graph, l=length, k=query.k, store=backend,
                           stats=stats)
        return engine.run()


class TASolver(Solver):
    """Section 4.4's Threshold Algorithm adaptation.

    Full paths only, practical for small m (random probes can
    reach m^(d-1))."""

    name = "ta"
    full_paths_only = True

    def new_stats(self) -> TAStats:
        """Fresh TA counters."""
        return TAStats()

    def solve(self, graph, query, backend=None, stats=None,
              plan=None) -> List[Path]:
        """Run the TA scan for *query* (l is fixed to m - 1)."""
        if query.length_for(graph.num_intervals) > graph.num_intervals - 1:
            return []
        return TAEngine(graph, k=query.k, stats=stats).run()


class NormalizedSolver(Solver):
    """Problem 2: weight/length scoring with Theorem-1 pruning.

    A sliding-window search; ``exact=True`` disables pruning for
    oracle use."""

    name = "normalized"
    problems = ("normalized",)
    uses_backend = True

    def new_stats(self) -> NormalizedStats:
        """Fresh normalized-BFS counters."""
        return NormalizedStats()

    def solve(self, graph, query, backend=None, stats=None,
              plan=None) -> List[Path]:
        """Run the normalized BFS for *query*."""
        lmin = query.length_for(graph.num_intervals)
        if lmin > graph.num_intervals - 1:
            return []
        engine = NormalizedBFSEngine(lmin=lmin, k=query.k,
                                     gap=graph.gap, exact=query.exact,
                                     store=backend,
                                     stats=stats)
        for i in range(graph.num_intervals):
            engine.process_interval(
                i,
                [(node, graph.parents(node))
                 for node in graph.nodes_at(i)])
        return engine.results()


class BruteforceSolver(Solver):
    """Exact exponential enumeration, the ground-truth oracle.

    Answers both problems; small graphs only."""

    name = "bruteforce"
    problems = ("kl", "normalized")

    def solve(self, graph, query, backend=None, stats=None,
              plan=None) -> List[Path]:
        """Enumerate every admissible path and keep the top-k."""
        length = query.length_for(graph.num_intervals)
        if length > graph.num_intervals - 1:
            return []
        if query.problem == "normalized":
            return bruteforce_normalized(graph, lmin=length, k=query.k)
        return bruteforce_topk(graph, l=length, k=query.k)


_REGISTRY: Dict[str, Solver] = {}


def register(solver: Solver) -> Solver:
    """Add *solver* to the registry (last registration wins)."""
    if not solver.name:
        raise ValueError("solver must set a non-empty name")
    _REGISTRY[solver.name] = solver
    return solver


def get_solver(name: str) -> Solver:
    """Look up a registered solver by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown solver {name!r}; registered: "
            f"{sorted(_REGISTRY)}") from None


def solver_names() -> List[str]:
    """Names of all registered solvers, sorted."""
    return sorted(_REGISTRY)


for _solver in (BFSSolver(), DFSSolver(), TASolver(),
                NormalizedSolver(), BruteforceSolver()):
    register(_solver)
