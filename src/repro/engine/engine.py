"""The unified solve entry point every consumer routes through.

``solve(graph, query)`` is the one call that answers a
:class:`~repro.engine.query.StableQuery` over a cluster graph: it
plans (or accepts a solver by name), opens the planned storage
backend, runs the solver, applies the query's diversification policy,
and returns the top-k paths together with nothing hidden — callers
that want the decision or the work counters use ``explain`` /
``solve_report``.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from typing import List, Optional

from repro.core.cluster_graph import ClusterGraph
from repro.core.diversify import diversify_paths
from repro.core.paths import Path
from repro.core.solver_stats import SolverStats
from repro.engine.planner import (
    MAX_BLOCK_PASSES,
    ExecutionPlan,
    GraphStats,
    apply_worker_dimension,
    estimate_annotation_bytes,
    estimate_window_bytes,
    plan,
    size_disk_backend,
)
from repro.engine.query import StableQuery
from repro.engine.solvers import Solver, get_solver
from repro.storage.backends import StateStore, open_store

AUTO = "auto"


@dataclass
class SolveReport:
    """Everything one engine run produced: paths, plan, counters."""

    paths: List[Path]
    plan: ExecutionPlan
    stats: SolverStats


def explain(graph_or_stats, query: StableQuery,
            memory_budget: Optional[int] = None) -> ExecutionPlan:
    """Plan *query* without executing it.

    Accepts either a :class:`~repro.core.cluster_graph.ClusterGraph`
    (measured on the spot) or pre-computed
    :class:`~repro.engine.planner.GraphStats` — the latter lets the
    CLI explain hypothetical workloads no one has generated yet.
    """
    if isinstance(graph_or_stats, GraphStats):
        graph_stats = graph_or_stats
    else:
        graph_stats = GraphStats.from_graph(graph_or_stats)
    return plan(query, graph_stats, memory_budget=memory_budget)


def _resolve_plan(graph: ClusterGraph, query: StableQuery,
                  solver: str) -> ExecutionPlan:
    """The plan for *query*: the planner's, or — for a forced solver
    — one that still applies the memory model (block-nested BFS /
    disk-backed DFS) so ``memory_budget`` is honoured either way."""
    if solver == AUTO:
        return explain(graph, query)
    chosen = get_solver(solver)
    reason = chosen.supports(query, graph.num_intervals)
    if reason is not None:
        raise ValueError(reason)
    graph_stats = GraphStats.from_graph(graph)
    window_bytes = estimate_window_bytes(query, graph_stats)
    budget = query.memory_budget
    execution = ExecutionPlan(
        solver=solver,
        backend="memory",
        estimated_window_bytes=window_bytes,
        query=query,
        graph_stats=graph_stats,
        memory_budget=budget)
    execution.reasons.append(f"solver {solver!r} forced by caller")
    apply_worker_dimension(execution, query, graph_stats)
    if budget is not None and solver == "bfs" \
            and window_bytes > budget:
        window_nodes = max(
            1, graph_stats.max_interval_nodes * (graph_stats.gap + 1))
        bytes_per_node = max(1, window_bytes // window_nodes)
        execution.window_block_nodes = max(
            1, int(budget // bytes_per_node))
        execution.backend = "disk"
        execution.reasons.append(
            f"window exceeds budget "
            f"{window_bytes / budget:.1f}x: block-nested passes of "
            f"{execution.window_block_nodes} window nodes")
    elif solver == "dfs" and budget is not None \
            and window_bytes > MAX_BLOCK_PASSES * budget:
        size_disk_backend(execution,
                          estimate_annotation_bytes(query, graph_stats))
        execution.reasons.append(
            "annotations kept out of memory to respect the budget")
    return execution


def solve_report(graph: ClusterGraph, query: StableQuery,
                 solver: str = AUTO,
                 backend: Optional[StateStore] = None,
                 stats: Optional[SolverStats] = None,
                 execution_plan: Optional[ExecutionPlan] = None
                 ) -> SolveReport:
    """Answer *query* and return paths plus the plan and counters.

    ``solver='auto'`` routes through the cost-based planner; a name
    (``bfs``/``dfs``/``ta``/``normalized``/``bruteforce``) forces that
    algorithm.  A caller-supplied *backend* overrides the planned one
    (its lifecycle stays with the caller); otherwise the engine opens
    the planned backend in a temporary directory and disposes of it
    after the run.
    """
    if execution_plan is None:
        execution_plan = _resolve_plan(graph, query, solver)
    chosen: Solver = get_solver(execution_plan.solver)
    reason = chosen.supports(query, graph.num_intervals)
    if reason is not None:
        raise ValueError(reason)
    if stats is None:
        stats = chosen.new_stats()

    run_k = query.k
    run_query = query
    if query.diverse:
        run_query = query.with_k(query.diverse_pool_factor * query.k)

    owned_dir: Optional[str] = None
    store = backend
    try:
        if (store is None and chosen.uses_backend
                and execution_plan.backend != "memory"):
            owned_dir = tempfile.mkdtemp(prefix="repro-engine-")
            store = open_store(
                execution_plan.backend,
                directory=owned_dir,
                num_shards=execution_plan.num_shards,
                compact_garbage_bytes=(
                    execution_plan.compact_garbage_bytes))
        paths = chosen.solve(graph, run_query, backend=store,
                             stats=stats, plan=execution_plan)
    finally:
        if owned_dir is not None:
            if store is not None:
                store.close()
            shutil.rmtree(owned_dir, ignore_errors=True)

    if query.diverse:
        paths = diversify_paths(paths, run_k,
                                policy=query.diverse_policy)
    return SolveReport(paths=paths, plan=execution_plan, stats=stats)


def solve(graph: ClusterGraph, query: StableQuery,
          solver: str = AUTO,
          backend: Optional[StateStore] = None,
          stats: Optional[SolverStats] = None,
          execution_plan: Optional[ExecutionPlan] = None) -> List[Path]:
    """Answer *query* over *graph*; top-k paths, best first.

    The convenience form of :func:`solve_report` for callers that only
    want the paths.
    """
    return solve_report(graph, query, solver=solver, backend=backend,
                        stats=stats, execution_plan=execution_plan).paths
