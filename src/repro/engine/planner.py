"""Cost-based planning: which solver, which backend, how much memory.

The paper's Section 4 analyses each algorithm's memory footprint: the
BFS keeps a sliding window of ``g + 1`` intervals of per-node heaps
(``Mreq`` below), degrades to block-nested passes when the buffer M is
smaller ("this situation is very similar to block-nested loops"), while
the DFS keeps only O(m) frames resident with annotations on disk, and
the TA adaptation is practical only when its probe count — up to
``m^(d-1)`` — stays small.  The planner turns that analysis into code:
given a :class:`~repro.engine.query.StableQuery` and the graph's shape
statistics it estimates the window footprint and emits an
:class:`ExecutionPlan` naming the solver, the storage backend, and the
block size when the window must be processed in pieces.  ``explain()``
renders the decision the way database EXPLAIN statements do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.cluster_graph import ClusterGraph
from repro.engine.query import StableQuery
from repro.parallel import resolve_workers

# Footprint model constants (CPython-ish object sizes; the estimate
# only needs to be proportionally right, budgets are advisory).
PATH_OVERHEAD_BYTES = 96      # Path object + tuple header
NODE_ID_BYTES = 16            # one (interval, index) entry
HEAP_OVERHEAD_BYTES = 120     # TopK + list/set headers per heap

# TA is chosen only when its probe count stays below this bound.
TA_MAX_PROBES = 2000

# When the window overshoots the budget by more than this factor,
# block-nested BFS would need that many passes per interval; beyond it
# the DFS + on-disk annotations is the better trade (paper Table 3's
# regime boundary, qualitatively).
MAX_BLOCK_PASSES = 16

# Estimated on-disk annotation volume above which the disk backend is
# sharded so compaction and future parallel I/O work per-partition.
SHARD_BYTES = 8 * 1024 * 1024
SHARD_TARGET_BYTES = 4 * 1024 * 1024
MAX_SHARDS = 16

# Dead bytes a shard may accumulate before it compacts itself.
COMPACT_GARBAGE_BYTES = SHARD_TARGET_BYTES

# Two-level similarity-join cost model (Section 4.1 edge build):
# share of an interval pair's n² comparisons the prefix filter emits
# as candidates, and the share of those candidates the level-two
# signature (length band + checksum band) passes on to exact
# verification.  Calibrated against bench_simjoin_signatures, whose
# reduction floor (>= 40% of candidates rejected) keeps the second
# constant honest.
PREFIX_CANDIDATE_FRACTION = 0.25
SIGNATURE_VERIFY_FRACTION = 0.6

# Persistent-index cost model (varint-codec record sizes, measured at
# bench scale; the estimate only needs to be proportionally right).
INDEX_KEYWORDS_PER_CLUSTER = 8   # typical biconnected component
INDEX_TOKEN_BYTES = 3            # varint id in a cluster record
INDEX_EDGE_BYTES = 14            # two varint ids + float64 rho
INDEX_POSTING_BYTES = 4          # id -> cluster-list entry
INDEX_RECORD_OVERHEAD = 10       # frame + crc + tuple headers

# Serving-tier cost model (the repro.serving HTTP layer): how a
# --memory-budget splits between the two read caches and the
# per-request working memory that bounds the admission pool.
SERVING_ANSWER_BYTES = 480       # one cached Refinement + suggestions
SERVING_CLUSTER_BYTES = 900      # one decoded KeywordCluster + LRU slot
SERVING_REQUEST_BYTES = 64 * 1024  # working memory per in-flight request
SERVING_HOT_SHARE = 0.4          # budget share: hot-keyword answers
SERVING_CLUSTER_SHARE = 0.4      # budget share: decoded clusters
SERVING_MIN_ENTRIES = 32         # caches never sized below this
SERVING_MIN_INFLIGHT = 2         # admission pool bounds
SERVING_MAX_INFLIGHT = 128
# Defaults when serving without a budget (match the service/reader
# constructor defaults: 256 hot answers, 1024 decoded clusters).
SERVING_DEFAULT_HOT = 256
SERVING_DEFAULT_CLUSTERS = 1024
SERVING_DEFAULT_INFLIGHT = 32
SERVING_DEFAULT_SKEW = 1.0       # Zipf exponent of keyword popularity

# Corpus-ingest cost model (explain --corpus): how a measured corpus
# shape maps onto the paper's graph shape before any clustering runs.
# Section 3 keeps only chi-square-significant biconnected components,
# so clusters are far sparser than documents; the divisor is
# calibrated against the synthetic-week demo corpus and the DBLP
# fixture (both land within 2x).
CORPUS_DOCS_PER_CLUSTER = 60
CORPUS_DEFAULT_DEGREE = 3.0      # d when no graph has been built yet


@dataclass(frozen=True)
class GraphStats:
    """Shape statistics of a cluster graph (the paper's m, n, d, g)."""

    num_intervals: int              # m
    max_interval_nodes: int         # n (largest T_i)
    avg_out_degree: float           # d
    gap: int                        # g
    num_nodes: int = 0
    num_edges: int = 0

    @classmethod
    def from_graph(cls, graph: ClusterGraph) -> "GraphStats":
        """Measure *graph* (one cheap pass over interval sizes)."""
        sizes = [graph.interval_size(i)
                 for i in range(graph.num_intervals)]
        num_nodes = sum(sizes)
        avg_degree = (graph.num_edges / num_nodes) if num_nodes else 0.0
        return cls(num_intervals=graph.num_intervals,
                   max_interval_nodes=max(sizes) if sizes else 0,
                   avg_out_degree=avg_degree,
                   gap=graph.gap,
                   num_nodes=num_nodes,
                   num_edges=graph.num_edges)

    def describe(self) -> str:
        """Compact m/n/d/g rendering for explain output."""
        return (f"m={self.num_intervals} n={self.max_interval_nodes} "
                f"d={self.avg_out_degree:.1f} g={self.gap} "
                f"nodes={self.num_nodes} edges={self.num_edges}")


@dataclass(frozen=True)
class CorpusStats:
    """Measured shape of an ingested corpus (documents, not clusters).

    The corpus analogue of :class:`GraphStats`: what ``explain
    --corpus`` measures from a real source before any clustering has
    run, and what :func:`estimate_corpus_graph` turns into an
    expected graph shape.
    """

    num_intervals: int
    num_documents: int
    max_interval_documents: int
    source: str = ""
    format: str = ""

    @classmethod
    def measure(cls, corpus, source: str = "",
                format: str = "") -> "CorpusStats":
        """Measure an :class:`~repro.text.IntervalCorpus` (one pass)."""
        sizes = [len(corpus.documents(i))
                 for i in corpus.interval_indices]
        return cls(num_intervals=corpus.num_intervals,
                   num_documents=corpus.num_documents,
                   max_interval_documents=max(sizes) if sizes else 0,
                   source=source, format=format)

    def describe(self) -> str:
        """Compact rendering for explain output."""
        where = f" from {self.source}" if self.source else ""
        label = f" ({self.format})" if self.format else ""
        return (f"{self.num_documents} docs over "
                f"{self.num_intervals} intervals, max "
                f"{self.max_interval_documents}/interval"
                f"{where}{label}")


def estimate_corpus_graph(corpus_stats: CorpusStats,
                          gap: int = 0) -> GraphStats:
    """Forecast the cluster-graph shape a corpus will generate.

    Scales document counts down by :data:`CORPUS_DOCS_PER_CLUSTER`
    (Section 3 keeps only significant biconnected components) and
    assumes :data:`CORPUS_DEFAULT_DEGREE` window-join connectivity —
    enough for the Section-4 memory model to size windows and
    backends before the expensive stages run.
    """
    m = corpus_stats.num_intervals
    n = max(1, int(math.ceil(corpus_stats.max_interval_documents
                             / CORPUS_DOCS_PER_CLUSTER)))
    nodes = max(1, int(math.ceil(corpus_stats.num_documents
                                 / CORPUS_DOCS_PER_CLUSTER)))
    if m < 1:
        return GraphStats(num_intervals=0, max_interval_nodes=0,
                          avg_out_degree=0.0, gap=gap)
    return GraphStats(num_intervals=m, max_interval_nodes=n,
                      avg_out_degree=CORPUS_DEFAULT_DEGREE, gap=gap,
                      num_nodes=nodes,
                      num_edges=int(nodes * CORPUS_DEFAULT_DEGREE))


def apply_corpus_dimension(result: "ExecutionPlan",
                           corpus_stats: CorpusStats) -> None:
    """Record a measured corpus shape on a plan (``explain --corpus``).

    The graph estimate itself is produced by
    :func:`estimate_corpus_graph` and fed to the planner as its
    ``graph_stats``; this dimension keeps the measured document
    counts visible alongside it and says how they were scaled.
    """
    result.corpus_stats = corpus_stats
    result.reasons.append(
        f"graph shape estimated from the measured corpus: "
        f"~{CORPUS_DOCS_PER_CLUSTER} docs/cluster "
        f"(Section-3 pruning), d={CORPUS_DEFAULT_DEGREE:g} assumed")


@dataclass
class ExecutionPlan:
    """The planner's decision: solver, backend, and sizing.

    ``backend`` is a spec for :func:`repro.storage.open_store`
    (``"memory"``, ``"disk"`` or ``"sharded"``); ``window_block_nodes``
    is set only for block-nested BFS.  ``reasons`` records each rule
    that fired, in order, for :meth:`explain`.
    """

    solver: str
    backend: str = "memory"
    workers: int = 1
    window_block_nodes: Optional[int] = None
    num_shards: int = 1
    compact_garbage_bytes: Optional[int] = None
    estimated_window_bytes: int = 0
    memory_budget: Optional[int] = None
    query: Optional[StableQuery] = None
    graph_stats: Optional[GraphStats] = None
    # Corpus dimension (apply_corpus_dimension): the measured document
    # shape a real source was found to have, when the plan's graph
    # stats are an estimate_corpus_graph forecast rather than a
    # measured graph.  None = the plan was made from graph shape
    # directly.
    corpus_stats: Optional[CorpusStats] = None
    # Interned-keyword count of the run's corpus vocabulary; filled in
    # by pipelines once generation has run (the planner cannot know it
    # up front).  None = no vocabulary measured for this plan.
    vocab_size: Optional[int] = None
    # Persistent-index cost dimension: where the run serialized its
    # clusters/postings/paths and how many log bytes that took.
    # Filled in by the pipelines after the write (like vocab_size);
    # None = the run was not asked to persist an index.
    index_dir: Optional[str] = None
    index_bytes: Optional[int] = None
    # Segment-lifecycle dimension of the persistent index: how many
    # segments the run leaves in the tier (estimated up front via
    # apply_index_dimension, overwritten with the measured count
    # after the write), and the log bytes a size-tiered compaction
    # is expected to rewrite once the segment count passes the merge
    # policy's trigger.  None = no index dimension planned.
    index_segments: Optional[int] = None
    index_merge_bytes: Optional[int] = None
    # Similarity-join cost dimension: estimated prefix-filter
    # candidate pairs per interval window, and how many of them the
    # two-level signature is expected to pass to exact verification.
    # None = graph shape unknown (no estimate possible).
    join_candidate_pairs: Optional[int] = None
    join_verified_pairs: Optional[int] = None
    # Serving dimension (apply_serving_dimension): how the HTTP tier's
    # cache budget splits into hot-keyword answers and decoded cluster
    # records, the admission pool that bounds in-flight requests, and
    # the refine hit rate forecast from the keyword skew against the
    # hot working set.  None = no serving tier planned.
    serving_hot_entries: Optional[int] = None
    serving_cluster_entries: Optional[int] = None
    serving_max_inflight: Optional[int] = None
    serving_hot_keywords: Optional[int] = None
    serving_hit_rate: Optional[float] = None
    # Distributed scatter-gather dimension (apply_distributed_
    # dimension): fan-out width of the shard worker pool, each
    # worker's share of the index working set, the partial answers
    # merged per query, and the straggler budget before a partial is
    # hedged to its replica worker.  None = queries stay in-process.
    distributed_workers: Optional[int] = None
    distributed_worker_bytes: Optional[int] = None
    distributed_merge_fanin: Optional[int] = None
    distributed_hedge_ms: Optional[float] = None
    reasons: List[str] = field(default_factory=list)

    def explain(self) -> str:
        """Multi-line EXPLAIN-style rendering of the decision."""
        lines = ["execution plan"]
        if self.query is not None:
            lines.append(f"  query:    {self.query.describe()}")
        if self.corpus_stats is not None:
            lines.append(f"  corpus:   {self.corpus_stats.describe()}")
        if self.graph_stats is not None:
            lines.append(f"  graph:    {self.graph_stats.describe()}")
        if self.vocab_size is not None:
            lines.append(f"  vocab:    {self.vocab_size} interned "
                         f"keywords (ids end-to-end, strings decoded "
                         f"at the edge)")
        lines.append(
            f"  window:   ~{_human_bytes(self.estimated_window_bytes)} "
            f"estimated (Section 4 model)")
        budget = ("unbounded" if self.memory_budget is None
                  else _human_bytes(self.memory_budget))
        lines.append(f"  budget:   {budget}")
        choice = f"  solver:   {self.solver}"
        if self.window_block_nodes is not None:
            choice += (f" (block-nested, "
                       f"{self.window_block_nodes} window nodes/pass)")
        lines.append(choice)
        backend = f"  backend:  {self.backend}"
        if self.backend == "sharded":
            backend += f" ({self.num_shards} shards)"
        lines.append(backend)
        if self.index_dir is not None:
            size = ("pending" if self.index_bytes is None
                    else _human_bytes(self.index_bytes))
            lines.append(
                f"  index:    {size} persisted at {self.index_dir} "
                f"(clusters + keyword postings + stable paths)")
        if self.index_segments is not None:
            segments = (f"  segments: {self.index_segments} in the "
                        f"index's tier")
            if self.index_merge_bytes:
                segments += (f", ~"
                             f"{_human_bytes(self.index_merge_bytes)}"
                             f" size-tiered merge rewrite expected")
            lines.append(segments)
        if self.join_candidate_pairs is not None:
            lines.append(
                f"  join:     ~{self.join_candidate_pairs} candidate "
                f"pairs/interval window, ~{self.join_verified_pairs} "
                f"verified (two-level signature filter)")
        if self.serving_hot_entries is not None:
            lines.append(
                f"  serving:  {self.serving_hot_entries} hot answers "
                f"+ {self.serving_cluster_entries} cluster records "
                f"cached, {self.serving_max_inflight} in-flight "
                f"requests admitted")
            lines.append(
                f"            ~{self.serving_hot_keywords} keyword "
                f"working set -> "
                f"~{100 * (self.serving_hit_rate or 0):.0f}% refine "
                f"hit-rate forecast")
        if self.distributed_workers is not None:
            lines.append(
                f"  shards:   {self.distributed_workers} "
                f"scatter-gather workers, "
                f"~{_human_bytes(self.distributed_worker_bytes or 0)}"
                f" working set each")
            lines.append(
                f"            {self.distributed_merge_fanin} partial "
                f"answers merged/query, stragglers hedged after "
                f"{self.distributed_hedge_ms or 0:.0f}ms")
        if self.workers > 1:
            # The plan fixes the degree, not the pool kind — a caller
            # may supply a thread executor instead of the default
            # process pool.
            lines.append(f"  workers:  {self.workers} (pipeline "
                         f"stages fan out in parallel)")
        else:
            lines.append("  workers:  serial")
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        return "\n".join(lines)


def _human_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MiB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KiB"
    return f"{n}B"


def estimate_window_bytes(query: StableQuery,
                          graph_stats: GraphStats) -> int:
    """Section 4's ``Mreq``: bytes the BFS sliding window needs.

    The window holds ``g + 1`` intervals of up to ``n`` nodes; each
    node keeps a heap of ``k`` paths per admissible length.  For
    Problem 1 that is up to ``l`` heaps per node (one per length),
    except in the full-path case where only one length is reachable
    per node; for Problem 2 the ``smallpaths``/``bestpaths`` state is
    modelled the same way with ``lmin`` length classes.  A path of
    length ``x <= l`` stores at most ``l + 1`` node ids.
    """
    m = graph_stats.num_intervals
    n = graph_stats.max_interval_nodes
    if m < 1 or n < 1:
        return 0
    length = max(1, min(query.length_for(m), max(1, m - 1)))
    if query.problem == "kl" and query.is_full_paths(m):
        heaps_per_node = 1  # only one span is reachable per node
    else:
        heaps_per_node = length
    window_nodes = n * (graph_stats.gap + 1)
    path_bytes = PATH_OVERHEAD_BYTES + NODE_ID_BYTES * (length + 1)
    return window_nodes * heaps_per_node * (
        HEAP_OVERHEAD_BYTES + query.k * path_bytes)


def estimate_annotation_bytes(query: StableQuery,
                              graph_stats: GraphStats) -> int:
    """On-disk volume of a DFS run's node annotations.

    Unlike the BFS window (``g + 1`` resident intervals), the DFS
    annotates nodes of *all* ``m`` intervals with state of the same
    per-node magnitude, so the volume scales the window estimate by
    ``m / (g + 1)``.
    """
    m = graph_stats.num_intervals
    per_window = estimate_window_bytes(query, graph_stats)
    return int(per_window * m / (graph_stats.gap + 1))


def estimate_index_bytes(graph_stats: GraphStats) -> int:
    """Estimate a run's persistent-index size on disk.

    Each of the ~``m * n`` clusters costs one record (keywords as
    varint ids plus supporting edges) and one posting entry per
    keyword; the token table and path log are small by comparison and
    folded into the per-record overhead.
    """
    clusters = graph_stats.num_nodes or (
        graph_stats.num_intervals * graph_stats.max_interval_nodes)
    per_cluster = (
        INDEX_RECORD_OVERHEAD
        + INDEX_KEYWORDS_PER_CLUSTER
        * (INDEX_TOKEN_BYTES + INDEX_POSTING_BYTES)
        + INDEX_KEYWORDS_PER_CLUSTER * INDEX_EDGE_BYTES)
    return clusters * per_cluster


# Trigger mirrored from repro.index.merge.MergePolicy (the planner
# stays below the index package in the layering, so the default is
# restated rather than imported).
INDEX_MERGE_MAX_SEGMENTS = 4


def estimate_index_segments(graph_stats: GraphStats,
                            flush_intervals: Optional[int] = None
                            ) -> int:
    """Segments a run is expected to leave in the index tier.

    A batch run seals one segment at finalize; a streaming run seals
    one every *flush_intervals* ingested intervals (``None`` = no
    periodic flush, a single close-time segment).
    """
    m = max(1, graph_stats.num_intervals)
    if not flush_intervals:
        return 1
    return max(1, math.ceil(m / flush_intervals))


def apply_index_dimension(result: ExecutionPlan,
                          graph_stats: GraphStats,
                          flush_intervals: Optional[int] = None
                          ) -> None:
    """Record the segment-count/merge-cost estimate on a plan.

    Called when the run will maintain a persistent index; the merge
    rewrite estimate covers the whole index volume once the expected
    segment count passes the size-tiered trigger (compaction copies
    every surviving record of its inputs).
    """
    segments = estimate_index_segments(graph_stats, flush_intervals)
    result.index_segments = segments
    if segments > INDEX_MERGE_MAX_SEGMENTS:
        result.index_merge_bytes = estimate_index_bytes(graph_stats)
        result.reasons.append(
            f"~{segments} index segments exceed the merge policy's "
            f"{INDEX_MERGE_MAX_SEGMENTS}: size-tiered compaction "
            f"will rewrite "
            f"~{_human_bytes(result.index_merge_bytes)}")
    else:
        result.index_merge_bytes = 0


def estimate_join_candidates(graph_stats: GraphStats
                             ) -> Tuple[int, int]:
    """Estimate one interval's similarity-join verification work.

    Joining a new interval's ``n`` clusters against the ``g + 1``
    resident window intervals compares up to ``n² * (g + 1)`` pairs;
    the prefix filter emits :data:`PREFIX_CANDIDATE_FRACTION` of them
    as candidates, and the level-two signature passes
    :data:`SIGNATURE_VERIFY_FRACTION` of those on to exact
    verification.  Returns ``(candidate_pairs, verified_pairs)``.
    """
    n = graph_stats.max_interval_nodes
    pairs = n * n * (graph_stats.gap + 1)
    candidates = int(math.ceil(pairs * PREFIX_CANDIDATE_FRACTION))
    verified = int(math.ceil(candidates * SIGNATURE_VERIFY_FRACTION))
    return candidates, verified


def apply_join_dimension(result: ExecutionPlan,
                         graph_stats: GraphStats) -> None:
    """Record the join-candidate estimate on a plan.

    Shared between the batch and streaming planners; skipped for
    shapes with no per-interval clusters to join.
    """
    if graph_stats.max_interval_nodes < 1:
        return
    candidates, verified = estimate_join_candidates(graph_stats)
    result.join_candidate_pairs = candidates
    result.join_verified_pairs = verified


def estimate_serving_working_set(graph_stats: GraphStats) -> int:
    """Distinct stems with a cluster in one serving interval.

    Refinement queries target one interval at a time (the latest, for
    a live index), so the hot-keyword working set is that interval's
    keyword count — ~``n`` clusters of
    :data:`INDEX_KEYWORDS_PER_CLUSTER` stems each.
    """
    return max(1, graph_stats.max_interval_nodes
               * INDEX_KEYWORDS_PER_CLUSTER)


def forecast_serving_hit_rate(cache_entries: int, working_set: int,
                              skew: float = SERVING_DEFAULT_SKEW
                              ) -> float:
    """Forecast the hot-answer LRU hit rate under Zipf-skewed queries.

    Keyword popularity in query logs is Zipf-distributed (rank ``r``
    drawing ``1/r^skew`` of the traffic); an LRU of ``C`` entries ends
    up holding roughly the ``C`` most popular keys, so the hit rate is
    the share of probability mass they cover: the ratio of generalized
    harmonic numbers ``H(C, skew) / H(N, skew)`` over a working set of
    ``N`` keywords.  Clamped to [0, 1]; a cache at least as large as
    the working set always hits.
    """
    if working_set <= 0 or cache_entries >= working_set:
        return 1.0
    if cache_entries <= 0:
        return 0.0

    def harmonic(n: int) -> float:
        return sum(1.0 / (rank ** skew) for rank in range(1, n + 1))

    return min(1.0, harmonic(cache_entries) / harmonic(working_set))


def split_serving_budget(memory_budget: Optional[int]
                         ) -> Tuple[int, int, int]:
    """Split a serving memory budget into cache sizes and admission.

    Returns ``(hot_entries, cluster_entries, max_inflight)``:
    :data:`SERVING_HOT_SHARE` of the budget buys hot-keyword answer
    slots, :data:`SERVING_CLUSTER_SHARE` buys decoded-cluster slots,
    and the remainder bounds the admission pool at one request per
    :data:`SERVING_REQUEST_BYTES` of working memory.  ``None`` means
    no budget: the service/reader constructor defaults apply.
    """
    if memory_budget is None:
        return (SERVING_DEFAULT_HOT, SERVING_DEFAULT_CLUSTERS,
                SERVING_DEFAULT_INFLIGHT)
    hot = max(SERVING_MIN_ENTRIES,
              int(memory_budget * SERVING_HOT_SHARE
                  // SERVING_ANSWER_BYTES))
    clusters = max(SERVING_MIN_ENTRIES,
                   int(memory_budget * SERVING_CLUSTER_SHARE
                       // SERVING_CLUSTER_BYTES))
    request_budget = memory_budget * (
        1.0 - SERVING_HOT_SHARE - SERVING_CLUSTER_SHARE)
    inflight = int(request_budget // SERVING_REQUEST_BYTES)
    inflight = max(SERVING_MIN_INFLIGHT,
                   min(SERVING_MAX_INFLIGHT, inflight))
    return hot, clusters, inflight


def apply_serving_dimension(result: ExecutionPlan,
                            graph_stats: GraphStats,
                            memory_budget: Optional[int] = None,
                            skew: float = SERVING_DEFAULT_SKEW
                            ) -> None:
    """Record the serving-tier forecast on a plan (``explain --serve``).

    Splits *memory_budget* (falling back to the plan's own budget)
    across the hot-keyword and cluster caches plus the admission
    pool, then forecasts the refine hit rate from the keyword *skew*
    against the estimated working set.
    """
    budget = memory_budget if memory_budget is not None \
        else result.memory_budget
    hot, clusters, inflight = split_serving_budget(budget)
    working_set = estimate_serving_working_set(graph_stats)
    result.serving_hot_entries = hot
    result.serving_cluster_entries = clusters
    result.serving_max_inflight = inflight
    result.serving_hot_keywords = working_set
    result.serving_hit_rate = forecast_serving_hit_rate(
        hot, working_set, skew)
    if budget is None:
        result.reasons.append(
            "serving without a memory budget: constructor-default "
            f"caches ({SERVING_DEFAULT_HOT} answers, "
            f"{SERVING_DEFAULT_CLUSTERS} clusters), "
            f"{SERVING_DEFAULT_INFLIGHT} in-flight requests")
    else:
        result.reasons.append(
            f"serving budget {_human_bytes(budget)} split "
            f"{100 * SERVING_HOT_SHARE:.0f}/"
            f"{100 * SERVING_CLUSTER_SHARE:.0f}/"
            f"{100 * (1 - SERVING_HOT_SHARE - SERVING_CLUSTER_SHARE):.0f}"
            f"%: hot answers / cluster records / request admission")
    covered = "covers" if hot >= working_set else "partially covers"
    result.reasons.append(
        f"{hot}-entry hot cache {covered} the ~{working_set}-keyword "
        f"working set: ~{100 * result.serving_hit_rate:.0f}% refine "
        f"hit rate at Zipf skew {skew:g}")


# Distributed scatter-gather cost model.  The hedge default is
# restated from repro.distributed (the planner stays below that tier
# in the layering, like INDEX_MERGE_MAX_SEGMENTS above).
DISTRIBUTED_HEDGE_MS = 250.0


def apply_distributed_dimension(result: ExecutionPlan,
                                graph_stats: GraphStats,
                                workers: int,
                                hedge_ms: float = DISTRIBUTED_HEDGE_MS
                                ) -> None:
    """Record the scatter-gather forecast on a plan (``--shards N``).

    Fills the distributed dimension: fan-out width, each worker's
    share of the index working set (postings nodes are
    hash-partitioned, so shares are near-even), the merge fan-in a
    query pays (one partial answer per partition), and the hedging
    budget after which a straggling partial is re-sent to its
    replica worker.  Uses the plan's measured ``index_bytes`` when a
    write already ran, the Section-4 estimate otherwise.
    """
    workers = max(1, int(workers))
    total = result.index_bytes if result.index_bytes \
        else estimate_index_bytes(graph_stats)
    result.distributed_workers = workers
    result.distributed_worker_bytes = max(1, total // workers)
    result.distributed_merge_fanin = workers
    result.distributed_hedge_ms = float(hedge_ms)
    result.reasons.append(
        f"scatter-gather over {workers} worker(s): each owns "
        f"~1/{workers} of ~{_human_bytes(total)} index postings; a "
        f"partial outstanding past {hedge_ms:.0f}ms is hedged to its "
        f"replica")


def estimate_ta_probes(graph_stats: GraphStats) -> float:
    """Upper-bound the TA solver's random-probe work.

    Every full path may be enumerated, ~``n * d^(m-1)`` of them.
    """
    m = graph_stats.num_intervals
    if m < 2:
        return 0.0
    d = max(graph_stats.avg_out_degree, 1.0)
    try:
        return graph_stats.max_interval_nodes * d ** (m - 1)
    except OverflowError:
        return float("inf")


def apply_worker_dimension(result: ExecutionPlan, query: StableQuery,
                           graph_stats: GraphStats,
                           streaming: bool = False) -> None:
    """Set the plan's parallel dimension from the query's ``workers``.

    The unit of parallel work differs by mode: a batch run fans the
    Section-3 generation out across the ``m`` intervals, a streaming
    run partitions the window join's inverted index across at most
    ``n`` clusters per ingest.  Requests beyond those unit counts
    cannot help, so the planner clamps and says why.  ``workers=None``
    stays serial (parallelism is opt-in — it changes wall-clock, never
    answers, and small corpora lose to pool start-up).
    """
    if query.workers is None:
        return
    requested = resolve_workers(query.workers)
    if streaming:
        units = max(1, graph_stats.max_interval_nodes)
        unit_name = "window-join partitions (<= n clusters/interval)"
    else:
        units = max(1, graph_stats.num_intervals)
        unit_name = "per-interval generation tasks (m)"
    result.workers = max(1, min(requested, units))
    asked = "workers=auto (all cores)" if query.workers == 0 \
        else f"workers={requested}"
    if result.workers < requested:
        result.reasons.append(
            f"{asked} clamped to {result.workers}: only "
            f"{units} {unit_name}")
    elif result.workers > 1:
        result.reasons.append(
            f"{asked}: parallel stages fan out on "
            f"{result.workers} workers over {unit_name}")
    else:
        result.reasons.append(f"{asked} resolves to serial")


def plan(query: StableQuery, graph_stats: GraphStats,
         memory_budget: Optional[int] = None) -> ExecutionPlan:
    """Pick a solver and backend for *query*.

    *graph_stats* describes the target graph's shape.
    *memory_budget* (bytes) overrides ``query.memory_budget``;
    ``None`` means unbounded.  Rules, in order:

    * normalized queries have one engine — the normalized BFS;
    * full-path kl queries go to TA when the probe bound is small;
    * the BFS runs in memory when the estimated window fits the
      budget;
    * a window within ``MAX_BLOCK_PASSES`` budgets runs block-nested
      BFS with a budget-sized block;
    * anything larger runs the DFS with annotations on disk — sharded
      once the annotation volume justifies per-partition compaction.
    """
    budget = (memory_budget if memory_budget is not None
              else query.memory_budget)
    window_bytes = estimate_window_bytes(query, graph_stats)
    result = ExecutionPlan(solver="bfs", backend="memory",
                           estimated_window_bytes=window_bytes,
                           memory_budget=budget, query=query,
                           graph_stats=graph_stats)
    apply_worker_dimension(result, query, graph_stats)
    apply_join_dimension(result, graph_stats)

    if query.problem == "normalized":
        result.solver = "normalized"
        result.reasons.append(
            "normalized scoring: Theorem-1 sliding-window engine "
            "is the only normalized solver")
        return result

    m = graph_stats.num_intervals
    if query.is_full_paths(m):
        probes = estimate_ta_probes(graph_stats)
        if probes <= TA_MAX_PROBES:
            result.solver = "ta"
            result.reasons.append(
                f"full-path query and ~{probes:.0f} probes <= "
                f"{TA_MAX_PROBES}: threshold algorithm stops early "
                f"on sorted edge lists")
            return result
        result.reasons.append(
            f"full-path query but ~{probes:.0f} probes > "
            f"{TA_MAX_PROBES}: TA's random probes are exponential "
            f"in m, falling through to BFS/DFS")

    if budget is None or window_bytes <= budget:
        result.reasons.append(
            "sliding window fits the budget: single-pass BFS "
            "(Algorithm 2) in memory")
        return result

    passes = window_bytes / budget
    if passes <= MAX_BLOCK_PASSES:
        window_nodes = max(
            1, graph_stats.max_interval_nodes * (graph_stats.gap + 1))
        bytes_per_node = max(1, window_bytes // window_nodes)
        block = max(1, int(budget // bytes_per_node))
        result.window_block_nodes = block
        result.backend = "disk"
        result.reasons.append(
            f"window exceeds budget {passes:.1f}x "
            f"(<= {MAX_BLOCK_PASSES}): block-nested BFS, "
            f"{block} window nodes per pass, heaps spilled to disk")
        return result

    result.solver = "dfs"
    result.reasons.append(
        f"window exceeds budget {passes:.1f}x "
        f"(> {MAX_BLOCK_PASSES}): DFS (Algorithm 3) keeps O(m) "
        f"frames resident with node annotations on disk")
    size_disk_backend(result, estimate_annotation_bytes(query,
                                                        graph_stats))
    return result


def plan_streaming(query: StableQuery, graph_stats: GraphStats,
                   memory_budget: Optional[int] = None) -> ExecutionPlan:
    """Pick the engine and backend for a *streaming* query.

    Streaming has one incremental engine per problem (the BFS of
    Section 4.6 for kl, the normalized sliding-window engine for
    Problem 2), so the planner's job reduces to the storage decision.
    Because the stream evicts node state older than ``g + 1``
    intervals, the resident volume is the window estimate — not the
    all-intervals annotation volume a batch DFS would pay — and the
    backend is chosen by comparing that window to the budget:
    in-memory when it fits, disk otherwise, sharded at volume.
    ``graph_stats`` describes the *expected* interval shape (for a
    live stream, measured from the first intervals seen).
    """
    query.streaming_length()  # raises for full-path queries
    budget = (memory_budget if memory_budget is not None
              else query.memory_budget)
    window_bytes = estimate_window_bytes(query, graph_stats)
    solver = query.streaming_solver
    result = ExecutionPlan(solver=solver, backend="memory",
                           estimated_window_bytes=window_bytes,
                           memory_budget=budget, query=query,
                           graph_stats=graph_stats)
    apply_worker_dimension(result, query, graph_stats, streaming=True)
    apply_join_dimension(result, graph_stats)
    result.reasons.append(
        f"streaming query: incremental {solver} engine, store "
        f"eviction bounds state to g + 1 = {graph_stats.gap + 1} "
        f"intervals")
    if budget is None or window_bytes <= budget:
        result.reasons.append(
            "evicted window fits the budget: node state stays "
            "in memory")
        return result
    size_disk_backend(result, window_bytes)
    # Eviction deletes keys but an append-only file only grows;
    # streaming stores must compact whatever the layout (the sharded
    # store self-compacts, the streaming maintainer compacts plain
    # disk stores past this threshold).
    result.compact_garbage_bytes = COMPACT_GARBAGE_BYTES
    result.reasons.append(
        f"window exceeds budget {window_bytes / budget:.1f}x: "
        f"node state spilled to the {result.backend} backend and "
        f"evicted as intervals expire")
    return result


def size_disk_backend(result: ExecutionPlan,
                      annotation_bytes: int) -> None:
    """Pick the disk vs sharded layout for spilled node state.

    Sizes the backend for *annotation_bytes*, recording the decision
    on *result* (shared between the planner and forced-solver
    plans)."""
    result.backend = "disk"
    if annotation_bytes > SHARD_BYTES:
        result.backend = "sharded"
        result.num_shards = min(
            MAX_SHARDS,
            max(2, annotation_bytes // SHARD_TARGET_BYTES))
        result.compact_garbage_bytes = COMPACT_GARBAGE_BYTES
        result.reasons.append(
            f"~{_human_bytes(annotation_bytes)} of annotations: "
            f"hash-partitioned across {result.num_shards} shards, "
            f"each self-compacting past "
            f"{_human_bytes(COMPACT_GARBAGE_BYTES)} of garbage")
