"""Unified solver engine: query spec, planner, pluggable execution.

The paper offers several solvers for one problem family; which wins
depends on graph shape and memory budget (its Section 4 analysis and
Section 5 experiments).  This package is the seam that turns those
implementations into one system, following the planner-over-physical-
layout split of disk-based search engines:

* :class:`~repro.engine.query.StableQuery` — the declarative query
  (problem, length bound, k, gap, diversification, memory budget);
* :mod:`~repro.engine.solvers` — the solver registry: ``bfs``,
  ``dfs``, ``ta``, ``normalized`` and ``bruteforce`` behind one
  :class:`~repro.engine.solvers.Solver` interface with unified
  :class:`~repro.core.solver_stats.SolverStats` counters;
* :mod:`~repro.engine.planner` — cost-based planning from the paper's
  memory analysis, emitting an
  :class:`~repro.engine.planner.ExecutionPlan` with ``explain()``;
* :func:`~repro.engine.engine.solve` — the one entry point the
  pipeline, CLI, streaming front end and benchmarks all use, with
  storage backends from :mod:`repro.storage` plugged in per plan.
"""

from repro.core.solver_stats import SolverStats
from repro.engine.engine import (
    AUTO,
    SolveReport,
    explain,
    solve,
    solve_report,
)
from repro.engine.planner import (
    CorpusStats,
    ExecutionPlan,
    GraphStats,
    apply_corpus_dimension,
    apply_distributed_dimension,
    apply_index_dimension,
    apply_serving_dimension,
    apply_worker_dimension,
    estimate_annotation_bytes,
    estimate_corpus_graph,
    estimate_index_bytes,
    estimate_index_segments,
    estimate_serving_working_set,
    estimate_ta_probes,
    estimate_window_bytes,
    forecast_serving_hit_rate,
    plan,
    plan_streaming,
    split_serving_budget,
)
from repro.engine.query import PROBLEMS, StableQuery
from repro.engine.solvers import (
    BFSSolver,
    BruteforceSolver,
    DFSSolver,
    NormalizedSolver,
    Solver,
    TASolver,
    get_solver,
    register,
    solver_names,
)

__all__ = [
    "AUTO",
    "BFSSolver",
    "BruteforceSolver",
    "CorpusStats",
    "DFSSolver",
    "ExecutionPlan",
    "GraphStats",
    "NormalizedSolver",
    "PROBLEMS",
    "SolveReport",
    "Solver",
    "SolverStats",
    "StableQuery",
    "TASolver",
    "apply_corpus_dimension",
    "apply_distributed_dimension",
    "apply_index_dimension",
    "apply_serving_dimension",
    "apply_worker_dimension",
    "estimate_annotation_bytes",
    "estimate_corpus_graph",
    "estimate_index_bytes",
    "estimate_index_segments",
    "estimate_serving_working_set",
    "estimate_ta_probes",
    "estimate_window_bytes",
    "explain",
    "forecast_serving_hit_rate",
    "get_solver",
    "plan",
    "plan_streaming",
    "register",
    "solve",
    "solve_report",
    "solver_names",
    "split_serving_budget",
]
