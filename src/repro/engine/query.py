"""The declarative query the unified solver engine executes.

A :class:`StableQuery` captures *what* is asked — problem family,
length bound, ``k``, gap policy, diversification, memory budget —
without saying *how* to answer it.  Which solver runs and where its
node state lives is decided later, either explicitly by name or by the
cost-based planner (:mod:`repro.engine.planner`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.core.diversify import POLICIES

PROBLEMS = ("kl", "normalized")

FULL = None  # sentinel: l=None means "full paths" (l = m - 1)


@dataclass(frozen=True)
class StableQuery:
    """One top-k stable-cluster question, solver-agnostic.

    ``problem='kl'`` asks for the top-*k* paths of length exactly
    ``l`` by weight (Problem 1); ``l=None`` means *full* paths
    (``l = m - 1`` for an ``m``-interval graph, the only case the TA
    solver handles).  ``problem='normalized'`` asks for the top-*k*
    paths of length at least ``lmin`` by weight/length (Problem 2).

    ``memory_budget`` (bytes; ``None`` = unbounded) is advisory input
    to the planner: it does not change answers, only which solver and
    backend produce them.  ``workers`` is the same kind of advisory
    input for the parallel dimension: ``None`` means serial, ``0``
    means "all cores", a positive count requests that many — the
    planner clamps it to the workload's parallel units and the
    :class:`~repro.engine.planner.ExecutionPlan` reports the outcome.
    Like the budget, it never changes answers.  ``exact`` disables
    the normalized solver's Theorem-1 pruning (exponential;
    oracle/testing use only).
    """

    problem: str = "kl"
    l: Optional[int] = FULL  # the paper's symbol; None = full paths
    lmin: Optional[int] = None
    k: int = 10
    gap: int = 0
    diverse: bool = False
    diverse_policy: str = "prefix-suffix"
    diverse_pool_factor: int = 10
    memory_budget: Optional[int] = None
    workers: Optional[int] = None
    exact: bool = False

    def __post_init__(self) -> None:
        if self.problem not in PROBLEMS:
            raise ValueError(
                f"problem must be one of {PROBLEMS}, got {self.problem!r}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.gap < 0:
            raise ValueError(f"gap must be >= 0, got {self.gap}")
        if self.l is not None and self.l < 1:
            raise ValueError(f"l must be >= 1 or None, got {self.l}")
        if self.lmin is not None and self.lmin < 1:
            raise ValueError(
                f"lmin must be >= 1 or None, got {self.lmin}")
        if self.problem == "normalized" and self.min_length is None:
            raise ValueError(
                "a normalized query needs lmin (or l) set")
        if self.diverse and self.problem != "kl":
            raise ValueError("diverse selection applies to problem='kl'")
        if self.diverse_policy not in POLICIES:
            raise ValueError(
                f"diverse_policy must be one of {POLICIES}, "
                f"got {self.diverse_policy!r}")
        if self.diverse_pool_factor < 1:
            raise ValueError(
                f"diverse_pool_factor must be >= 1, "
                f"got {self.diverse_pool_factor}")
        if self.memory_budget is not None and self.memory_budget < 1:
            raise ValueError(
                f"memory_budget must be >= 1 bytes or None, "
                f"got {self.memory_budget}")
        if self.workers is not None and self.workers < 0:
            raise ValueError(
                f"workers must be >= 0 (0 = all cores) or None, "
                f"got {self.workers}")

    @property
    def min_length(self) -> Optional[int]:
        """The normalized problem's ``lmin`` (falls back to ``l``)."""
        return self.lmin if self.lmin is not None else self.l

    def length_for(self, num_intervals: int) -> int:
        """The concrete path-length bound for an *m*-interval graph.

        ``l`` (or ``lmin``) as given, or ``m - 1`` for full paths."""
        if self.problem == "normalized":
            length = self.min_length
        else:
            length = self.l
        return length if length is not None else num_intervals - 1

    def is_full_paths(self, num_intervals: int) -> bool:
        """True when the query asks for full paths.

        Full paths run first interval to last on an *m*-interval
        graph — the TA solver's domain."""
        return (self.problem == "kl"
                and self.length_for(num_intervals) == num_intervals - 1)

    @property
    def streaming_solver(self) -> str:
        """The incremental engine for this query's problem.

        Streaming has exactly one engine per problem (Section 4.6)."""
        return "normalized" if self.problem == "normalized" else "bfs"

    def streaming_length(self) -> int:
        """The concrete length bound a streaming maintainer needs.

        Raises when the query asks for full paths: ``l = m - 1``
        grows with the stream, so it cannot be maintained online.
        """
        length = self.min_length if self.problem == "normalized" \
            else self.l
        if length is None:
            raise ValueError(
                "streaming needs a concrete length bound; full-path "
                "queries (l=None) grow with the stream")
        return length

    def with_k(self, k: int) -> "StableQuery":
        """A copy of this query asking for a different *k*.

        The diversification pool over-fetch uses this."""
        return dataclasses.replace(self, k=k)

    def describe(self) -> str:
        """Compact human-readable rendering for plans and logs."""
        if self.problem == "normalized":
            length = f"lmin={self.min_length}"
        elif self.l is None:
            length = "l=full"
        else:
            length = f"l={self.l}"
        parts = [f"problem={self.problem}", length, f"k={self.k}",
                 f"gap={self.gap}"]
        if self.diverse:
            parts.append(f"diverse={self.diverse_policy}")
        if self.memory_budget is not None:
            parts.append(f"budget={self.memory_budget}B")
        if self.workers is not None:
            parts.append("workers=auto" if self.workers == 0
                         else f"workers={self.workers}")
        return " ".join(parts)
