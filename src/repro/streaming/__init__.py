"""Streaming ingestion subsystem: documents -> incremental top-k.

Section 4.6's observation — per-node heaps for a new interval need no
past recomputation — makes the stable-cluster engines a serving tier,
not just a batch job.  This package is the front end for that tier:

* :class:`~repro.streaming.pipeline.StreamingDocumentPipeline` — raw
  per-interval documents through Section-3 cluster generation, the
  indexed window-affinity join, and the incremental engines, with
  per-interval :class:`~repro.streaming.pipeline.IntervalIngestReport`
  latency accounting;
* :mod:`~repro.streaming.source` — JSONL interval batching shared
  with the ``stable-clusters stream`` CLI subcommand.

State is bounded: engine windows *and* any pluggable
:class:`~repro.storage.StateStore` backend hold at most ``gap + 1``
intervals of node state, however long the stream runs.
"""

from repro.streaming.pipeline import (
    IntervalIngestReport,
    StreamingDocumentPipeline,
)
from repro.streaming.source import (
    interval_batches,
    read_interval_batches,
    read_jsonl_documents,
)

__all__ = [
    "IntervalIngestReport",
    "StreamingDocumentPipeline",
    "interval_batches",
    "read_interval_batches",
    "read_jsonl_documents",
]
