"""Interval-batched document sources for the streaming pipeline.

The wire format matches the batch CLI's: one JSON object per line,
``{"interval": 0, "text": "...", "id": "optional"}``.  A stream
replays those records interval by interval — exactly what a tailing
ingester would hand the pipeline, so the same file can drive both
``stable-clusters stable`` (batch) and ``stable-clusters stream``
(incremental) and the results can be compared.
"""

from __future__ import annotations

import json
from typing import IO, Iterator, List, Tuple, Union

from repro.text.documents import Document


def read_jsonl_documents(source: Union[str, IO[str]]) -> List[Document]:
    """Parse a JSONL post file (path or open handle) into documents."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            return read_jsonl_documents(fh)
    documents: List[Document] = []
    for line_no, line in enumerate(source):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        documents.append(Document(
            doc_id=str(record.get("id", f"doc{line_no}")),
            interval=int(record["interval"]),
            text=record["text"]))
    return documents


def interval_batches(documents: List[Document]
                     ) -> Iterator[Tuple[int, List[Document]]]:
    """Group documents into dense interval batches, oldest first.

    Yields ``(interval, documents)`` for every interval from the
    smallest seen through the largest — including *empty* intervals in
    between, because a silent day still advances the stream clock (an
    absent interval is what the gap policy is about).  Interval
    numbers that look like raw timestamps (a span vastly exceeding
    the populated count) are rejected rather than replayed as
    millions of empty ticks.
    """
    if not documents:
        return
    by_interval: dict = {}
    for doc in documents:
        by_interval.setdefault(doc.interval, []).append(doc)
    first, last = min(by_interval), max(by_interval)
    span = last - first + 1
    if span > max(1000, 100 * len(by_interval)):
        raise ValueError(
            f"interval indices span {span} ticks but only "
            f"{len(by_interval)} are populated — they look like raw "
            f"timestamps; renumber intervals densely (0, 1, 2, ...) "
            f"before streaming")
    for interval in range(first, last + 1):
        yield interval, by_interval.get(interval, [])


def read_interval_batches(source: Union[str, IO[str]]
                          ) -> Iterator[Tuple[int, List[Document]]]:
    """JSONL file (path or handle) -> dense per-interval batches."""
    return interval_batches(read_jsonl_documents(source))
