"""End-to-end streaming ingestion: raw documents -> incremental top-k.

The batch pipeline (:func:`repro.pipeline.find_stable_clusters`) sees
the whole corpus at once; a serving tier sees one interval at a time.
:class:`StreamingDocumentPipeline` runs the same two stages
incrementally: each pushed interval's documents go through Section-3
cluster generation (co-occurrence counting, chi-square and
correlation pruning, biconnected components), the resulting keyword
clusters are joined against the previous ``gap + 1`` intervals with
the inverted-keyword-index candidate join of Section 4.1, and the
edges feed the incremental BFS engines of Section 4.6 — so after m
intervals the maintained top-k equals what the batch pipeline computes
over the same m-interval corpus, while resident state (and any
:class:`~repro.storage.StateStore` backend) holds at most ``gap + 1``
intervals.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.affinity import STREAM_SIMJOIN_CUTOFF, get_measure
from repro.cooccur.keyword_graph import RHO_DEFAULT
from repro.core.online import StreamingAffinityPipeline
from repro.core.paths import NodeId, Path
from repro.core.stability import THETA_DEFAULT
from repro.engine.query import StableQuery
from repro.index.merge import MergePolicy
from repro.index.writer import (
    DEFAULT_FLUSH_INTERVALS,
    ClusterIndexWriter,
)
from repro.parallel import Executor, executor_for
from repro.pipeline.cluster_generation import (
    ClusterGenerationReport,
    generate_interval_clusters_task,
)
from repro.storage.backends import StateStore
from repro.text.documents import Document, IntervalCorpus
from repro.vocab import Vocabulary


@dataclass
class IntervalIngestReport:
    """What ingesting one interval cost and produced."""

    interval: int = 0
    num_documents: int = 0
    num_clusters: int = 0
    num_edges: int = 0
    vocab_size: int = 0
    seconds_clustering: float = 0.0
    seconds_linking: float = 0.0

    @property
    def seconds_total(self) -> float:
        """Whole per-interval ingest latency."""
        return self.seconds_clustering + self.seconds_linking

    def describe(self) -> str:
        """One status line for monitors and the CLI's --follow mode."""
        vocab = f", vocab {self.vocab_size}" if self.vocab_size else ""
        return (f"interval {self.interval}: {self.num_documents} docs "
                f"-> {self.num_clusters} clusters, "
                f"{self.num_edges} edges{vocab} "
                f"({self.seconds_total * 1000:.1f}ms)")


@dataclass
class _PipelineConfig:
    rho_threshold: float = RHO_DEFAULT
    min_edges: int = 2
    theta: float = THETA_DEFAULT


class StreamingDocumentPipeline:
    """Ingests per-interval documents, maintains incremental top-k.

    ``problem`` selects kl-stable (``'kl'``, paths of length exactly
    *l*) or normalized (``'normalized'``, length >= *l*, scored
    weight/length) maintenance.  ``store`` may be any
    :class:`~repro.storage.StateStore`; node state older than
    ``gap + 1`` intervals is evicted from it, so the store stays
    bounded however long the stream runs.  Per-interval costs are
    recorded as :class:`IntervalIngestReport` objects on ``reports``.

    ``workers`` parallelizes the per-interval window join (partitioned
    by index token, merged exactly): an int opens a process pool of
    that size (``0`` = all cores) owned by this pipeline — call
    :meth:`close` (or use the pipeline as a context manager) when
    done; an :class:`~repro.parallel.Executor` instance is used as-is
    and left open.  Maintained top-k is worker-invariant.

    ``index_dir`` maintains a *live* persistent index
    (:mod:`repro.index`) alongside the stream: every ingested
    interval's clusters and the evolving top-k are appended as they
    arrive, so a concurrent :class:`~repro.service.ClusterQueryService`
    can serve (and ``refresh()``-tail) the stream's results;
    :meth:`close` finalizes the index.  An existing index at
    ``index_dir`` is *continued* — its vocabulary deltas preload the
    pipeline's vocabulary and new intervals extend the stored
    timeline — unless ``index_append=False`` rebuilds it from
    scratch.  ``flush_intervals`` seals an index segment every N
    ingested intervals and ``merge_policy``/``background_merge``
    control the compaction of sealed segments
    (:class:`~repro.index.merge.MergePolicy`; ``None`` disables
    merging).
    """

    def __init__(self, l: int, k: int, gap: int = 0,
                 problem: str = "kl",
                 rho_threshold: float = RHO_DEFAULT,
                 affinity: Union[str, Callable] = "jaccard",
                 theta: float = THETA_DEFAULT,
                 min_edges: int = 2,
                 store: Optional[StateStore] = None,
                 use_simjoin: Optional[bool] = None,
                 simjoin_cutoff: int = STREAM_SIMJOIN_CUTOFF,
                 workers: Union[int, Executor, None] = None,
                 index_dir: Optional[str] = None,
                 index_append: bool = True,
                 flush_intervals: Optional[int]
                 = DEFAULT_FLUSH_INTERVALS,
                 merge_policy: Optional[MergePolicy] = MergePolicy(),
                 background_merge: bool = False) -> None:
        measure = get_measure(affinity) if isinstance(affinity, str) \
            else affinity
        self.config = _PipelineConfig(rho_threshold=rho_threshold,
                                      min_edges=min_edges, theta=theta)
        # The stream's corpus vocabulary: grows incrementally as
        # intervals arrive; every ingested cluster is rebound into it,
        # so the whole window computes on one id namespace.
        self.vocab = Vocabulary()
        self._owns_executor = not isinstance(workers, Executor)
        self.executor = executor_for(workers)
        self.linker = StreamingAffinityPipeline(
            l=l, k=k, gap=gap, affinity=measure, theta=theta,
            mode=problem, store=store, use_simjoin=use_simjoin,
            simjoin_cutoff=simjoin_cutoff,
            executor=self.executor if self.executor.workers > 1
            else None)
        self.reports: List[IntervalIngestReport] = []
        self.generation_reports: List[ClusterGenerationReport] = []
        self.index_dir = index_dir
        self._index_writer: Optional[ClusterIndexWriter] = None
        if index_dir is not None:
            self._index_writer = ClusterIndexWriter(
                index_dir, vocab=self.vocab,
                query=StableQuery(problem=problem, l=l, k=k, gap=gap),
                overwrite=not index_append,
                append=index_append,
                flush_intervals=flush_intervals,
                merge_policy=merge_policy,
                background_merge=background_merge)

    @property
    def index_writer(self) -> Optional[ClusterIndexWriter]:
        """The live index writer, when one is maintained."""
        return self._index_writer

    def close(self, finalize_index: bool = True) -> None:
        """Release the owned worker pool (no-op when serial or when
        an external executor was supplied) and close the live index,
        if one is being maintained.

        ``finalize_index=False`` closes the index *without* marking
        it complete — the right call when the stream died mid-run, so
        tailing readers see ``complete: false`` instead of mistaking
        a truncated run for a finished one (the context-manager form
        picks automatically from the exception state).
        """
        if self._owns_executor:
            self.executor.close()
        if self._index_writer is not None:
            if finalize_index:
                self._index_writer.finalize()
            else:
                self._index_writer.abort()

    def __enter__(self) -> "StreamingDocumentPipeline":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        self.close(finalize_index=exc_type is None)

    @classmethod
    def from_query(cls, query, **kwargs) -> "StreamingDocumentPipeline":
        """Build a document pipeline for a
        :class:`~repro.engine.StableQuery` (keyword arguments pass
        through to the constructor).  The query's ``workers`` request
        is honoured unless *kwargs* overrides it."""
        kwargs.setdefault("workers", query.workers)
        return cls(l=query.streaming_length(), k=query.k,
                   gap=query.gap, problem=query.problem, **kwargs)

    # ------------------------------------------------------------------
    # Feeding the stream
    # ------------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        """Intervals ingested so far."""
        return self.linker.stream.num_intervals

    def add_texts(self, texts: Sequence[str]) -> IntervalIngestReport:
        """Ingest one interval given raw post texts."""
        interval = self.num_intervals
        return self.add_documents([
            Document(doc_id=f"t{interval}.{i}", interval=interval,
                     text=text)
            for i, text in enumerate(texts)])

    def add_documents(self, documents: Sequence[Document]
                      ) -> IntervalIngestReport:
        """Ingest one interval's documents (cluster, link, search).

        Documents are re-homed to the stream's current interval index;
        their own ``interval`` fields are ignored (the stream defines
        time, not the payload).
        """
        interval = self.num_intervals
        started = time.perf_counter()
        rehomed = [doc if doc.interval == interval
                   else dataclasses.replace(doc, interval=interval)
                   for doc in documents]
        clusters, generation = generate_interval_clusters_task(
            rehomed, interval,
            rho_threshold=self.config.rho_threshold,
            min_edges=self.config.min_edges)
        clustered = time.perf_counter()
        self.generation_reports.append(generation)
        report = self.add_clusters(clusters)
        report.num_documents = len(documents)
        report.seconds_clustering = clustered - started
        return report

    def ingest_adapter(self, adapter) -> List[IntervalIngestReport]:
        """Replay a :class:`repro.corpus` adapter through the stream.

        Buffers the adapter into an
        :meth:`~repro.text.IntervalCorpus.from_adapter` corpus first
        (adapter record order need not be time-sorted), then feeds
        each interval — including empty ones inside the span, so the
        timeline matches the batch pipeline's — through
        :meth:`add_documents` in ascending order.  Returns the
        per-interval reports of this replay; the adapter's own
        :class:`~repro.corpus.IngestReport` is complete afterwards.
        """
        corpus = IntervalCorpus.from_adapter(adapter)
        return [self.add_documents(corpus.documents(interval))
                for interval in range(corpus.num_intervals)]

    def add_clusters(self, clusters: Sequence) -> IntervalIngestReport:
        """Ingest one interval's pre-generated keyword clusters
        (the document stages already ran elsewhere).

        Interned clusters — whatever vocabulary they arrive bound to —
        are rebound into this pipeline's growing vocabulary first, so
        the window join always intersects ids of one namespace.
        Cluster-like objects without a token representation pass
        through unchanged (the join falls back to keyword strings).
        """
        interval = self.num_intervals
        started = time.perf_counter()
        rebound = [cluster.rebind(self.vocab)
                   if hasattr(cluster, "rebind") else cluster
                   for cluster in clusters]
        self.linker.add_interval(rebound)
        if self._index_writer is not None:
            self._index_writer.append_interval(rebound)
            self._index_writer.set_paths(self.top_k())
        finished = time.perf_counter()
        report = IntervalIngestReport(
            interval=interval,
            num_clusters=len(rebound),
            num_edges=self.linker.last_num_edges,
            vocab_size=len(self.vocab),
            seconds_linking=finished - started)
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # Reading results
    # ------------------------------------------------------------------

    def top_k(self) -> List[Path]:
        """Current top-k paths, best first."""
        return self.linker.top_k()

    def cluster_for(self, node: NodeId):
        """The keyword cluster behind *node*, if its interval is still
        within the ``gap + 1`` window (older clusters are evicted)."""
        return self.linker.cluster_for(node)

    def generation_summary(self) -> ClusterGenerationReport:
        """Every ingested interval's Section-3 stage report merged
        into one Figure-6 row (document-fed intervals only;
        :meth:`add_clusters` skips the generation stage)."""
        return ClusterGenerationReport.merge(self.generation_reports)

    @property
    def stats(self):
        """The underlying engine's work counters."""
        return self.linker.stream.stats
