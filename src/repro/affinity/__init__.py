"""Cluster-affinity measures and the threshold similarity join.

Section 4 quantifies the affinity of two keyword clusters by overlap
functions — ``|c ∩ c'|`` or ``Jaccard(c, c')`` — optionally weighted
by the correlation strength of common keyword pairs.  When per-interval
cluster sets are too large for all-pairs comparison, the paper notes
the problem "is easily reduced to that of computing similarity between
all pairs of strings (clusters) for which the similarity is above a
threshold" [11]; :mod:`repro.affinity.simjoin` implements that join
with prefix filtering plus a second signature level (length band +
token-checksum band) that rejects candidates before verification.
"""

from repro.affinity.measures import (
    AFFINITY_MEASURES,
    collection_token_sets,
    comparison_sets,
    dice,
    get_measure,
    intersection_count,
    intersection_size,
    jaccard,
    overlap_coefficient,
    share_token_namespace,
    token_sets,
    weighted_jaccard,
)
from repro.affinity.simjoin import (
    JoinStats,
    SIGNATURE_BANDS,
    intersection_size_sorted,
    required_overlap,
    signature_compatible,
    threshold_jaccard_join,
    token_signature,
)
from repro.affinity.windowjoin import (
    STREAM_SIMJOIN_CUTOFF,
    WindowFrequencyTracker,
    join_partition_task,
    partition_join_payloads,
    window_affinity_edges,
)

__all__ = [
    "AFFINITY_MEASURES",
    "JoinStats",
    "SIGNATURE_BANDS",
    "STREAM_SIMJOIN_CUTOFF",
    "WindowFrequencyTracker",
    "collection_token_sets",
    "comparison_sets",
    "dice",
    "get_measure",
    "intersection_count",
    "intersection_size",
    "intersection_size_sorted",
    "jaccard",
    "join_partition_task",
    "overlap_coefficient",
    "partition_join_payloads",
    "required_overlap",
    "share_token_namespace",
    "signature_compatible",
    "threshold_jaccard_join",
    "token_signature",
    "token_sets",
    "weighted_jaccard",
    "window_affinity_edges",
]
