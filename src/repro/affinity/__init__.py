"""Cluster-affinity measures and the threshold similarity join.

Section 4 quantifies the affinity of two keyword clusters by overlap
functions — ``|c ∩ c'|`` or ``Jaccard(c, c')`` — optionally weighted
by the correlation strength of common keyword pairs.  When per-interval
cluster sets are too large for all-pairs comparison, the paper notes
the problem "is easily reduced to that of computing similarity between
all pairs of strings (clusters) for which the similarity is above a
threshold" [11]; :mod:`repro.affinity.simjoin` implements that join
with prefix filtering.
"""

from repro.affinity.measures import (
    AFFINITY_MEASURES,
    collection_token_sets,
    comparison_sets,
    dice,
    get_measure,
    intersection_count,
    intersection_size,
    jaccard,
    overlap_coefficient,
    weighted_jaccard,
)
from repro.affinity.simjoin import threshold_jaccard_join
from repro.affinity.windowjoin import (
    STREAM_SIMJOIN_CUTOFF,
    join_partition_task,
    partition_join_payloads,
    window_affinity_edges,
)

__all__ = [
    "AFFINITY_MEASURES",
    "STREAM_SIMJOIN_CUTOFF",
    "collection_token_sets",
    "comparison_sets",
    "dice",
    "get_measure",
    "intersection_count",
    "intersection_size",
    "jaccard",
    "join_partition_task",
    "overlap_coefficient",
    "partition_join_payloads",
    "threshold_jaccard_join",
    "weighted_jaccard",
    "window_affinity_edges",
]
