"""Set-overlap affinity measures between keyword clusters.

All measures accept two objects exposing the cluster token surface —
in practice :class:`~repro.graph.clusters.KeywordCluster` — or plain
sets.  Jaccard, Dice and the overlap coefficient are bounded in
``[0, 1]``; intersection size is unbounded and must be normalized
before use as a cluster-graph edge weight (the builder does this).

This module owns the **one** similarity implementation every layer
delegates to (``KeywordCluster.jaccard`` included).  Interned clusters
carry sorted integer-id token tuples; two clusters bound to the *same*
vocabulary compare by their id sets (machine-int hashing, no string
work), while mixed pairings — different vocabularies, a plain string
set against a cluster — transparently fall back to the decoded
keyword strings, so the measures never silently intersect ids from
unrelated vocabularies.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Union

ClusterLike = Union[frozenset, set, "KeywordClusterLike"]


def _keywords(cluster) -> frozenset:
    keywords = getattr(cluster, "keywords", cluster)
    return keywords


def _is_id_set(tokens) -> bool:
    """True for a non-empty plain set of interned ids (all ints)."""
    return (isinstance(tokens, (frozenset, set)) and bool(tokens)
            and all(isinstance(token, int) for token in tokens))


def comparison_sets(a: ClusterLike, b: ClusterLike
                    ) -> Tuple[frozenset, frozenset]:
    """The pair of token sets two cluster-likes compare by.

    Same-vocabulary interned clusters yield their id sets; clusters of
    *different* vocabularies yield decoded keyword-string sets, so ids
    from unrelated vocabularies are never intersected.  Two plain sets
    pass through unchanged (their tokens share one namespace by
    definition).  A plain set against a cluster compares by what the
    set holds: strings against the decoded keywords, interned ids
    against the cluster's id set — read in the cluster's vocabulary,
    the only namespace they can mean (e.g. a
    :meth:`Document.keyword_ids` result); an id set against a cluster
    *without* a vocabulary raises rather than silently intersecting
    ids with strings.
    """
    a_is_set = isinstance(a, (frozenset, set))
    b_is_set = isinstance(b, (frozenset, set))
    if a_is_set and b_is_set:
        return a, b
    if a_is_set or b_is_set:
        plain, cluster = (a, b) if a_is_set else (b, a)
        if _is_id_set(plain):
            if getattr(cluster, "vocab", None) is None:
                raise ValueError(
                    f"cannot compare a set of interned ids against "
                    f"{cluster!r}: it has no vocabulary to resolve "
                    f"them — decode the ids or intern the cluster")
            pair = plain, cluster.token_set
        else:
            pair = plain, _keywords(cluster)
        return pair if a_is_set else (pair[1], pair[0])
    if getattr(a, "vocab", None) is getattr(b, "vocab", None):
        ta = getattr(a, "token_set", None)
        tb = getattr(b, "token_set", None)
        if ta is not None and tb is not None:
            return ta, tb
    return _keywords(a), _keywords(b)


def _token_set(cluster) -> frozenset:
    if isinstance(cluster, (frozenset, set)):
        return cluster
    token_set = getattr(cluster, "token_set", None)
    return token_set if token_set is not None else _keywords(cluster)


def share_token_namespace(*collections) -> bool:
    """True when every cluster of every collection can intersect ids.

    That holds when all clusters are bound to the same vocabulary (or
    none is interned at all); any mix of vocabularies must fall back
    to decoded keyword strings.  The streaming window join asks this
    separately from :func:`collection_token_sets` so its incremental
    frequency tracker can detect a representation flip.
    """
    vocabs = set()
    for collection in collections:
        for cluster in collection:
            vocabs.add(getattr(cluster, "vocab", None))
    return len(vocabs) <= 1


def token_sets(collection, decoded: bool = False) -> List[frozenset]:
    """One collection's token sets — interned ids (``decoded=False``)
    or keyword strings — in collection order."""
    if decoded:
        return [_keywords(cluster) for cluster in collection]
    return [_token_set(cluster) for cluster in collection]


def collection_token_sets(*collections) -> List[List[frozenset]]:
    """Joinable token-set forms for whole cluster collections.

    The similarity joins index and intersect every set of every
    collection against each other, so the sets must share one token
    namespace: when every cluster is bound to the same vocabulary
    (or none is interned at all) the id/token sets are used directly;
    any mix falls back to decoded keyword strings.
    """
    decoded = not share_token_namespace(*collections)
    return [token_sets(collection, decoded)
            for collection in collections]


def intersection_count(a: ClusterLike, b: ClusterLike) -> int:
    """``|a ∩ b|`` as an int — the primitive every measure builds on."""
    ka, kb = comparison_sets(a, b)
    return len(ka & kb)


def jaccard(a: ClusterLike, b: ClusterLike) -> float:
    """|a ∩ b| / |a ∪ b| (the paper's qualitative-study choice)."""
    ka, kb = comparison_sets(a, b)
    intersection = len(ka & kb)
    union = len(ka) + len(kb) - intersection
    if union == 0:
        return 0.0
    return intersection / union


def intersection_size(a: ClusterLike, b: ClusterLike) -> float:
    """|a ∩ b| — unbounded; normalize before use as an edge weight."""
    return float(intersection_count(a, b))


def dice(a: ClusterLike, b: ClusterLike) -> float:
    """2|a ∩ b| / (|a| + |b|)."""
    ka, kb = comparison_sets(a, b)
    denominator = len(ka) + len(kb)
    if denominator == 0:
        return 0.0
    return 2 * len(ka & kb) / denominator


def overlap_coefficient(a: ClusterLike, b: ClusterLike) -> float:
    """|a ∩ b| / min(|a|, |b|)."""
    ka, kb = comparison_sets(a, b)
    smaller = min(len(ka), len(kb))
    if smaller == 0:
        return 0.0
    return len(ka & kb) / smaller


def _edge_weights(cluster) -> Dict[tuple, float]:
    """A cluster's weighted edge set keyed comparably across
    representations (id pairs when interned vocabularies match is not
    knowable here per-cluster, so keys are decoded pairs)."""
    return {(u, v): w for u, v, w in getattr(cluster, "edges", ())}


def weighted_jaccard(a: ClusterLike, b: ClusterLike) -> float:
    """Correlation-weighted Jaccard over the clusters' edge sets.

    The paper suggests affinity choices "taking into account the
    strength of the correlation between the common pairs of keywords":
    here each cluster is viewed as its set of weighted keyword-pair
    edges, and we compute sum of min weights over sum of max weights
    (the canonical weighted-Jaccard).  Falls back to plain Jaccard on
    keyword sets when either cluster carries no edges.
    """
    edges_a = _edge_weights(a)
    edges_b = _edge_weights(b)
    if not edges_a or not edges_b:
        return jaccard(a, b)
    keys = set(edges_a) | set(edges_b)
    numerator = sum(min(edges_a.get(key, 0.0), edges_b.get(key, 0.0))
                    for key in keys)
    denominator = sum(max(edges_a.get(key, 0.0), edges_b.get(key, 0.0))
                      for key in keys)
    if denominator == 0:
        return 0.0
    return numerator / denominator


AFFINITY_MEASURES: Dict[str, Callable[[ClusterLike, ClusterLike], float]] = {
    "jaccard": jaccard,
    "intersection": intersection_size,
    "dice": dice,
    "overlap": overlap_coefficient,
    "weighted_jaccard": weighted_jaccard,
}


def get_measure(name: str) -> Callable[[ClusterLike, ClusterLike], float]:
    """Look up an affinity measure by name."""
    try:
        return AFFINITY_MEASURES[name]
    except KeyError:
        raise ValueError(
            f"unknown affinity measure {name!r}; "
            f"choose from {sorted(AFFINITY_MEASURES)}") from None
