"""Set-overlap affinity measures between keyword clusters.

All measures accept two objects exposing ``keywords`` (a frozenset) —
in practice :class:`~repro.graph.clusters.KeywordCluster` — or plain
sets.  Jaccard, Dice and the overlap coefficient are bounded in
``[0, 1]``; intersection size is unbounded and must be normalized
before use as a cluster-graph edge weight (the builder does this).
"""

from __future__ import annotations

from typing import Callable, Dict, Union

ClusterLike = Union[frozenset, set, "KeywordClusterLike"]


def _keywords(cluster) -> frozenset:
    keywords = getattr(cluster, "keywords", cluster)
    return keywords


def jaccard(a: ClusterLike, b: ClusterLike) -> float:
    """|a ∩ b| / |a ∪ b| (the paper's qualitative-study choice)."""
    ka, kb = _keywords(a), _keywords(b)
    union = len(ka | kb)
    if union == 0:
        return 0.0
    return len(ka & kb) / union


def intersection_size(a: ClusterLike, b: ClusterLike) -> float:
    """|a ∩ b| — unbounded; normalize before use as an edge weight."""
    return float(len(_keywords(a) & _keywords(b)))


def dice(a: ClusterLike, b: ClusterLike) -> float:
    """2|a ∩ b| / (|a| + |b|)."""
    ka, kb = _keywords(a), _keywords(b)
    denominator = len(ka) + len(kb)
    if denominator == 0:
        return 0.0
    return 2 * len(ka & kb) / denominator


def overlap_coefficient(a: ClusterLike, b: ClusterLike) -> float:
    """|a ∩ b| / min(|a|, |b|)."""
    ka, kb = _keywords(a), _keywords(b)
    smaller = min(len(ka), len(kb))
    if smaller == 0:
        return 0.0
    return len(ka & kb) / smaller


def weighted_jaccard(a: ClusterLike, b: ClusterLike) -> float:
    """Correlation-weighted Jaccard over the clusters' edge sets.

    The paper suggests affinity choices "taking into account the
    strength of the correlation between the common pairs of keywords":
    here each cluster is viewed as its set of weighted keyword-pair
    edges, and we compute sum of min weights over sum of max weights
    (the canonical weighted-Jaccard).  Falls back to plain Jaccard on
    keyword sets when either cluster carries no edges.
    """
    edges_a = {(u, v): w for u, v, w in getattr(a, "edges", ())}
    edges_b = {(u, v): w for u, v, w in getattr(b, "edges", ())}
    if not edges_a or not edges_b:
        return jaccard(a, b)
    keys = set(edges_a) | set(edges_b)
    numerator = sum(min(edges_a.get(key, 0.0), edges_b.get(key, 0.0))
                    for key in keys)
    denominator = sum(max(edges_a.get(key, 0.0), edges_b.get(key, 0.0))
                      for key in keys)
    if denominator == 0:
        return 0.0
    return numerator / denominator


AFFINITY_MEASURES: Dict[str, Callable[[ClusterLike, ClusterLike], float]] = {
    "jaccard": jaccard,
    "intersection": intersection_size,
    "dice": dice,
    "overlap": overlap_coefficient,
    "weighted_jaccard": weighted_jaccard,
}


def get_measure(name: str) -> Callable[[ClusterLike, ClusterLike], float]:
    """Look up an affinity measure by name."""
    try:
        return AFFINITY_MEASURES[name]
    except KeyError:
        raise ValueError(
            f"unknown affinity measure {name!r}; "
            f"choose from {sorted(AFFINITY_MEASURES)}") from None
