"""Two-level threshold similarity join with prefix filtering.

Finds all pairs (one set from each collection) whose Jaccard
similarity meets a threshold, without comparing all pairs.  Level one
is the standard prefix-filter join the paper points to ([11]): order
each set's tokens by ascending global frequency; a pair with
``J(a, b) >= t`` must share a token within the first
``|s| - ceil(t * |s|) + 1`` tokens of either set, so an inverted index
over those prefixes yields a complete candidate set.

Level two rejects surviving candidates *before* exact verification
with a cheap per-set signature — the direction of the two-level
signature scheme for set similarity joins (PVLDB'23):

* a **length band**: ``J(a, b) >= t`` forces
  ``min(|a|, |b|) >= t * max(|a|, |b|)``, so mismatched sizes reject
  on two integer comparisons;
* a **token-checksum band**: each token hashes into one of
  ``SIGNATURE_BANDS`` buckets; per-band counts over the ordered
  signature (prefix and suffix alike) give the upper bound
  ``|a ∩ b| <= sum(min(bands_a[i], bands_b[i]))``, compared against
  the overlap a qualifying pair must reach,
  ``ceil(t * (|a| + |b|) / (1 + t))``.

Both checks are *safe* (they only reject pairs whose exact Jaccard is
below the threshold), so the verified result set is byte-identical to
the prefix-only join's — :class:`JoinStats` counts what the second
level saved.

Tokens are any hashable, mutually orderable values: interned keyword
ids (the production path — machine-int hashing and comparison) or
strings.  Interned-id collections additionally verify on sorted
``array('I')`` buffers with galloping (exponential-search)
intersection; string collections keep the frozenset path.  Postings
lists are packed ``array('I')`` buffers in both cases.  One collection
must stay in one token namespace; frequency tie-breaks differ between
representations, which can reorder prefixes but never changes the
verified result set (the join is exact).

The building blocks — :func:`global_frequencies`,
:func:`ordered_prefix`, :func:`token_signature`,
:func:`signature_compatible`, :func:`verify_jaccard` — are public
because the partitioned parallel join
(:mod:`repro.affinity.windowjoin`) must compute the *identical*
ordering, prefix slice, signatures, and verification to guarantee its
per-partition results merge into exactly this join's output.  One
implementation, two drivers.
"""

from __future__ import annotations

import heapq
import math
import zlib
from array import array
from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, \
    Sequence, Tuple

Token = Hashable

# Buckets of the level-two checksum band.  More bands tighten the
# intersection upper bound (fewer unrelated tokens collide) but cost
# one extra comparison each per surviving candidate; 32 keeps the
# whole signature in one small bytes object.
SIGNATURE_BANDS = 32

# A set signature: (size, per-band token counts).  Plain builtins so
# partition payloads ship signatures to worker processes as-is.
Signature = Tuple[int, bytes]

# Interned ids fit array('I'); anything outside its range falls back
# to the frozenset verification path.
_MAX_ARRAY_TOKEN = (1 << 32) - 1


@dataclass
class JoinStats:
    """What the join's filter levels did, for benchmarks and EXPLAIN.

    ``candidate_pairs`` counts pairs the level-one prefix filter
    produced (each of which the prefix-only join would verify);
    ``length_rejected`` and ``band_rejected`` count level-two
    rejections; ``verified_pairs`` is what survived to exact
    verification and ``result_pairs`` what met the threshold.
    """

    candidate_pairs: int = 0
    length_rejected: int = 0
    band_rejected: int = 0
    verified_pairs: int = 0
    result_pairs: int = 0

    @property
    def filtered_pairs(self) -> int:
        """Candidates the second level rejected without verifying."""
        return self.length_rejected + self.band_rejected

    @property
    def verified_fraction(self) -> float:
        """Verified share of candidates (1.0 when nothing filtered)."""
        if not self.candidate_pairs:
            return 1.0
        return self.verified_pairs / self.candidate_pairs

    @property
    def reduction(self) -> float:
        """Candidate-pair reduction the second level bought (0..1)."""
        return 1.0 - self.verified_fraction

    def merge(self, other: "JoinStats") -> None:
        """Fold another join's counters into this one."""
        self.candidate_pairs += other.candidate_pairs
        self.length_rejected += other.length_rejected
        self.band_rejected += other.band_rejected
        self.verified_pairs += other.verified_pairs
        self.result_pairs += other.result_pairs


def _prefix_length(size: int, threshold: float) -> int:
    """Tokens of the ordered set that must be indexed."""
    return size - int(math.ceil(threshold * size)) + 1


def global_frequencies(*collections: Iterable[FrozenSet[Token]]
                       ) -> Counter:
    """Token -> occurrence count over every set of every collection
    (the shared ordering key both join drivers must agree on)."""
    frequency: Counter = Counter()
    for collection in collections:
        for item in collection:
            frequency.update(item)
    return frequency


def ordered_prefix(item: FrozenSet[Token], frequency: Counter,
                   threshold: float) -> List[Token]:
    """The prefix-filter tokens of *item*: rare-first ordering (ties
    broken lexicographically for determinism), truncated to the
    prefix length for *threshold*.  Empty for the empty set.

    Selection runs through :func:`heapq.nsmallest`, so a large set
    pays O(n log p) for its p-token prefix instead of the O(n log n)
    full sort; the result is identical to sorting the whole set and
    truncating (the token in the key makes every ordering key
    unique).
    """
    if not item:
        return []
    prefix_len = _prefix_length(len(item), threshold)
    return heapq.nsmallest(prefix_len, item,
                           key=lambda token: (frequency[token], token))


# ----------------------------------------------------------------------
# Level-two signatures
# ----------------------------------------------------------------------

def _token_band(token: Token) -> int:
    """Deterministic token -> band assignment (crc32 for strings, not
    ``hash()``, which is salted per process)."""
    if isinstance(token, int):
        return token % SIGNATURE_BANDS
    return zlib.crc32(str(token).encode("utf-8")) % SIGNATURE_BANDS


def token_signature(item: Iterable[Token]) -> Signature:
    """The level-two signature of one set: size + checksum bands.

    Band counts saturate at 255 so the signature stays one byte per
    band; saturation only loosens the intersection upper bound, it
    never tightens it, so the filter stays safe.
    """
    counts = [0] * SIGNATURE_BANDS
    size = 0
    for token in item:
        size += 1
        band = _token_band(token)
        if counts[band] < 255:
            counts[band] += 1
    return size, bytes(counts)


def required_overlap(size_a: int, size_b: int, threshold: float) -> int:
    """Smallest ``|a ∩ b|`` a pair of these sizes needs for
    ``J >= threshold``: ``ceil(t * (|a| + |b|) / (1 + t))``, rounded
    conservatively down on float noise (a too-small requirement keeps
    a candidate, never drops one)."""
    return int(math.ceil(
        threshold * (size_a + size_b) / (1.0 + threshold) - 1e-9))


def signature_compatible(sig_a: Signature, sig_b: Signature,
                         threshold: float,
                         stats: Optional[JoinStats] = None) -> bool:
    """Can this candidate pair possibly reach *threshold*?

    Applies the length band, then the checksum band: both are upper
    bounds on the exact overlap, so ``False`` proves
    ``J(a, b) < threshold`` — a safe rejection.  ``stats`` (when
    given) records which level rejected.
    """
    size_a, bands_a = sig_a
    size_b, bands_b = sig_b
    if size_a <= size_b:
        smaller, larger = size_a, size_b
    else:
        smaller, larger = size_b, size_a
    # Length band: J >= t forces |a ∩ b| >= t * max(|a|, |b|), and
    # the overlap cannot exceed the smaller set.  The epsilon keeps
    # float noise from rejecting an exactly-qualifying pair.
    if smaller + 1e-9 < threshold * larger:
        if stats is not None:
            stats.length_rejected += 1
        return False
    needed = required_overlap(size_a, size_b, threshold)
    bound = 0
    for count_a, count_b in zip(bands_a, bands_b):
        bound += count_a if count_a <= count_b else count_b
        if bound >= needed:
            return True
    if stats is not None:
        stats.band_rejected += 1
    return False


# ----------------------------------------------------------------------
# Verification: galloping buffers for ids, frozensets for strings
# ----------------------------------------------------------------------

def as_sorted_buffer(item: Iterable[Token]) -> Optional[array]:
    """*item* as a sorted ``array('I')``, or None when any token
    falls outside the unsigned-32-bit id space (string tokens, or
    exotic ints — those collections verify on frozensets)."""
    try:
        buffer = array("I", sorted(item))
    except (TypeError, OverflowError):
        return None
    if buffer and buffer[-1] > _MAX_ARRAY_TOKEN:  # pragma: no cover
        return None
    return buffer


def intersection_size_sorted(a: Sequence[int], b: Sequence[int]) -> int:
    """``|a ∩ b|`` of two sorted duplicate-free buffers.

    Walks the smaller buffer and *gallops* (exponential search, then
    a bisect over the bracketed range) through the larger one, so
    lopsided pairs cost O(small * log(large / small)) instead of
    O(small + large).
    """
    if len(a) > len(b):
        a, b = b, a
    n = len(b)
    count = 0
    lo = 0
    for x in a:
        if lo >= n:
            break
        # Exponential probe: find a range (lo, hi] with b[hi] >= x.
        step = 1
        hi = lo
        while hi < n and b[hi] < x:
            lo = hi + 1
            hi += step
            step <<= 1
        pos = bisect_left(b, x, lo, min(hi + 1, n))
        if pos < n and b[pos] == x:
            count += 1
            lo = pos + 1
        else:
            lo = pos
    return count


def verify_jaccard(item: FrozenSet[Token],
                   other: FrozenSet[Token]) -> float:
    """Exact Jaccard similarity (0.0 when both sets are empty)."""
    intersection = len(item & other)
    union = len(item) + len(other) - intersection
    return intersection / union if union else 0.0


def verify_jaccard_sorted(a: Sequence[int], b: Sequence[int]) -> float:
    """Exact Jaccard of two sorted id buffers (galloping overlap)."""
    intersection = intersection_size_sorted(a, b)
    union = len(a) + len(b) - intersection
    return intersection / union if union else 0.0


def join_buffers(collection: Sequence[FrozenSet[Token]]
                 ) -> Optional[List[array]]:
    """Sorted ``array('I')`` verification buffers for a whole
    collection, or None when any set holds a non-id token (the
    caller keeps the frozenset path)."""
    buffers: List[array] = []
    for item in collection:
        buffer = as_sorted_buffer(item)
        if buffer is None:
            return None
        buffers.append(buffer)
    return buffers


# ----------------------------------------------------------------------
# The join
# ----------------------------------------------------------------------

def threshold_jaccard_join(left: Sequence[FrozenSet[Token]],
                           right: Sequence[FrozenSet[Token]],
                           threshold: float,
                           stats: Optional[JoinStats] = None,
                           two_level: bool = True,
                           frequency: Optional[Counter] = None
                           ) -> List[Tuple[int, int, float]]:
    """All (left_index, right_index, jaccard) with jaccard >= threshold.

    Empty sets never join (their Jaccard with anything is 0).
    ``stats`` (when given) accumulates the filter-level counters;
    ``two_level=False`` skips the signature level and verifies every
    prefix candidate — the byte-identical baseline the signature
    benchmark compares against.  ``frequency`` supplies a precomputed
    token-frequency counter (the streaming window join maintains one
    incrementally); it must equal
    ``global_frequencies(left, right)`` exactly, or prefixes diverge
    between probes and postings and the filter loses completeness.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(
            f"threshold must be in (0, 1], got {threshold}")

    if frequency is None:
        frequency = global_frequencies(left, right)

    # Inverted index over the prefixes of the right-hand collection:
    # packed array('I') postings, appended in ascending j.
    index: Dict[Token, array] = {}
    for j, item in enumerate(right):
        for token in ordered_prefix(item, frequency, threshold):
            postings = index.get(token)
            if postings is None:
                postings = index[token] = array("I")
            postings.append(j)

    # Interned-id collections verify on sorted buffers with galloping
    # intersection; any string (or otherwise non-id) token falls the
    # whole join back to frozensets.
    left_buffers = join_buffers(left)
    right_buffers = join_buffers(right) \
        if left_buffers is not None else None
    galloping = right_buffers is not None

    right_signatures = [token_signature(item) for item in right] \
        if two_level else []

    results: List[Tuple[int, int, float]] = []
    for i, item in enumerate(left):
        candidates = set()
        for token in ordered_prefix(item, frequency, threshold):
            postings = index.get(token)
            if postings is not None:
                candidates.update(postings)
        if not candidates:
            continue
        signature = token_signature(item) if two_level else None
        for j in sorted(candidates):
            if stats is not None:
                stats.candidate_pairs += 1
            if two_level and not signature_compatible(
                    signature, right_signatures[j], threshold, stats):
                continue
            if stats is not None:
                stats.verified_pairs += 1
            if galloping:
                similarity = verify_jaccard_sorted(
                    left_buffers[i], right_buffers[j])
            else:
                similarity = verify_jaccard(item, right[j])
            if similarity >= threshold:
                results.append((i, j, similarity))
                if stats is not None:
                    stats.result_pairs += 1
    return results
