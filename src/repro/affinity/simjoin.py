"""Threshold similarity join with prefix filtering.

Finds all pairs (one set from each collection) whose Jaccard
similarity meets a threshold, without comparing all pairs.  This is
the standard prefix-filter join the paper points to ([11]): order each
set's tokens by ascending global frequency; a pair with
``J(a, b) >= t`` must share a token within the first
``|s| - ceil(t * |s|) + 1`` tokens of either set, so an inverted index
over those prefixes yields a complete candidate set, which is then
verified exactly.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, FrozenSet, List, Sequence, Tuple


def _prefix_length(size: int, threshold: float) -> int:
    """Tokens of the ordered set that must be indexed."""
    return size - int(math.ceil(threshold * size)) + 1


def threshold_jaccard_join(left: Sequence[FrozenSet[str]],
                           right: Sequence[FrozenSet[str]],
                           threshold: float
                           ) -> List[Tuple[int, int, float]]:
    """All (left_index, right_index, jaccard) with jaccard >= threshold.

    Empty sets never join (their Jaccard with anything is 0).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(
            f"threshold must be in (0, 1], got {threshold}")

    frequency: Counter = Counter()
    for collection in (left, right):
        for item in collection:
            frequency.update(item)

    def ordered(item: FrozenSet[str]) -> List[str]:
        # Rare-first ordering minimizes index postings; ties broken
        # lexicographically for determinism.
        return sorted(item, key=lambda token: (frequency[token], token))

    # Inverted index over the prefixes of the right-hand collection.
    index: Dict[str, List[int]] = {}
    right_ordered: List[List[str]] = []
    for j, item in enumerate(right):
        tokens = ordered(item)
        right_ordered.append(tokens)
        if not tokens:
            continue
        for token in tokens[:_prefix_length(len(tokens), threshold)]:
            index.setdefault(token, []).append(j)

    results: List[Tuple[int, int, float]] = []
    for i, item in enumerate(left):
        tokens = ordered(item)
        if not tokens:
            continue
        candidates = set()
        for token in tokens[:_prefix_length(len(tokens), threshold)]:
            candidates.update(index.get(token, ()))
        for j in sorted(candidates):
            other = right[j]
            intersection = len(item & other)
            union = len(item) + len(other) - intersection
            similarity = intersection / union if union else 0.0
            if similarity >= threshold:
                results.append((i, j, similarity))
    return results
