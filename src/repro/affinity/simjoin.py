"""Threshold similarity join with prefix filtering.

Finds all pairs (one set from each collection) whose Jaccard
similarity meets a threshold, without comparing all pairs.  This is
the standard prefix-filter join the paper points to ([11]): order each
set's tokens by ascending global frequency; a pair with
``J(a, b) >= t`` must share a token within the first
``|s| - ceil(t * |s|) + 1`` tokens of either set, so an inverted index
over those prefixes yields a complete candidate set, which is then
verified exactly.

Tokens are any hashable, mutually orderable values: interned keyword
ids (the production path — machine-int hashing and comparison) or
strings.  One collection must stay in one token namespace; frequency
tie-breaks differ between representations, which can reorder
prefixes but never changes the verified result set (the join is
exact).

The building blocks — :func:`global_frequencies`,
:func:`ordered_prefix`, :func:`verify_jaccard` — are public because
the partitioned parallel join (:mod:`repro.affinity.windowjoin`)
must compute the *identical* ordering, prefix slice, and verification
to guarantee its per-partition results merge into exactly this join's
output.  One implementation, two drivers.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, \
    Tuple

Token = Hashable


def _prefix_length(size: int, threshold: float) -> int:
    """Tokens of the ordered set that must be indexed."""
    return size - int(math.ceil(threshold * size)) + 1


def global_frequencies(*collections: Iterable[FrozenSet[Token]]
                       ) -> Counter:
    """Token -> occurrence count over every set of every collection
    (the shared ordering key both join drivers must agree on)."""
    frequency: Counter = Counter()
    for collection in collections:
        for item in collection:
            frequency.update(item)
    return frequency


def ordered_prefix(item: FrozenSet[Token], frequency: Counter,
                   threshold: float) -> List[Token]:
    """The prefix-filter tokens of *item*: rare-first ordering (ties
    broken lexicographically for determinism), truncated to the
    prefix length for *threshold*.  Empty for the empty set."""
    tokens = sorted(item, key=lambda token: (frequency[token], token))
    if not tokens:
        return []
    return tokens[:_prefix_length(len(tokens), threshold)]


def verify_jaccard(item: FrozenSet[Token],
                   other: FrozenSet[Token]) -> float:
    """Exact Jaccard similarity (0.0 when both sets are empty)."""
    intersection = len(item & other)
    union = len(item) + len(other) - intersection
    return intersection / union if union else 0.0


def threshold_jaccard_join(left: Sequence[FrozenSet[Token]],
                           right: Sequence[FrozenSet[Token]],
                           threshold: float
                           ) -> List[Tuple[int, int, float]]:
    """All (left_index, right_index, jaccard) with jaccard >= threshold.

    Empty sets never join (their Jaccard with anything is 0).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(
            f"threshold must be in (0, 1], got {threshold}")

    frequency = global_frequencies(left, right)

    # Inverted index over the prefixes of the right-hand collection.
    index: Dict[Token, List[int]] = {}
    for j, item in enumerate(right):
        for token in ordered_prefix(item, frequency, threshold):
            index.setdefault(token, []).append(j)

    results: List[Tuple[int, int, float]] = []
    for i, item in enumerate(left):
        candidates = set()
        for token in ordered_prefix(item, frequency, threshold):
            candidates.update(index.get(token, ()))
        for j in sorted(candidates):
            similarity = verify_jaccard(item, right[j])
            if similarity >= threshold:
                results.append((i, j, similarity))
    return results
