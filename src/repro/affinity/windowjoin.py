"""Affinity edges between a streaming window and a new interval.

The batch graph construction (:mod:`repro.core.stability`) compares
cluster pairs either all-pairs or — for Jaccard — through the
prefix-filter similarity join of :mod:`repro.affinity.simjoin`.  The
streaming front ends need the same computation against the sliding
window of the previous ``g + 1`` intervals; this module provides it
once so online and offline paths build *identical* edge sets.

Weight semantics match the batch builder's: an edge is kept when its
affinity strictly exceeds θ, and weights must already lie in
``(0, 1]`` (up to float slop).  The batch path can normalize an
unbounded measure by the global maximum after seeing every edge; a
stream cannot revisit past edges, so unbounded measures are rejected
here instead of being silently clamped.
"""

from __future__ import annotations

import zlib
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.affinity.measures import collection_token_sets, jaccard
from repro.affinity.simjoin import (
    Token,
    global_frequencies,
    ordered_prefix,
    threshold_jaccard_join,
    verify_jaccard,
)

# Matches repro.core.cluster_graph.EPSILON (float-slop tolerance on
# the (0, 1] weight bound); duplicated to keep affinity a leaf module.
EPSILON = 1e-12

# Engage the prefix-filter join once an interval pair implies more
# than this many comparisons.  Streaming intervals are latency
# sensitive, so the cutoff is far lower than the batch default (the
# join is exact for Jaccard — the choice affects speed, not results).
STREAM_SIMJOIN_CUTOFF = 64

NodeId = Tuple[int, int]
WindowEntry = Tuple[Sequence[NodeId], Sequence]

# One partitioned-join work item: probe list (left index, its prefix
# tokens in this partition), the partition's inverted index over the
# right side's prefixes, the keyword sets either side needs for exact
# verification, and the threshold.  Everything is builtin types —
# interned id sets on the production path, so payloads pickle to
# worker processes without a single keyword string.
JoinPartition = Tuple[
    List[Tuple[int, List[Token]]],
    Dict[Token, List[int]],
    Dict[int, FrozenSet[Token]],
    Dict[int, FrozenSet[Token]],
    float,
]


def _token_partition(token: Token, num_partitions: int) -> int:
    """Deterministic token -> partition assignment.  Interned ids
    route by value; strings by crc32 (not ``hash()``, which is salted
    per process)."""
    if isinstance(token, int):
        return token % num_partitions
    return zlib.crc32(token.encode("utf-8")) % num_partitions


def join_partition_task(payload: JoinPartition
                        ) -> List[Tuple[int, int, float]]:
    """Verify one index-token partition of the prefix-filter join.

    Pure and picklable: the unit of work a
    :class:`~repro.parallel.ProcessExecutor` receives.  Candidates are
    pairs sharing a prefix token *assigned to this partition*;
    verification computes the exact Jaccard, so any pair this returns
    is correct — partitioning affects only which partition(s) discover
    it.
    """
    probes, postings, left_sets, right_sets, threshold = payload
    results: List[Tuple[int, int, float]] = []
    for i, tokens in probes:
        candidates = set()
        for token in tokens:
            candidates.update(postings.get(token, ()))
        if not candidates:
            continue
        item = left_sets[i]
        for j in sorted(candidates):
            similarity = verify_jaccard(item, right_sets[j])
            if similarity >= threshold:
                results.append((i, j, similarity))
    return results


def partition_join_payloads(left_sets: Sequence[FrozenSet[Token]],
                            right_sets: Sequence[FrozenSet[Token]],
                            threshold: float,
                            num_partitions: int) -> List[JoinPartition]:
    """Split the prefix-filter join into per-token-partition payloads.

    Ordering and prefix lengths come from the same
    :func:`~repro.affinity.simjoin.ordered_prefix` /
    :func:`~repro.affinity.simjoin.global_frequencies` helpers the
    serial join uses, computed once here against the *global* token
    frequencies (they must agree across partitions for the prefix
    filter to stay complete); each prefix token then routes its
    postings and probes to :func:`_token_partition` (``id %
    num_partitions`` for interned ids, crc32 for strings).  A
    qualifying pair shares at least one prefix token, so it is
    discovered by at least the partition that token maps to; a pair
    sharing prefix tokens in several partitions is found by each —
    with the same exact weight — and deduplicated on merge.  The
    merged result is therefore *exactly* the serial join's.
    """
    frequency = global_frequencies(left_sets, right_sets)

    def prefix(item: FrozenSet[Token]) -> List[Token]:
        return ordered_prefix(item, frequency, threshold)

    probes: List[List[Tuple[int, List[Token]]]] = \
        [[] for _ in range(num_partitions)]
    postings: List[Dict[Token, List[int]]] = \
        [{} for _ in range(num_partitions)]
    right_needed: List[set] = [set() for _ in range(num_partitions)]
    for j, item in enumerate(right_sets):
        for token in prefix(item):
            p = _token_partition(token, num_partitions)
            postings[p].setdefault(token, []).append(j)
            right_needed[p].add(j)
    for i, item in enumerate(left_sets):
        by_partition: Dict[int, List[Token]] = {}
        for token in prefix(item):
            p = _token_partition(token, num_partitions)
            if postings[p].get(token):
                by_partition.setdefault(p, []).append(token)
        for p, tokens in by_partition.items():
            probes[p].append((i, tokens))

    payloads: List[JoinPartition] = []
    for p in range(num_partitions):
        if not probes[p]:
            continue
        left_slice = {i: left_sets[i] for i, _ in probes[p]}
        right_slice = {j: right_sets[j] for j in right_needed[p]}
        payloads.append((probes[p], postings[p], left_slice,
                         right_slice, threshold))
    return payloads


def _checked(weight: float, measure: Callable) -> float:
    if weight > 1.0 + EPSILON:
        name = getattr(measure, "__name__", repr(measure))
        raise ValueError(
            f"affinity measure {name} returned {weight}, outside "
            f"(0, 1]: a stream cannot renormalize past edges by a "
            f"global maximum — use a bounded measure (jaccard, dice, "
            f"overlap) or pre-normalized weights")
    return min(weight, 1.0)


def window_affinity_edges(window: Sequence[WindowEntry],
                          clusters: Sequence,
                          measure: Callable = jaccard,
                          theta: float = 0.1,
                          use_simjoin: Optional[bool] = None,
                          simjoin_cutoff: int = STREAM_SIMJOIN_CUTOFF,
                          executor=None,
                          num_partitions: Optional[int] = None
                          ) -> List[Tuple[NodeId, int, float]]:
    """Edges from the recent *window* to a new interval's *clusters*.

    ``window`` holds ``(node_ids, clusters)`` pairs for the previous
    ``g + 1`` intervals, oldest first; cluster objects expose
    ``keywords``.  Returns ``(parent_node, local_index, weight)``
    triples with ``weight > theta``, the shape
    :meth:`~repro.core.online.StreamingStableClusters.add_interval`
    consumes.  ``use_simjoin`` forces the prefix-filter join on or
    off; by default it engages for Jaccard once the whole window's
    comparison count exceeds ``simjoin_cutoff``².  When engaged, the
    window's clusters are joined against the new interval in a
    *single* call — one frequency counter and one inverted index per
    ingested interval, not one per window interval (per-interval
    latency is the serving metric).  The join is exact only for
    Jaccard, so forcing it on with another measure raises rather
    than silently falling back to all-pairs.

    ``executor`` (a :class:`~repro.parallel.Executor` with more than
    one worker) additionally partitions the engaged join by index
    token across *num_partitions* pieces (default: the executor's
    worker count) and merges the per-partition results exactly — same
    edges, same order, parallel wall-clock.
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    is_jaccard = measure is jaccard
    if use_simjoin and not is_jaccard:
        name = getattr(measure, "__name__", repr(measure))
        raise ValueError(
            f"use_simjoin=True requires the jaccard measure (the "
            f"prefix-filter join is only exact for it), got {name}")
    edges: List[Tuple[NodeId, int, float]] = []
    if not clusters:
        return edges
    window_size = sum(len(old) for _, old in window)
    engage_join = use_simjoin if use_simjoin is not None else (
        is_jaccard
        and window_size * len(clusters) > simjoin_cutoff ** 2)
    if engage_join:  # only ever true for Jaccard (checked above)
        # Concatenate the window oldest-first so edge order matches
        # the all-pairs path (results are order-insensitive anyway).
        # Token sets are interned ids when window and new clusters
        # share one vocabulary, decoded strings otherwise.
        owners: List[NodeId] = []
        old_clusters_flat = []
        for node_ids, old_clusters in window:
            for a, old_cluster in enumerate(old_clusters):
                owners.append(node_ids[a])
                old_clusters_flat.append(old_cluster)
        old_sets, new_sets = collection_token_sets(
            old_clusters_flat, list(clusters))
        if executor is not None and executor.workers > 1:
            pieces = num_partitions or executor.workers
            payloads = partition_join_payloads(old_sets, new_sets,
                                               theta, pieces)
            merged: Dict[Tuple[int, int], float] = {}
            for results in executor.map_stages(join_partition_task,
                                               payloads):
                for a, b, weight in results:
                    merged[(a, b)] = weight
            matches = [(a, b, merged[(a, b)])
                       for a, b in sorted(merged)]
        else:
            matches = threshold_jaccard_join(old_sets, new_sets, theta)
        for a, b, weight in matches:
            # The join is >= theta; the paper keeps > theta.
            if weight > theta:
                edges.append((owners[a], b, weight))
        return edges
    for node_ids, old_clusters in window:
        for a, old_cluster in enumerate(old_clusters):
            for b, cluster in enumerate(clusters):
                weight = measure(old_cluster, cluster)
                if weight > theta:
                    edges.append((node_ids[a], b,
                                  _checked(weight, measure)))
    return edges
