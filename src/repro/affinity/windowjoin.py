"""Affinity edges between a streaming window and a new interval.

The batch graph construction (:mod:`repro.core.stability`) compares
cluster pairs either all-pairs or — for Jaccard — through the
two-level prefix-filter similarity join of
:mod:`repro.affinity.simjoin`.  The streaming front ends need the same
computation against the sliding window of the previous ``g + 1``
intervals; this module provides it once so online and offline paths
build *identical* edge sets.

Weight semantics match the batch builder's: an edge is kept when its
affinity strictly exceeds θ, and weights must already lie in
``(0, 1]`` (up to float slop).  The batch path can normalize an
unbounded measure by the global maximum after seeing every edge; a
stream cannot revisit past edges, so unbounded measures are rejected
here instead of being silently clamped.

Two streaming-specific optimizations live here:

* :class:`WindowFrequencyTracker` maintains the join's global token
  frequencies *incrementally* — per-interval token-count deltas are
  added when an interval enters the window and subtracted when it is
  evicted, instead of recounting every window token on every ingest.
  The maintained counter is integer-exact, so prefixes (and therefore
  the join result) are identical to a fresh recount.
* The partitioned parallel join ships each partition the level-two
  signatures of the sets it may verify, so worker processes reject
  candidates with the same length/checksum-band checks the serial
  join applies — per-partition decisions depend only on the pair's
  global signatures, which is why the merged result is exactly the
  serial join's.
"""

from __future__ import annotations

import zlib
from array import array
from collections import Counter
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.affinity.measures import (
    jaccard,
    share_token_namespace,
    token_sets,
)
from repro.affinity.simjoin import (
    JoinStats,
    Signature,
    Token,
    global_frequencies,
    join_buffers,
    ordered_prefix,
    signature_compatible,
    threshold_jaccard_join,
    token_signature,
    verify_jaccard,
    verify_jaccard_sorted,
)

# Matches repro.core.cluster_graph.EPSILON (float-slop tolerance on
# the (0, 1] weight bound); duplicated to keep affinity a leaf module.
EPSILON = 1e-12

# Engage the prefix-filter join once an interval pair implies more
# than this many comparisons.  Streaming intervals are latency
# sensitive, so the cutoff is far lower than the batch default (the
# join is exact for Jaccard — the choice affects speed, not results).
STREAM_SIMJOIN_CUTOFF = 64

NodeId = Tuple[int, int]
WindowEntry = Tuple[Sequence[NodeId], Sequence]

# One partitioned-join work item: probe list (left index, its prefix
# tokens in this partition), the partition's inverted index over the
# right side's prefixes, the verification forms either side needs
# (sorted id buffers on the production path, frozensets on the string
# fallback), the level-two signatures of both sides, and the
# threshold.  Everything is builtin types — interned id sets on the
# production path, so payloads pickle to worker processes without a
# single keyword string.
VerifyForm = Union[FrozenSet[Token], Sequence[int]]
JoinPartition = Tuple[
    List[Tuple[int, List[Token]]],
    Dict[Token, Sequence[int]],
    Dict[int, VerifyForm],
    Dict[int, VerifyForm],
    Dict[int, Signature],
    Dict[int, Signature],
    float,
]


def _token_partition(token: Token, num_partitions: int) -> int:
    """Deterministic token -> partition assignment.  Interned ids
    route by value; strings by crc32 (not ``hash()``, which is salted
    per process)."""
    if isinstance(token, int):
        return token % num_partitions
    return zlib.crc32(token.encode("utf-8")) % num_partitions


def join_partition_task(payload: JoinPartition
                        ) -> List[Tuple[int, int, float]]:
    """Verify one index-token partition of the prefix-filter join.

    Pure and picklable: the unit of work a
    :class:`~repro.parallel.ProcessExecutor` receives.  Candidates are
    pairs sharing a prefix token *assigned to this partition*; the
    shipped level-two signatures reject length- or band-incompatible
    pairs exactly as the serial join does, and verification computes
    the exact Jaccard — so any pair this returns is correct, and any
    qualifying pair survives the signature checks in *every* partition
    that discovers it (the checks depend only on the pair's global
    signatures).  Partitioning affects only which partition(s)
    discover a pair.
    """
    (probes, postings, left_forms, right_forms,
     left_sigs, right_sigs, threshold) = payload
    results: List[Tuple[int, int, float]] = []
    for i, tokens in probes:
        candidates = set()
        for token in tokens:
            candidates.update(postings.get(token, ()))
        if not candidates:
            continue
        form = left_forms[i]
        galloping = not isinstance(form, (frozenset, set))
        signature = left_sigs[i]
        for j in sorted(candidates):
            if not signature_compatible(signature, right_sigs[j],
                                        threshold):
                continue
            if galloping:
                similarity = verify_jaccard_sorted(form, right_forms[j])
            else:
                similarity = verify_jaccard(form, right_forms[j])
            if similarity >= threshold:
                results.append((i, j, similarity))
    return results


def partition_join_payloads(left_sets: Sequence[FrozenSet[Token]],
                            right_sets: Sequence[FrozenSet[Token]],
                            threshold: float,
                            num_partitions: int,
                            frequency: Optional[Counter] = None
                            ) -> List[JoinPartition]:
    """Split the prefix-filter join into per-token-partition payloads.

    Ordering and prefix lengths come from the same
    :func:`~repro.affinity.simjoin.ordered_prefix` /
    :func:`~repro.affinity.simjoin.global_frequencies` helpers the
    serial join uses, computed once here against the *global* token
    frequencies (they must agree across partitions for the prefix
    filter to stay complete; ``frequency`` may supply an incrementally
    maintained counter); each prefix token then routes its postings
    and probes to :func:`_token_partition` (``id % num_partitions``
    for interned ids, crc32 for strings).  A qualifying pair shares at
    least one prefix token, so it is discovered by at least the
    partition that token maps to; a pair sharing prefix tokens in
    several partitions is found by each — with the same exact weight,
    after the same global-signature checks — and deduplicated on
    merge.  The merged result is therefore *exactly* the serial
    join's.

    Payloads carry each side's verification form (sorted ``array('I')``
    id buffers when the whole collection is interned, frozensets
    otherwise — matching the serial join's representation choice) and
    the level-two signatures of every set a partition may probe.
    """
    if frequency is None:
        frequency = global_frequencies(left_sets, right_sets)

    def prefix(item: FrozenSet[Token]) -> List[Token]:
        return ordered_prefix(item, frequency, threshold)

    left_buffers = join_buffers(left_sets)
    right_buffers = join_buffers(right_sets) \
        if left_buffers is not None else None
    galloping = right_buffers is not None

    def form(side_sets, side_buffers, index):
        return side_buffers[index] if galloping else side_sets[index]

    left_signatures = [token_signature(item) for item in left_sets]
    right_signatures = [token_signature(item) for item in right_sets]

    probes: List[List[Tuple[int, List[Token]]]] = \
        [[] for _ in range(num_partitions)]
    postings: List[Dict[Token, array]] = \
        [{} for _ in range(num_partitions)]
    right_needed: List[set] = [set() for _ in range(num_partitions)]
    for j, item in enumerate(right_sets):
        for token in prefix(item):
            p = _token_partition(token, num_partitions)
            bucket = postings[p].get(token)
            if bucket is None:
                bucket = postings[p][token] = array("I")
            bucket.append(j)
            right_needed[p].add(j)
    for i, item in enumerate(left_sets):
        by_partition: Dict[int, List[Token]] = {}
        for token in prefix(item):
            p = _token_partition(token, num_partitions)
            if postings[p].get(token):
                by_partition.setdefault(p, []).append(token)
        for p, tokens in by_partition.items():
            probes[p].append((i, tokens))

    payloads: List[JoinPartition] = []
    for p in range(num_partitions):
        if not probes[p]:
            continue
        left_slice = {i: form(left_sets, left_buffers, i)
                      for i, _ in probes[p]}
        right_slice = {j: form(right_sets, right_buffers, j)
                       for j in right_needed[p]}
        left_sig_slice = {i: left_signatures[i] for i, _ in probes[p]}
        right_sig_slice = {j: right_signatures[j]
                           for j in right_needed[p]}
        payloads.append((probes[p], postings[p], left_slice,
                         right_slice, left_sig_slice, right_sig_slice,
                         threshold))
    return payloads


class WindowFrequencyTracker:
    """Incrementally maintained token frequencies for the window join.

    Each window interval contributes a token-count delta, added when
    the interval's cluster list first appears in the window and
    subtracted (exactly, entries deleted at zero) when it is evicted
    — so a steady-state ingest counts only the entering interval's
    tokens instead of the whole window's.  Tracked intervals are
    keyed by the identity of their cluster-list object (the streaming
    pipelines keep one list per window interval alive for its whole
    residency; a strong reference here keeps ids from being reused
    while tracked).

    The tracker also remembers whether counts were taken over decoded
    keyword strings or interned ids; if the window's joint
    representation flips (a foreign-vocabulary cluster arriving), it
    rebuilds from scratch — correctness never depends on the cache.
    """

    def __init__(self) -> None:
        self._counter: Counter = Counter()
        self._entries: Dict[int, Tuple[Sequence, Counter]] = {}
        self._decoded = False

    def frequencies(self, window: Sequence[WindowEntry],
                    window_sets: Sequence[Sequence[frozenset]],
                    new_sets: Sequence[frozenset],
                    decoded: bool) -> Counter:
        """The join's global frequency counter for this ingest.

        ``window_sets`` holds each window entry's token sets in the
        representation *decoded* selects; the result equals
        ``global_frequencies(flattened window sets, new_sets)``
        integer-for-integer.
        """
        if decoded != self._decoded:
            self._counter = Counter()
            self._entries = {}
            self._decoded = decoded
        live = set()
        for (_, clusters), sets in zip(window, window_sets):
            key = id(clusters)
            live.add(key)
            if key not in self._entries:
                delta: Counter = Counter()
                for item in sets:
                    delta.update(item)
                self._entries[key] = (clusters, delta)
                self._counter.update(delta)
        for key in list(self._entries):
            if key not in live:
                _, delta = self._entries.pop(key)
                for token, count in delta.items():
                    remaining = self._counter[token] - count
                    if remaining > 0:
                        self._counter[token] = remaining
                    else:
                        del self._counter[token]
        frequency = self._counter.copy()
        for item in new_sets:
            frequency.update(item)
        return frequency


def _checked(weight: float, measure: Callable) -> float:
    if weight > 1.0 + EPSILON:
        name = getattr(measure, "__name__", repr(measure))
        raise ValueError(
            f"affinity measure {name} returned {weight}, outside "
            f"(0, 1]: a stream cannot renormalize past edges by a "
            f"global maximum — use a bounded measure (jaccard, dice, "
            f"overlap) or pre-normalized weights")
    return min(weight, 1.0)


def window_affinity_edges(window: Sequence[WindowEntry],
                          clusters: Sequence,
                          measure: Callable = jaccard,
                          theta: float = 0.1,
                          use_simjoin: Optional[bool] = None,
                          simjoin_cutoff: int = STREAM_SIMJOIN_CUTOFF,
                          executor=None,
                          num_partitions: Optional[int] = None,
                          frequency_tracker: Optional[
                              WindowFrequencyTracker] = None,
                          join_stats: Optional[JoinStats] = None
                          ) -> List[Tuple[NodeId, int, float]]:
    """Edges from the recent *window* to a new interval's *clusters*.

    ``window`` holds ``(node_ids, clusters)`` pairs for the previous
    ``g + 1`` intervals, oldest first; cluster objects expose
    ``keywords``.  Returns ``(parent_node, local_index, weight)``
    triples with ``weight > theta``, the shape
    :meth:`~repro.core.online.StreamingStableClusters.add_interval`
    consumes.  ``use_simjoin`` forces the prefix-filter join on or
    off; by default it engages for Jaccard once the whole window's
    comparison count exceeds ``simjoin_cutoff``².  When engaged, the
    window's clusters are joined against the new interval in a
    *single* call — one frequency counter and one inverted index per
    ingested interval, not one per window interval (per-interval
    latency is the serving metric).  The join is exact only for
    Jaccard, so forcing it on with another measure raises rather
    than silently falling back to all-pairs.

    ``frequency_tracker`` (owned by the caller, one per stream)
    maintains the global token frequencies incrementally across
    ingests; without one, every call recounts the window.
    ``join_stats`` accumulates the two-level filter's candidate /
    verified counters for the serial engaged join (the partitioned
    path reports totals per worker, not here).

    ``executor`` (a :class:`~repro.parallel.Executor` with more than
    one worker) additionally partitions the engaged join by index
    token across *num_partitions* pieces (default: the executor's
    worker count) and merges the per-partition results exactly — same
    edges, same order, parallel wall-clock.
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    is_jaccard = measure is jaccard
    if use_simjoin and not is_jaccard:
        name = getattr(measure, "__name__", repr(measure))
        raise ValueError(
            f"use_simjoin=True requires the jaccard measure (the "
            f"prefix-filter join is only exact for it), got {name}")
    edges: List[Tuple[NodeId, int, float]] = []
    if not clusters:
        return edges
    window_size = sum(len(old) for _, old in window)
    engage_join = use_simjoin if use_simjoin is not None else (
        is_jaccard
        and window_size * len(clusters) > simjoin_cutoff ** 2)
    if engage_join:  # only ever true for Jaccard (checked above)
        # Concatenate the window oldest-first so edge order matches
        # the all-pairs path (results are order-insensitive anyway).
        # Token sets are interned ids when window and new clusters
        # share one vocabulary, decoded strings otherwise.
        new_clusters = list(clusters)
        decoded = not share_token_namespace(
            [cluster for _, old in window for cluster in old],
            new_clusters)
        owners: List[NodeId] = []
        old_sets: List[frozenset] = []
        window_sets: List[List[frozenset]] = []
        for node_ids, old_clusters in window:
            entry_sets = token_sets(old_clusters, decoded)
            window_sets.append(entry_sets)
            old_sets.extend(entry_sets)
            owners.extend(node_ids[:len(old_clusters)])
        new_sets = token_sets(new_clusters, decoded)
        frequency = None
        if frequency_tracker is not None:
            frequency = frequency_tracker.frequencies(
                window, window_sets, new_sets, decoded)
        if executor is not None and executor.workers > 1:
            pieces = num_partitions or executor.workers
            payloads = partition_join_payloads(old_sets, new_sets,
                                               theta, pieces,
                                               frequency=frequency)
            merged: Dict[Tuple[int, int], float] = {}
            for results in executor.map_stages(join_partition_task,
                                               payloads):
                for a, b, weight in results:
                    merged[(a, b)] = weight
            matches = [(a, b, merged[(a, b)])
                       for a, b in sorted(merged)]
        else:
            matches = threshold_jaccard_join(old_sets, new_sets, theta,
                                             stats=join_stats,
                                             frequency=frequency)
        for a, b, weight in matches:
            # The join is >= theta; the paper keeps > theta.
            if weight > theta:
                edges.append((owners[a], b, weight))
        return edges
    for node_ids, old_clusters in window:
        for a, old_cluster in enumerate(old_clusters):
            for b, cluster in enumerate(clusters):
                weight = measure(old_cluster, cluster)
                if weight > theta:
                    edges.append((node_ids[a], b,
                                  _checked(weight, measure)))
    return edges
