"""Affinity edges between a streaming window and a new interval.

The batch graph construction (:mod:`repro.core.stability`) compares
cluster pairs either all-pairs or — for Jaccard — through the
prefix-filter similarity join of :mod:`repro.affinity.simjoin`.  The
streaming front ends need the same computation against the sliding
window of the previous ``g + 1`` intervals; this module provides it
once so online and offline paths build *identical* edge sets.

Weight semantics match the batch builder's: an edge is kept when its
affinity strictly exceeds θ, and weights must already lie in
``(0, 1]`` (up to float slop).  The batch path can normalize an
unbounded measure by the global maximum after seeing every edge; a
stream cannot revisit past edges, so unbounded measures are rejected
here instead of being silently clamped.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.affinity.measures import jaccard
from repro.affinity.simjoin import threshold_jaccard_join

# Matches repro.core.cluster_graph.EPSILON (float-slop tolerance on
# the (0, 1] weight bound); duplicated to keep affinity a leaf module.
EPSILON = 1e-12

# Engage the prefix-filter join once an interval pair implies more
# than this many comparisons.  Streaming intervals are latency
# sensitive, so the cutoff is far lower than the batch default (the
# join is exact for Jaccard — the choice affects speed, not results).
STREAM_SIMJOIN_CUTOFF = 64

NodeId = Tuple[int, int]
WindowEntry = Tuple[Sequence[NodeId], Sequence]


def _checked(weight: float, measure: Callable) -> float:
    if weight > 1.0 + EPSILON:
        name = getattr(measure, "__name__", repr(measure))
        raise ValueError(
            f"affinity measure {name} returned {weight}, outside "
            f"(0, 1]: a stream cannot renormalize past edges by a "
            f"global maximum — use a bounded measure (jaccard, dice, "
            f"overlap) or pre-normalized weights")
    return min(weight, 1.0)


def window_affinity_edges(window: Sequence[WindowEntry],
                          clusters: Sequence,
                          measure: Callable = jaccard,
                          theta: float = 0.1,
                          use_simjoin: Optional[bool] = None,
                          simjoin_cutoff: int = STREAM_SIMJOIN_CUTOFF
                          ) -> List[Tuple[NodeId, int, float]]:
    """Edges from the recent *window* to a new interval's *clusters*.

    ``window`` holds ``(node_ids, clusters)`` pairs for the previous
    ``g + 1`` intervals, oldest first; cluster objects expose
    ``keywords``.  Returns ``(parent_node, local_index, weight)``
    triples with ``weight > theta``, the shape
    :meth:`~repro.core.online.StreamingStableClusters.add_interval`
    consumes.  ``use_simjoin`` forces the prefix-filter join on or
    off; by default it engages for Jaccard once the whole window's
    comparison count exceeds ``simjoin_cutoff``².  When engaged, the
    window's clusters are joined against the new interval in a
    *single* call — one frequency counter and one inverted index per
    ingested interval, not one per window interval (per-interval
    latency is the serving metric).  The join is exact only for
    Jaccard, so forcing it on with another measure raises rather
    than silently falling back to all-pairs.
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    is_jaccard = measure is jaccard
    if use_simjoin and not is_jaccard:
        name = getattr(measure, "__name__", repr(measure))
        raise ValueError(
            f"use_simjoin=True requires the jaccard measure (the "
            f"prefix-filter join is only exact for it), got {name}")
    edges: List[Tuple[NodeId, int, float]] = []
    if not clusters:
        return edges
    window_size = sum(len(old) for _, old in window)
    engage_join = use_simjoin if use_simjoin is not None else (
        is_jaccard
        and window_size * len(clusters) > simjoin_cutoff ** 2)
    if engage_join:  # only ever true for Jaccard (checked above)
        # Concatenate the window oldest-first so edge order matches
        # the all-pairs path (results are order-insensitive anyway).
        owners: List[NodeId] = []
        old_sets = []
        for node_ids, old_clusters in window:
            for a, old_cluster in enumerate(old_clusters):
                owners.append(node_ids[a])
                old_sets.append(old_cluster.keywords)
        new_sets = [cluster.keywords for cluster in clusters]
        for a, b, weight in threshold_jaccard_join(old_sets,
                                                   new_sets, theta):
            # The join is >= theta; the paper keeps > theta.
            if weight > theta:
                edges.append((owners[a], b, weight))
        return edges
    for node_ids, old_clusters in window:
        for a, old_cluster in enumerate(old_clusters):
            for b, cluster in enumerate(clusters):
                weight = measure(old_cluster, cluster)
                if weight > theta:
                    edges.append((node_ids[a], b,
                                  _checked(weight, measure)))
    return edges
