"""End-to-end pipeline: corpus -> keyword clusters -> stable clusters."""

from repro.pipeline.cluster_generation import (
    ClusterGenerationReport,
    generate_interval_clusters,
    generate_interval_clusters_task,
)
from repro.pipeline.stable_pipeline import (
    StableClusterResult,
    find_stable_clusters,
    generate_corpus_clusters,
    render_path_clusters,
    render_stable_path,
)

__all__ = [
    "ClusterGenerationReport",
    "StableClusterResult",
    "find_stable_clusters",
    "generate_corpus_clusters",
    "generate_interval_clusters",
    "generate_interval_clusters_task",
    "render_path_clusters",
    "render_stable_path",
]
