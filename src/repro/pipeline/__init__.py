"""End-to-end pipeline: corpus -> keyword clusters -> stable clusters."""

from repro.pipeline.cluster_generation import (
    ClusterGenerationReport,
    generate_interval_clusters,
)
from repro.pipeline.stable_pipeline import (
    StableClusterResult,
    find_stable_clusters,
    render_path_clusters,
    render_stable_path,
)

__all__ = [
    "ClusterGenerationReport",
    "StableClusterResult",
    "find_stable_clusters",
    "generate_interval_clusters",
    "render_path_clusters",
    "render_stable_path",
]
