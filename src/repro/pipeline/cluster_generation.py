"""Section 3 end to end: documents of one interval -> keyword clusters.

The driver performs the paper's full cluster-generation procedure:
read the interval's documents, build the co-occurrence triplets
(optionally through the external-memory sort), run the chi-square and
correlation-coefficient pruning, and report the biconnected components
of the pruned graph as keyword clusters.  A report object records the
stage-by-stage sizes the Figure 6 experiment plots.

Two entry points cover the two calling shapes:

* :func:`generate_interval_clusters` — the corpus-facing call the
  batch pipeline and CLI use;
* :func:`generate_interval_clusters_task` — the same procedure as a
  *pure function of plain documents*, returning ``(clusters,
  report)``.  It closes over nothing and every argument and result
  pickles, so it is the unit of work
  :class:`~repro.parallel.ProcessExecutor` fans out across intervals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import List, Optional, Sequence, Tuple

from repro.cooccur.keyword_graph import KeywordGraph, PruneReport, RHO_DEFAULT
from repro.graph.clusters import (
    KeywordCluster,
    compact_clusters,
    extract_clusters,
)
from repro.stats import CHI2_CRITICAL_95
from repro.storage.iostats import IOStats
from repro.text.documents import Document, IntervalCorpus
from repro.vocab import Vocabulary


@dataclass
class ClusterGenerationReport:
    """Stage sizes and timings of one cluster-generation run."""

    interval: int = 0
    num_documents: int = 0
    num_keywords: int = 0
    num_edges: int = 0
    edges_after_chi2: int = 0
    edges_after_rho: int = 0
    num_clusters: int = 0
    seconds_counting: float = 0.0
    seconds_pruning: float = 0.0
    seconds_art: float = 0.0

    @property
    def seconds_total(self) -> float:
        """Whole-procedure wall time (the Figure 6 y-axis)."""
        return self.seconds_counting + self.seconds_pruning \
            + self.seconds_art

    @classmethod
    def merge(cls, reports: Sequence["ClusterGenerationReport"]
              ) -> "ClusterGenerationReport":
        """Sum per-interval (or per-worker) reports into one row.

        Counts and stage seconds add; ``interval`` becomes the
        smallest merged interval (the row labels a range, not one
        tick).  Parallel runs merge each worker's report through this
        so a fanned-out generation still yields one Figure-6 row.
        """
        merged = cls()
        if not reports:
            return merged
        merged.interval = min(report.interval for report in reports)
        for report in reports:
            for spec in fields(cls):
                if spec.name == "interval":
                    continue
                setattr(merged, spec.name,
                        getattr(merged, spec.name)
                        + getattr(report, spec.name))
        return merged

    def __add__(self, other: "ClusterGenerationReport"
                ) -> "ClusterGenerationReport":
        return type(self).merge([self, other])


def generate_interval_clusters_task(
        documents: Sequence[Document], interval: int,
        rho_threshold: float = RHO_DEFAULT,
        chi2_critical: float = CHI2_CRITICAL_95,
        min_edges: int = 2,
        include_bridge_trees: bool = False,
        external: bool = False,
        directory: Optional[str] = None,
        stack_budget: int = 0,
        stats: Optional[IOStats] = None
) -> Tuple[List[KeywordCluster], ClusterGenerationReport]:
    """The full Section 3 procedure as a pure, picklable unit of work.

    Takes plain documents (not a corpus) and returns both the clusters
    and the stage report, so per-interval runs can be shipped to
    worker processes and their outputs merged.  The whole procedure
    computes on interned keyword ids: documents are interned into an
    interval-local vocabulary (new tokens in sorted order, so id
    order mirrors lexicographic keyword order and the run is
    positionally identical to a string-token run), counting, pruning
    and biconnected components operate on int pairs, and the reported
    clusters come back bound to a minimal
    :class:`~repro.vocab.FrozenVocabulary` — a pickled result ships
    each surviving keyword string once, not once per cluster.
    Drivers rebind the clusters into their corpus vocabulary
    (:meth:`~repro.graph.clusters.KeywordCluster.rebind`).  ``stats``
    is only meaningful in-process (a worker's copy would mutate in
    vain).
    """
    report = ClusterGenerationReport(interval=interval)
    if not documents:
        return [], report

    started = time.perf_counter()
    vocab = Vocabulary()
    keyword_sets = vocab.intern_sets(
        doc.keywords() for doc in documents)
    graph = KeywordGraph.from_keyword_sets(
        keyword_sets, external=external, directory=directory, stats=stats)
    counted = time.perf_counter()

    prune_report = PruneReport()
    pruned = graph.prune(rho_threshold=rho_threshold,
                         chi2_critical=chi2_critical,
                         report=prune_report)
    pruned_at = time.perf_counter()

    clusters = compact_clusters(extract_clusters(
        pruned, interval=interval, min_edges=min_edges,
        include_bridge_trees=include_bridge_trees,
        stack_budget=stack_budget,
        spill_dir=directory, stats=stats, vocab=vocab))
    finished = time.perf_counter()

    report.num_documents = len(documents)
    report.num_keywords = graph.num_keywords
    report.num_edges = graph.num_edges
    report.edges_after_chi2 = prune_report.after_chi2
    report.edges_after_rho = prune_report.after_rho
    report.num_clusters = len(clusters)
    report.seconds_counting = counted - started
    report.seconds_pruning = pruned_at - counted
    report.seconds_art = finished - pruned_at
    return clusters, report


def generate_interval_clusters(corpus: IntervalCorpus, interval: int,
                               rho_threshold: float = RHO_DEFAULT,
                               chi2_critical: float = CHI2_CRITICAL_95,
                               min_edges: int = 2,
                               include_bridge_trees: bool = False,
                               external: bool = False,
                               directory: Optional[str] = None,
                               stack_budget: int = 0,
                               stats: Optional[IOStats] = None,
                               report: Optional[ClusterGenerationReport]
                               = None) -> List[KeywordCluster]:
    """Run the full Section 3 procedure for one temporal interval."""
    documents = corpus.documents(interval)
    if not documents:
        return []
    clusters, task_report = generate_interval_clusters_task(
        documents, interval, rho_threshold=rho_threshold,
        chi2_critical=chi2_critical, min_edges=min_edges,
        include_bridge_trees=include_bridge_trees, external=external,
        directory=directory, stack_budget=stack_budget, stats=stats)
    if report is not None:
        for spec in fields(ClusterGenerationReport):
            setattr(report, spec.name, getattr(task_report, spec.name))
    return clusters
