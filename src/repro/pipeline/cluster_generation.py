"""Section 3 end to end: documents of one interval -> keyword clusters.

The driver performs the paper's full cluster-generation procedure:
read the interval's documents, build the co-occurrence triplets
(optionally through the external-memory sort), run the chi-square and
correlation-coefficient pruning, and report the biconnected components
of the pruned graph as keyword clusters.  A report object records the
stage-by-stage sizes the Figure 6 experiment plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.cooccur.keyword_graph import KeywordGraph, PruneReport, RHO_DEFAULT
from repro.graph.clusters import KeywordCluster, extract_clusters
from repro.stats import CHI2_CRITICAL_95
from repro.storage.iostats import IOStats
from repro.text.documents import IntervalCorpus


@dataclass
class ClusterGenerationReport:
    """Stage sizes and timings of one cluster-generation run."""

    interval: int = 0
    num_documents: int = 0
    num_keywords: int = 0
    num_edges: int = 0
    edges_after_chi2: int = 0
    edges_after_rho: int = 0
    num_clusters: int = 0
    seconds_counting: float = 0.0
    seconds_pruning: float = 0.0
    seconds_art: float = 0.0

    @property
    def seconds_total(self) -> float:
        """Whole-procedure wall time (the Figure 6 y-axis)."""
        return self.seconds_counting + self.seconds_pruning \
            + self.seconds_art


def generate_interval_clusters(corpus: IntervalCorpus, interval: int,
                               rho_threshold: float = RHO_DEFAULT,
                               chi2_critical: float = CHI2_CRITICAL_95,
                               min_edges: int = 2,
                               include_bridge_trees: bool = False,
                               external: bool = False,
                               directory: Optional[str] = None,
                               stack_budget: int = 0,
                               stats: Optional[IOStats] = None,
                               report: Optional[ClusterGenerationReport]
                               = None) -> List[KeywordCluster]:
    """Run the full Section 3 procedure for one temporal interval."""
    documents = corpus.documents(interval)
    if not documents:
        return []

    started = time.perf_counter()
    keyword_sets = [doc.keywords() for doc in documents]
    graph = KeywordGraph.from_keyword_sets(
        keyword_sets, external=external, directory=directory, stats=stats)
    counted = time.perf_counter()

    prune_report = PruneReport()
    pruned = graph.prune(rho_threshold=rho_threshold,
                         chi2_critical=chi2_critical,
                         report=prune_report)
    pruned_at = time.perf_counter()

    clusters = extract_clusters(pruned, interval=interval,
                                min_edges=min_edges,
                                include_bridge_trees=include_bridge_trees,
                                stack_budget=stack_budget,
                                spill_dir=directory, stats=stats)
    finished = time.perf_counter()

    if report is not None:
        report.interval = interval
        report.num_documents = len(documents)
        report.num_keywords = graph.num_keywords
        report.num_edges = graph.num_edges
        report.edges_after_chi2 = prune_report.after_chi2
        report.edges_after_rho = prune_report.after_rho
        report.num_clusters = len(clusters)
        report.seconds_counting = counted - started
        report.seconds_pruning = pruned_at - counted
        report.seconds_art = finished - pruned_at
    return clusters
