"""Full pipeline: interval corpus -> stable keyword clusters.

Combines Section 3 (per-interval cluster generation) and Section 4
(cluster graph + kl-stable / normalized search) behind one call, the
way the paper's qualitative study runs a week of BlogScope data:
clusters per day with ρ = 0.2, Jaccard affinity, θ = 0.1, then stable
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, List, Optional, Tuple, Union

from repro.cooccur.keyword_graph import RHO_DEFAULT
from repro.core.cluster_graph import ClusterGraph
from repro.core.paths import Path
from repro.core.solver_stats import SolverStats
from repro.core.stability import THETA_DEFAULT, build_cluster_graph
from repro.engine import ExecutionPlan, StableQuery, solve_report
from repro.graph.clusters import KeywordCluster
from repro.index.format import load_manifest
from repro.index.writer import ClusterIndexWriter
from repro.parallel import Executor, open_executor, resolve_workers
from repro.pipeline.cluster_generation import (
    ClusterGenerationReport,
    generate_interval_clusters_task,
)
from repro.text.documents import Document, IntervalCorpus
from repro.vocab import Vocabulary


@dataclass
class StableClusterResult:
    """Everything the full pipeline produced."""

    interval_clusters: List[List[KeywordCluster]]
    cluster_graph: ClusterGraph
    paths: List[Path]
    generation_reports: List[ClusterGenerationReport] = \
        field(default_factory=list)
    plan: Optional[ExecutionPlan] = None
    solver_stats: Optional[SolverStats] = None
    vocabulary: Optional[Vocabulary] = None
    # Directory of the persistent index the run wrote (None when the
    # caller did not ask for one).
    index_dir: Optional[str] = None

    def path_keywords(self, path: Path) -> List[frozenset]:
        """The keyword sets along one stable path."""
        return [self.cluster_graph.payload(node).keywords
                for node in path.nodes]

    def generation_summary(self) -> ClusterGenerationReport:
        """All per-interval (per-worker) generation reports merged
        into one Figure-6 row."""
        return ClusterGenerationReport.merge(self.generation_reports)


def _generation_stage(item: Tuple[int, List[Document]],
                      **options) -> Tuple[List[KeywordCluster],
                                          ClusterGenerationReport]:
    """One executor work item: ``(interval, documents)`` in, clusters
    and report out.  Module-level (plus :func:`functools.partial` for
    the options) so it ships to worker processes."""
    interval, documents = item
    return generate_interval_clusters_task(documents, interval,
                                           **options)


def generate_corpus_clusters(corpus: IntervalCorpus,
                             rho_threshold: float = RHO_DEFAULT,
                             min_edges: int = 2,
                             external: bool = False,
                             directory: Optional[str] = None,
                             executor: Union[int, Executor, None] = None,
                             vocab: Optional[Vocabulary] = None
                             ) -> Tuple[List[List[KeywordCluster]],
                                        List[ClusterGenerationReport]]:
    """Section 3 over every populated interval, fanned out on
    *executor* — an :class:`~repro.parallel.Executor` (used as-is), a
    worker count (a process pool is opened and closed around the
    call), or ``None`` for serial.

    Intervals are independent units of work — each one's co-occurrence
    counts, pruning, and biconnected components read only its own
    documents — so results are identical whatever the executor; only
    wall-clock changes.  Each task returns clusters interned against
    its own interval-local snapshot; they are rebound here, in
    interval order, into one corpus vocabulary (*vocab*, created when
    not supplied) — id assignment therefore depends only on corpus
    content, never on the executor.  Returns the per-interval cluster
    lists and reports, both in ``corpus.interval_indices`` order.
    """
    intervals = corpus.interval_indices
    items = [(interval, corpus.documents(interval))
             for interval in intervals]
    stage = partial(_generation_stage, rho_threshold=rho_threshold,
                    min_edges=min_edges, external=external,
                    directory=directory)
    with open_executor(executor) as pool:
        outputs = pool.map_stages(stage, items)
    if vocab is None:
        vocab = Vocabulary()
    interval_clusters = [[cluster.rebind(vocab) for cluster in clusters]
                         for clusters, _ in outputs]
    reports = [report for _, report in outputs]
    return interval_clusters, reports


def find_stable_clusters(corpus: IntervalCorpus,
                         l: int, k: int, gap: int = 0,
                         problem: str = "kl",
                         rho_threshold: float = RHO_DEFAULT,
                         affinity: Union[str, Callable] = "jaccard",
                         theta: float = THETA_DEFAULT,
                         min_edges: int = 2,
                         external: bool = False,
                         directory: Optional[str] = None,
                         diverse: bool = False,
                         diverse_policy: str = "prefix-suffix",
                         solver: str = "auto",
                         memory_budget: Optional[int] = None,
                         workers: Union[int, Executor, None] = None,
                         index_dir: Optional[str] = None,
                         index_append: bool = False
                         ) -> StableClusterResult:
    """Run the complete two-stage pipeline over *corpus*.

    ``problem='kl'`` searches paths of length exactly *l* (Problem 1);
    ``problem='normalized'`` searches paths of length >= *l* scored by
    weight/length (Problem 2).  With ``diverse=True`` (Problem 1 only)
    the reported paths are filtered so no two share a prefix/suffix
    per *diverse_policy* — the variant Section 4 sketches for
    information-discovery use.

    The search stage routes through :mod:`repro.engine`: ``solver``
    names an algorithm (``bfs``/``dfs``/``ta``/``normalized``/
    ``bruteforce``) or ``'auto'`` to let the cost-based planner pick
    from the graph's shape and *memory_budget* (bytes); the chosen
    :class:`~repro.engine.ExecutionPlan` and the solver's unified
    work counters are returned on the result.

    ``workers`` parallelizes the per-interval generation stage: an
    int fans it out on a process pool of that size (``0`` = all
    cores), an :class:`~repro.parallel.Executor` instance is used
    as-is (and left open).  Results are executor-invariant.

    ``index_dir`` persists the completed run — every interval's
    clusters, the vocabulary, the top-k paths, and the plan's
    provenance — as a :mod:`repro.index` cluster index at that
    directory (overwriting a previous index there, unless
    ``index_append=True`` continues an existing index's timeline as
    a new segment), so refinement and lookup queries can later be
    served without recomputing; the written size and segment count
    are reported on ``result.plan`` (``explain()``'s ``index:`` and
    ``segments:`` lines).
    """
    worker_count = workers.workers if isinstance(workers, Executor) \
        else workers
    query = StableQuery(problem=problem, l=l, k=k, gap=gap,
                        diverse=diverse,
                        diverse_policy=diverse_policy,
                        memory_budget=memory_budget,
                        workers=worker_count)

    if not corpus.interval_indices:
        raise ValueError("corpus has no populated intervals")

    # Execute what the plan will report: a worker-count request is
    # clamped to the m per-interval generation tasks (the planner
    # applies the same rule to the same m, so ExecutionPlan.workers
    # matches the pool that actually ran).  An explicit Executor
    # instance is the caller's to size.
    executor = workers
    if workers is not None and not isinstance(workers, Executor):
        executor = max(1, min(resolve_workers(workers),
                              len(corpus.interval_indices)))

    vocab = Vocabulary()
    interval_clusters, reports = generate_corpus_clusters(
        corpus, rho_threshold=rho_threshold, min_edges=min_edges,
        external=external, directory=directory, executor=executor,
        vocab=vocab)

    graph = build_cluster_graph(interval_clusters, affinity=affinity,
                                theta=theta, gap=gap)
    report = solve_report(graph, query, solver=solver)
    report.plan.vocab_size = len(vocab)
    if index_dir is not None:
        # The plan's index fields are set only after the write: the
        # provenance the manifest captures is the plan as it ran, and
        # the measured size cannot be part of its own recording.
        index_bytes = ClusterIndexWriter.write_run(
            index_dir, interval_clusters, report.paths,
            vocab=vocab, query=query, plan=report.plan,
            append=index_append)
        report.plan.index_dir = index_dir
        report.plan.index_bytes = index_bytes
        report.plan.index_segments = len(
            load_manifest(index_dir)["segments"])
    return StableClusterResult(interval_clusters=interval_clusters,
                               cluster_graph=graph,
                               paths=report.paths,
                               generation_reports=reports,
                               plan=report.plan,
                               solver_stats=report.stats,
                               vocabulary=vocab,
                               index_dir=index_dir)


def render_path_clusters(path: Path, cluster_lookup,
                         max_keywords: int = 8,
                         missing: str = "(cluster unavailable)") -> str:
    """Human-readable rendering of one stable path: a header line and
    one line per cluster with its interval and keywords.

    ``cluster_lookup(node)`` returns the cluster behind a node or
    ``None`` (a streaming window may have evicted it, rendered as
    *missing*).  Batch and streaming front ends share this renderer so
    their outputs stay byte-comparable.
    """
    lines = [f"stable path: weight={path.weight:.3f} "
             f"length={path.length} stability={path.stability:.3f}"]
    for node in path.nodes:
        cluster = cluster_lookup(node)
        if cluster is None:
            lines.append(f"  t{node[0]}: {missing}")
            continue
        keywords = sorted(cluster.keywords)[:max_keywords]
        suffix = " ..." if len(cluster.keywords) > max_keywords else ""
        lines.append(f"  t{node[0]}: {' '.join(keywords)}{suffix}")
    return "\n".join(lines)


def render_stable_path(result: StableClusterResult, path: Path,
                       max_keywords: int = 8) -> str:
    """Human-readable rendering of one stable path (for the CLI and
    examples): one line per cluster with its interval and keywords."""
    return render_path_clusters(path, result.cluster_graph.payload,
                                max_keywords=max_keywords)
