"""Full pipeline: interval corpus -> stable keyword clusters.

Combines Section 3 (per-interval cluster generation) and Section 4
(cluster graph + kl-stable / normalized search) behind one call, the
way the paper's qualitative study runs a week of BlogScope data:
clusters per day with ρ = 0.2, Jaccard affinity, θ = 0.1, then stable
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.cooccur.keyword_graph import RHO_DEFAULT
from repro.core.cluster_graph import ClusterGraph
from repro.core.paths import Path
from repro.core.solver_stats import SolverStats
from repro.core.stability import THETA_DEFAULT, build_cluster_graph
from repro.engine import ExecutionPlan, StableQuery, solve_report
from repro.graph.clusters import KeywordCluster
from repro.pipeline.cluster_generation import (
    ClusterGenerationReport,
    generate_interval_clusters,
)
from repro.text.documents import IntervalCorpus


@dataclass
class StableClusterResult:
    """Everything the full pipeline produced."""

    interval_clusters: List[List[KeywordCluster]]
    cluster_graph: ClusterGraph
    paths: List[Path]
    generation_reports: List[ClusterGenerationReport] = \
        field(default_factory=list)
    plan: Optional[ExecutionPlan] = None
    solver_stats: Optional[SolverStats] = None

    def path_keywords(self, path: Path) -> List[frozenset]:
        """The keyword sets along one stable path."""
        return [self.cluster_graph.payload(node).keywords
                for node in path.nodes]


def find_stable_clusters(corpus: IntervalCorpus,
                         l: int, k: int, gap: int = 0,
                         problem: str = "kl",
                         rho_threshold: float = RHO_DEFAULT,
                         affinity: Union[str, Callable] = "jaccard",
                         theta: float = THETA_DEFAULT,
                         min_edges: int = 2,
                         external: bool = False,
                         directory: Optional[str] = None,
                         diverse: bool = False,
                         diverse_policy: str = "prefix-suffix",
                         solver: str = "auto",
                         memory_budget: Optional[int] = None
                         ) -> StableClusterResult:
    """Run the complete two-stage pipeline over *corpus*.

    ``problem='kl'`` searches paths of length exactly *l* (Problem 1);
    ``problem='normalized'`` searches paths of length >= *l* scored by
    weight/length (Problem 2).  With ``diverse=True`` (Problem 1 only)
    the reported paths are filtered so no two share a prefix/suffix
    per *diverse_policy* — the variant Section 4 sketches for
    information-discovery use.

    The search stage routes through :mod:`repro.engine`: ``solver``
    names an algorithm (``bfs``/``dfs``/``ta``/``normalized``/
    ``bruteforce``) or ``'auto'`` to let the cost-based planner pick
    from the graph's shape and *memory_budget* (bytes); the chosen
    :class:`~repro.engine.ExecutionPlan` and the solver's unified
    work counters are returned on the result.
    """
    query = StableQuery(problem=problem, l=l, k=k, gap=gap,
                        diverse=diverse,
                        diverse_policy=diverse_policy,
                        memory_budget=memory_budget)

    intervals = corpus.interval_indices
    if not intervals:
        raise ValueError("corpus has no populated intervals")

    interval_clusters: List[List[KeywordCluster]] = []
    reports: List[ClusterGenerationReport] = []
    for interval in intervals:
        report = ClusterGenerationReport()
        clusters = generate_interval_clusters(
            corpus, interval, rho_threshold=rho_threshold,
            min_edges=min_edges, external=external, directory=directory,
            report=report)
        interval_clusters.append(clusters)
        reports.append(report)

    graph = build_cluster_graph(interval_clusters, affinity=affinity,
                                theta=theta, gap=gap)
    report = solve_report(graph, query, solver=solver)
    return StableClusterResult(interval_clusters=interval_clusters,
                               cluster_graph=graph,
                               paths=report.paths,
                               generation_reports=reports,
                               plan=report.plan,
                               solver_stats=report.stats)


def render_path_clusters(path: Path, cluster_lookup,
                         max_keywords: int = 8,
                         missing: str = "(cluster unavailable)") -> str:
    """Human-readable rendering of one stable path: a header line and
    one line per cluster with its interval and keywords.

    ``cluster_lookup(node)`` returns the cluster behind a node or
    ``None`` (a streaming window may have evicted it, rendered as
    *missing*).  Batch and streaming front ends share this renderer so
    their outputs stay byte-comparable.
    """
    lines = [f"stable path: weight={path.weight:.3f} "
             f"length={path.length} stability={path.stability:.3f}"]
    for node in path.nodes:
        cluster = cluster_lookup(node)
        if cluster is None:
            lines.append(f"  t{node[0]}: {missing}")
            continue
        keywords = sorted(cluster.keywords)[:max_keywords]
        suffix = " ..." if len(cluster.keywords) > max_keywords else ""
        lines.append(f"  t{node[0]}: {' '.join(keywords)}{suffix}")
    return "\n".join(lines)


def render_stable_path(result: StableClusterResult, path: Path,
                       max_keywords: int = 8) -> str:
    """Human-readable rendering of one stable path (for the CLI and
    examples): one line per cluster with its interval and keywords."""
    return render_path_clusters(path, result.cluster_graph.payload,
                                max_keywords=max_keywords)
