"""Aggregation of sorted keyword pairs into co-occurrence triplets.

Tokens are generic (interned integer ids on the production path,
strings wherever callers pass raw keyword sets); both aggregate
identically — the external sort just compares ints faster and spills
smaller run records.
"""

from __future__ import annotations

from itertools import groupby
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.cooccur.pairs import Pair, Token, emit_pairs
from repro.extsort import external_sort
from repro.storage.iostats import IOStats

Triplet = Tuple[Token, Token, int]


def aggregate_sorted_pairs(pairs: Iterable[Pair]) -> Iterator[Triplet]:
    """Collapse a *sorted* pair stream into ``(u, v, count)`` triplets.

    One sequential pass; identical pairs must be adjacent (the
    post-external-sort property).
    """
    for pair, group in groupby(pairs):
        count = sum(1 for _ in group)
        yield (pair[0], pair[1], count)


def count_pairs_external(keyword_sets: Iterable[FrozenSet[Token]],
                         max_records: int = 200_000,
                         directory: Optional[str] = None,
                         stats: Optional[IOStats] = None
                         ) -> Iterator[Triplet]:
    """Emit, external-sort, and aggregate pairs with bounded memory.

    This is the full Section 3 counting pipeline in streaming form.
    """
    sorted_pairs = external_sort(emit_pairs(keyword_sets),
                                 max_records=max_records,
                                 directory=directory, stats=stats)
    return aggregate_sorted_pairs(sorted_pairs)


def count_pairs_in_memory(keyword_sets: Iterable[FrozenSet[Token]]
                          ) -> Dict[Pair, int]:
    """Hash-aggregate the pair stream entirely in memory.

    Functionally identical to :func:`count_pairs_external`; used when
    the interval's pair multiset fits in RAM, and as the differential
    oracle in tests.
    """
    counts: Dict[Pair, int] = {}
    for pair in emit_pairs(keyword_sets):
        counts[pair] = counts.get(pair, 0) + 1
    return counts
