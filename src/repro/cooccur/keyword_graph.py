"""The per-interval keyword graph G and its pruned form G'.

``KeywordGraph`` stores the unary counts ``A(u)``, the pairwise counts
``A(u, v)`` and the collection size ``n``, and applies the two pruning
stages of Section 3 (chi-square at 95%, then ρ > 0.2) to produce the
correlation-weighted graph ``G'`` on which biconnected components are
computed.  Keywords are generic tokens: the production pipeline
builds the graph over interned integer ids (see :mod:`repro.vocab`);
raw string sets work identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.cooccur.aggregate import (
    Token,
    Triplet,
    count_pairs_external,
    count_pairs_in_memory,
)
from repro.graph.adjacency import Graph
from repro.stats import (
    CHI2_CRITICAL_95,
    chi_square,
    correlation_coefficient,
)
from repro.storage.iostats import IOStats

RHO_DEFAULT = 0.2


@dataclass
class PruneReport:
    """Edge survival counts for each pruning stage (Fig. 6 ablation)."""

    total_edges: int = 0
    after_chi2: int = 0
    after_rho: int = 0


class KeywordGraph:
    """Keyword co-occurrence graph for one temporal interval."""

    def __init__(self, num_documents: int) -> None:
        if num_documents <= 0:
            raise ValueError(
                f"num_documents must be positive, got {num_documents}")
        self.num_documents = num_documents
        self._node_counts: Dict[Token, int] = {}
        self._edge_counts: Dict[Tuple[Token, Token], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_triplets(cls, triplets: Iterable[Triplet],
                      num_documents: int) -> "KeywordGraph":
        """Build from a ``(u, v, A(u,v))`` stream; ``(u, u)`` triplets
        carry the unary counts ``A(u)``."""
        graph = cls(num_documents)
        for u, v, count in triplets:
            if count <= 0:
                raise ValueError(
                    f"triplet ({u!r}, {v!r}) has non-positive count {count}")
            if u == v:
                graph._node_counts[u] = graph._node_counts.get(u, 0) + count
            else:
                key = (u, v) if u < v else (v, u)
                graph._edge_counts[key] = (
                    graph._edge_counts.get(key, 0) + count)
        return graph

    @classmethod
    def from_keyword_sets(cls, keyword_sets: Iterable[FrozenSet[Token]],
                          external: bool = False,
                          directory: Optional[str] = None,
                          max_records: int = 200_000,
                          stats: Optional[IOStats] = None) -> "KeywordGraph":
        """Build from per-document keyword sets.

        With ``external=True`` the counting runs through the
        sort-based, bounded-memory pipeline of Section 3; otherwise a
        hash aggregation is used.  Both produce identical graphs.
        """
        materialized = list(keyword_sets)
        n = len(materialized)
        if n == 0:
            raise ValueError("cannot build a keyword graph from an "
                             "empty document collection")
        if external:
            triplets: Iterable[Triplet] = count_pairs_external(
                materialized, max_records=max_records,
                directory=directory, stats=stats)
        else:
            counts = count_pairs_in_memory(materialized)
            triplets = ((u, v, c) for (u, v), c in counts.items())
        return cls.from_triplets(triplets, num_documents=n)

    # ------------------------------------------------------------------
    # Counts and statistics
    # ------------------------------------------------------------------

    @property
    def num_keywords(self) -> int:
        """Distinct keywords (vertices of G)."""
        return len(self._node_counts)

    @property
    def num_edges(self) -> int:
        """Distinct co-occurring pairs (edges of G)."""
        return len(self._edge_counts)

    def keywords(self) -> Iterator[Token]:
        """Iterate over the vertex set."""
        return iter(self._node_counts)

    def count(self, u: Token) -> int:
        """A(u): documents containing keyword *u*."""
        return self._node_counts.get(u, 0)

    def pair_count(self, u: Token, v: Token) -> int:
        """A(u, v): documents containing both keywords."""
        if u == v:
            return self.count(u)
        key = (u, v) if u < v else (v, u)
        return self._edge_counts.get(key, 0)

    def edges(self) -> Iterator[Triplet]:
        """Iterate over ``(u, v, A(u,v))`` for all co-occurring pairs."""
        for (u, v), count in self._edge_counts.items():
            yield (u, v, count)

    def chi_square(self, u: Token, v: Token) -> float:
        """Formula 1 statistic for the pair ``(u, v)``."""
        return chi_square(self.count(u), self.count(v),
                          self.pair_count(u, v), self.num_documents)

    def correlation(self, u: Token, v: Token) -> float:
        """Formula 3 correlation coefficient for the pair ``(u, v)``."""
        return correlation_coefficient(self.count(u), self.count(v),
                                       self.pair_count(u, v),
                                       self.num_documents)

    # ------------------------------------------------------------------
    # Pruning (Section 3): chi-square filter then rho threshold
    # ------------------------------------------------------------------

    def prune(self, rho_threshold: float = RHO_DEFAULT,
              chi2_critical: float = CHI2_CRITICAL_95,
              min_support: int = 5,
              report: Optional[PruneReport] = None) -> Graph:
        """Return G': the ρ-weighted graph of strongly correlated pairs.

        An edge survives when χ² > *chi2_critical* **and**
        ρ > *rho_threshold*; the surviving edge's weight is ρ.  Both
        tests are computed in the single pass over the edges that the
        paper prescribes.

        ``min_support`` drops pairs where either keyword appears in
        fewer documents than the threshold.  The chi-square 2x2
        approximation is invalid for tiny expected counts (the classic
        rule of thumb is >= 5; see Manning & Schütze, the paper's
        reference [12]): without this filter, every pair of words that
        co-occur in a single document scores ρ = 1.0 and χ² = n, and
        each document's unique rare words form a spurious clique.
        """
        pruned = Graph()
        n = self.num_documents
        total = after_chi2 = after_rho = 0
        for u, v, a_uv in self.edges():
            total += 1
            a_u, a_v = self.count(u), self.count(v)
            if min(a_u, a_v) < min_support:
                continue
            if chi_square(a_u, a_v, a_uv, n) <= chi2_critical:
                continue
            after_chi2 += 1
            rho = correlation_coefficient(a_u, a_v, a_uv, n)
            if rho <= rho_threshold:
                continue
            after_rho += 1
            pruned.add_edge(u, v, weight=rho)
        if report is not None:
            report.total_edges = total
            report.after_chi2 = after_chi2
            report.after_rho = after_rho
        return pruned

    def __repr__(self) -> str:
        return (f"KeywordGraph(n={self.num_documents}, "
                f"keywords={self.num_keywords}, edges={self.num_edges})")
