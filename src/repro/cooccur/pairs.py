"""Single-pass keyword-pair emission.

For each document, every unordered keyword pair is emitted once in
canonical (sorted) order, plus the self pair ``(u, u)`` for every
keyword — exactly the scheme of Section 3, where the multiplicity of
``(u, v)`` in the emitted stream equals ``A(u, v)`` and that of
``(u, u)`` equals ``A(u)``.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, Iterator, List, Tuple

Pair = Tuple[str, str]

# Lines buffered per writelines() call.  One write syscall per pair
# dominates the emission cost on big intervals; one per chunk doesn't.
_WRITE_CHUNK_LINES = 8192


def emit_pairs(keyword_sets: Iterable[FrozenSet[str]]) -> Iterator[Pair]:
    """Yield all (self and cross) keyword pairs, document by document."""
    for keywords in keyword_sets:
        ordered = sorted(keywords)
        for keyword in ordered:
            yield (keyword, keyword)
        for u, v in combinations(ordered, 2):
            yield (u, v)


def write_pair_file(keyword_sets: Iterable[FrozenSet[str]],
                    path: str) -> int:
    """Materialize the emitted pair stream as a tab-separated file.

    This is the on-disk intermediate of the paper's methodology ("at
    the end of the pass over D a file with all keyword pairs is
    generated").  Returns the number of lines written.
    """
    count = 0
    buffered: List[str] = []
    with open(path, "w", encoding="utf-8") as fh:
        for u, v in emit_pairs(keyword_sets):
            buffered.append(f"{u}\t{v}\n")
            if len(buffered) >= _WRITE_CHUNK_LINES:
                fh.writelines(buffered)
                count += len(buffered)
                buffered.clear()
        fh.writelines(buffered)
        count += len(buffered)
    return count


def read_pair_file(path: str) -> Iterator[Pair]:
    """Yield the pairs of a file written by :func:`write_pair_file`."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            u, _, v = line.partition("\t")
            yield (u, v)
