"""Single-pass keyword-pair emission.

For each document, every unordered keyword pair is emitted once in
canonical (sorted) order, plus the self pair ``(u, u)`` for every
keyword — exactly the scheme of Section 3, where the multiplicity of
``(u, v)`` in the emitted stream equals ``A(u, v)`` and that of
``(u, u)`` equals ``A(u)``.

Keywords may be raw strings or interned integer ids (see
:mod:`repro.vocab`); id records are smaller on disk and
faster-comparing in the external sort, which is why the production
pipeline interns before emitting.  Pair files are **versioned**: the
first line stamps the format and the record kind (``str``/``id``), so
a reader can never silently mis-parse records of the other kind.
"""

from __future__ import annotations

import os
from itertools import combinations
from typing import FrozenSet, Hashable, Iterable, Iterator, List, Tuple

Token = Hashable
Pair = Tuple[Token, Token]

# Pair-file header: "<magic>\t<version>\t<kind>".  Bump the version on
# any record-layout change; readers reject what they do not know.
PAIR_FILE_MAGIC = "#repro-pairs"
PAIR_FILE_VERSION = 1
PAIR_KINDS = ("str", "id")

# Lines buffered per writelines() call.  One write syscall per pair
# dominates the emission cost on big intervals; one per chunk doesn't.
_WRITE_CHUNK_LINES = 8192


def emit_pairs(keyword_sets: Iterable[FrozenSet[Token]]
               ) -> Iterator[Pair]:
    """Yield all (self and cross) keyword pairs, document by document."""
    for keywords in keyword_sets:
        ordered = sorted(keywords)
        for keyword in ordered:
            yield (keyword, keyword)
        for u, v in combinations(ordered, 2):
            yield (u, v)


def write_pair_file(keyword_sets: Iterable[FrozenSet[Token]],
                    path: str) -> int:
    """Materialize the emitted pair stream as a tab-separated file.

    This is the on-disk intermediate of the paper's methodology ("at
    the end of the pass over D a file with all keyword pairs is
    generated").  The first line is the format/version header (the
    record kind — interned ids vs strings — is detected from the first
    pair).  Returns the number of pair records written, header
    excluded.
    """
    count = 0
    buffered: List[str] = []
    interned = None
    try:
        with open(path, "w", encoding="utf-8") as fh:
            for u, v in emit_pairs(keyword_sets):
                if interned is None:
                    interned = isinstance(u, int)
                    fh.write(f"{PAIR_FILE_MAGIC}\t{PAIR_FILE_VERSION}"
                             f"\t{'id' if interned else 'str'}\n")
                if isinstance(u, int) is not interned \
                        or isinstance(v, int) is not interned:
                    raise ValueError(
                        f"keyword sets mix interned ids and strings: "
                        f"pair ({u!r}, {v!r}) does not match the "
                        f"file's {'id' if interned else 'str'} "
                        f"records")
                buffered.append(f"{u}\t{v}\n")
                if len(buffered) >= _WRITE_CHUNK_LINES:
                    fh.writelines(buffered)
                    count += len(buffered)
                    buffered.clear()
            if interned is None:  # empty stream: default-kind header
                fh.write(f"{PAIR_FILE_MAGIC}\t{PAIR_FILE_VERSION}"
                         f"\tstr\n")
            fh.writelines(buffered)
            count += len(buffered)
    except BaseException:
        # Never leave a truncated-but-valid-looking file behind: an
        # aborted write must not be silently readable later.
        try:
            os.unlink(path)
        except OSError:
            pass
        raise
    return count


def _parse_header(line: str, path: str) -> str:
    """Validate a pair-file header line; returns the record kind."""
    parts = line.rstrip("\n").split("\t")
    if not parts or parts[0] != PAIR_FILE_MAGIC:
        raise ValueError(
            f"{path!r} is not a versioned pair file (expected a "
            f"{PAIR_FILE_MAGIC!r} header, found {line[:40]!r}); legacy "
            f"headerless files must be regenerated with "
            f"write_pair_file")
    if len(parts) != 3:
        raise ValueError(
            f"{path!r} has a malformed pair-file header: {line!r}")
    magic, version, kind = parts
    if version != str(PAIR_FILE_VERSION):
        raise ValueError(
            f"{path!r} is pair-file version {version}; this reader "
            f"understands version {PAIR_FILE_VERSION} only")
    if kind not in PAIR_KINDS:
        raise ValueError(
            f"{path!r} declares unknown record kind {kind!r}; "
            f"expected one of {PAIR_KINDS}")
    return kind


def read_pair_file(path: str) -> Iterator[Pair]:
    """Yield the pairs of a file written by :func:`write_pair_file`.

    The header determines the record kind: ``id`` records come back as
    int pairs, ``str`` records as string pairs.  Unversioned or
    unknown-version files raise :class:`ValueError` instead of being
    silently mis-parsed.
    """
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header:
            raise ValueError(f"{path!r} is empty: not a pair file")
        kind = _parse_header(header, path)
        interned = kind == "id"
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            u, _, v = line.partition("\t")
            yield (int(u), int(v)) if interned else (u, v)
