"""Keyword co-occurrence graph generation (Section 3).

The paper's methodology, reproduced exactly:

1. one pass over the documents of the interval, emitting every keyword
   pair per document (including the self pair ``(u, u)``, which yields
   the unary count ``A(u)``) — :mod:`repro.cooccur.pairs`;
2. an external-memory sort of the pair file so identical pairs are
   adjacent — :mod:`repro.extsort`;
3. one pass over the sorted pairs producing triplets
   ``(u, v, A(u, v))`` — :mod:`repro.cooccur.aggregate`;
4. a :class:`~repro.cooccur.keyword_graph.KeywordGraph` over those
   triplets, supporting the chi-square and correlation-coefficient
   pruning that yields the graph ``G'`` whose biconnected components
   are the keyword clusters.
"""

from repro.cooccur.aggregate import (
    aggregate_sorted_pairs,
    count_pairs_external,
    count_pairs_in_memory,
)
from repro.cooccur.keyword_graph import KeywordGraph
from repro.cooccur.pairs import emit_pairs, write_pair_file

__all__ = [
    "KeywordGraph",
    "aggregate_sorted_pairs",
    "count_pairs_external",
    "count_pairs_in_memory",
    "emit_pairs",
    "write_pair_file",
]
