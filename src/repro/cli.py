"""Command-line front end: ``stable-clusters``.

Subcommands:

* ``demo`` — generate a synthetic blogosphere week with scripted
  events and print the stable clusters it discovers (the qualitative
  study of Section 5.3 in miniature).
* ``clusters`` — run Section 3 cluster generation over documents read
  from a file (one JSON object per line: ``{"interval": 0, "text":
  "..."}``) and print the per-interval keyword clusters.
* ``stable`` — full pipeline over the same input format, printing the
  top-k stable paths; ``--solver`` picks the algorithm (default
  ``auto`` routes through the cost-based planner) and ``--explain``
  prints the chosen execution plan.
* ``explain`` — print the planner's decision for a described workload
  (graph shape + query) without running anything.
* ``bench-graph`` — generate a Section 5.2 synthetic cluster graph and
  time any set of registered solvers on it, reporting each one's
  unified ``SolverStats`` counters.

Every search path goes through the unified engine layer
(:mod:`repro.engine`); solvers are referenced by registry name, never
imported directly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.datagen import (
    BlogosphereGenerator,
    Event,
    EventSchedule,
    ZipfVocabulary,
    synthetic_cluster_graph,
)
from repro.datagen.events import drifting_event
from repro.engine import (
    GraphStats,
    StableQuery,
    explain as plan_query,
    get_solver,
    solve_report,
    solver_names,
)
from repro.pipeline import (
    find_stable_clusters,
    generate_interval_clusters,
    render_stable_path,
)
from repro.text.documents import IntervalCorpus

SOLVER_CHOICES = ["auto"] + solver_names()


def _demo_schedule() -> EventSchedule:
    schedule = EventSchedule()
    schedule.add(Event.burst(
        "stemcell", ["stem", "cell", "amniotic", "research", "atala"],
        interval=2, posts=60))
    schedule.add(Event.persistent(
        "somalia", ["somalia", "mogadishu", "ethiopian", "islamist",
                    "kamboni"],
        start=0, duration=7, posts=45, ramp=[1, 1, 1.6, 1.6, 1.2, 1, 1]))
    schedule.add(Event.with_gaps(
        "facup", ["liverpool", "arsenal", "anfield", "goal"],
        active_intervals=[0, 3, 4], posts=50))
    schedule.extend(drifting_event(
        "iphone", shared=["apple", "iphone"],
        first_phase=["touchscreen", "keynote", "features"],
        second_phase=["cisco", "lawsuit", "trademark"],
        start=3, phase1_len=2, phase2_len=2, posts=55))
    return schedule


def cmd_demo(args: argparse.Namespace) -> int:
    """Run the synthetic-week walkthrough (Section 5.3 demo)."""
    vocab = ZipfVocabulary(args.vocabulary, seed=args.seed)
    generator = BlogosphereGenerator(
        vocab, _demo_schedule(), background_posts=args.background,
        seed=args.seed)
    corpus = generator.generate_corpus(7)
    print(f"generated {corpus.num_documents} posts over 7 days")
    result = find_stable_clusters(corpus, l=args.length, k=args.k,
                                  gap=args.gap, problem=args.problem,
                                  solver=args.solver)
    sizes = [len(c) for c in result.interval_clusters]
    print(f"clusters per day: {sizes}")
    print(f"cluster graph: {result.cluster_graph}")
    if not result.paths:
        print("no stable paths found")
        return 1
    for path in result.paths:
        print()
        print(render_stable_path(result, path))
    return 0


def _read_corpus(path: str) -> IntervalCorpus:
    corpus = IntervalCorpus()
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            corpus.add_text(doc_id=record.get("id", f"doc{line_no}"),
                            interval=int(record["interval"]),
                            text=record["text"])
    return corpus


def cmd_clusters(args: argparse.Namespace) -> int:
    """Print per-interval keyword clusters for a JSONL corpus."""
    corpus = _read_corpus(args.input)
    for interval in corpus.interval_indices:
        clusters = generate_interval_clusters(
            corpus, interval, rho_threshold=args.rho)
        print(f"interval {interval}: {len(clusters)} clusters")
        for cluster in sorted(clusters, key=len, reverse=True)[:args.top]:
            print(f"  {' '.join(sorted(cluster.keywords))}")
    return 0


def _memory_budget_bytes(args: argparse.Namespace) -> Optional[int]:
    if getattr(args, "memory_budget", None) is None:
        return None
    return int(args.memory_budget * 1024 * 1024)


def cmd_stable(args: argparse.Namespace) -> int:
    """Run the full stable-cluster pipeline on a JSONL corpus."""
    corpus = _read_corpus(args.input)
    result = find_stable_clusters(corpus, l=args.length, k=args.k,
                                  gap=args.gap, problem=args.problem,
                                  rho_threshold=args.rho,
                                  theta=args.theta,
                                  solver=args.solver,
                                  memory_budget=_memory_budget_bytes(args))
    if args.explain and result.plan is not None:
        print(result.plan.explain())
        print()
    if not result.paths:
        print("no stable paths found")
        return 1
    for path in result.paths:
        print(render_stable_path(result, path))
        print()
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Print the planner's decision for a described workload."""
    length = None if args.length == 0 else args.length
    if args.problem == "normalized" and length is None:
        print("explain: --problem normalized needs --length (lmin)",
              file=sys.stderr)
        return 2
    query = StableQuery(problem=args.problem, l=length,
                        k=args.k, gap=args.gap)
    graph_stats = GraphStats(
        num_intervals=args.m, max_interval_nodes=args.n,
        avg_out_degree=float(args.d), gap=args.gap,
        num_nodes=args.m * args.n,
        num_edges=int(args.m * args.n * args.d))
    execution = plan_query(graph_stats, query,
                           memory_budget=_memory_budget_bytes(args))
    print(execution.explain())
    return 0


def cmd_bench_graph(args: argparse.Namespace) -> int:
    """Time registered solvers on a synthetic graph and report each
    one's unified SolverStats counters."""
    graph = synthetic_cluster_graph(m=args.m, n=args.n, d=args.d,
                                    g=args.gap, seed=args.seed)
    print(f"graph: {graph}")
    length = args.length if args.length else graph.num_intervals - 1
    query = StableQuery(problem="kl", l=length, k=args.k, gap=args.gap)
    names = [name.strip() for name in args.solvers.split(",")
             if name.strip()]
    for name in names:
        solver = get_solver(name)
        unsupported = solver.supports(query, graph.num_intervals)
        if unsupported is not None:
            print(f"{name}: skipped ({unsupported})")
            continue
        stats = solver.new_stats()
        started = time.perf_counter()
        report = solve_report(graph, query, solver=name, stats=stats)
        elapsed = time.perf_counter() - started
        best = (f"{report.paths[0].weight:.3f}"
                if report.paths else "none")
        print(f"{name.upper()}: {elapsed:.3f}s  top weight: {best}")
        print(f"  stats: {stats.summary()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="stable-clusters",
        description="Stable keyword clusters in temporal text "
                    "(Bansal et al., VLDB 2007 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="synthetic week walkthrough")
    demo.add_argument("--vocabulary", type=int, default=3000)
    demo.add_argument("--background", type=int, default=600)
    demo.add_argument("--seed", type=int, default=2007)
    demo.add_argument("--length", type=int, default=3)
    demo.add_argument("-k", type=int, default=5)
    demo.add_argument("--gap", type=int, default=1)
    demo.add_argument("--problem", choices=["kl", "normalized"],
                      default="kl")
    demo.add_argument("--solver", choices=SOLVER_CHOICES,
                      default="auto")
    demo.set_defaults(func=cmd_demo)

    clusters = sub.add_parser("clusters",
                              help="per-interval keyword clusters")
    clusters.add_argument("input", help="JSONL file of posts")
    clusters.add_argument("--rho", type=float, default=0.2)
    clusters.add_argument("--top", type=int, default=10)
    clusters.set_defaults(func=cmd_clusters)

    stable = sub.add_parser("stable", help="full stable-cluster search")
    stable.add_argument("input", help="JSONL file of posts")
    stable.add_argument("--length", type=int, default=3)
    stable.add_argument("-k", type=int, default=5)
    stable.add_argument("--gap", type=int, default=0)
    stable.add_argument("--rho", type=float, default=0.2)
    stable.add_argument("--theta", type=float, default=0.1)
    stable.add_argument("--problem", choices=["kl", "normalized"],
                        default="kl")
    stable.add_argument("--solver", choices=SOLVER_CHOICES,
                        default="auto",
                        help="search algorithm; 'auto' lets the "
                             "cost-based planner pick")
    stable.add_argument("--memory-budget", type=float, default=None,
                        metavar="MIB",
                        help="planner memory budget in MiB")
    stable.add_argument("--explain", action="store_true",
                        help="print the execution plan before results")
    stable.set_defaults(func=cmd_stable)

    explain = sub.add_parser(
        "explain",
        help="print the planner's decision for a workload shape")
    explain.add_argument("-m", type=int, default=9,
                         help="temporal intervals")
    explain.add_argument("-n", type=int, default=400,
                         help="clusters per interval")
    explain.add_argument("-d", type=int, default=5,
                         help="average out degree")
    explain.add_argument("--gap", type=int, default=0)
    explain.add_argument("--length", type=int, default=0,
                         help="0 means full paths (m - 1)")
    explain.add_argument("-k", type=int, default=5)
    explain.add_argument("--problem", choices=["kl", "normalized"],
                         default="kl")
    explain.add_argument("--memory-budget", type=float, default=None,
                         metavar="MIB",
                         help="planner memory budget in MiB")
    explain.set_defaults(func=cmd_explain)

    bench = sub.add_parser("bench-graph",
                           help="time solvers on a synthetic graph")
    bench.add_argument("-m", type=int, default=9)
    bench.add_argument("-n", type=int, default=400)
    bench.add_argument("-d", type=int, default=5)
    bench.add_argument("--gap", type=int, default=0)
    bench.add_argument("--length", type=int, default=0,
                       help="0 means full paths (m - 1)")
    bench.add_argument("-k", type=int, default=5)
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--solvers", default="bfs,dfs",
                       help="comma-separated registry names to time")
    bench.set_defaults(func=cmd_bench_graph)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Domain errors (unsupported solver/problem combination,
        # invalid query bounds) become clean CLI errors, not
        # tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
