"""Command-line front end: ``stable-clusters``.

Subcommands:

* ``demo`` — generate a synthetic blogosphere week with scripted
  events and print the stable clusters it discovers (the qualitative
  study of Section 5.3 in miniature).
* ``clusters`` — run Section 3 cluster generation over documents read
  from a file (one JSON object per line: ``{"interval": 0, "text":
  "..."}``) and print the per-interval keyword clusters.
* ``stable`` — full pipeline over the same input format, printing the
  top-k stable paths; ``--solver`` picks the algorithm (default
  ``auto`` routes through the cost-based planner) and ``--explain``
  prints the chosen execution plan.
* ``stream`` — replay the same JSONL input *incrementally*: each
  interval's documents are clustered, joined against the recent
  window, and folded into the maintained top-k (Section 4.6), with
  node state evicted past ``gap + 1`` intervals; ``--follow`` prints
  the evolving results per interval, ``--backend``/``--memory-budget``
  control (or let the streaming planner pick) where node state lives.
* ``explain`` — print the planner's decision for a described workload
  (graph shape + query) without running anything.
* ``bench-graph`` — generate a Section 5.2 synthetic cluster graph and
  time any set of registered solvers on it, reporting each one's
  unified ``SolverStats`` counters.

Every search path goes through the unified engine layer
(:mod:`repro.engine`); solvers are referenced by registry name, never
imported directly.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from typing import List, Optional

from repro.datagen import (
    BlogosphereGenerator,
    Event,
    EventSchedule,
    ZipfVocabulary,
    synthetic_cluster_graph,
)
from repro.datagen.events import drifting_event
from repro.engine import (
    GraphStats,
    StableQuery,
    explain as plan_query,
    get_solver,
    plan_streaming,
    solve_report,
    solver_names,
)
from repro.pipeline import (
    find_stable_clusters,
    generate_interval_clusters,
    render_path_clusters,
    render_stable_path,
)
from repro.storage import open_store
from repro.streaming import (
    StreamingDocumentPipeline,
    interval_batches,
    read_jsonl_documents,
)
from repro.text.documents import IntervalCorpus

SOLVER_CHOICES = ["auto"] + solver_names()


def _demo_schedule() -> EventSchedule:
    schedule = EventSchedule()
    schedule.add(Event.burst(
        "stemcell", ["stem", "cell", "amniotic", "research", "atala"],
        interval=2, posts=60))
    schedule.add(Event.persistent(
        "somalia", ["somalia", "mogadishu", "ethiopian", "islamist",
                    "kamboni"],
        start=0, duration=7, posts=45, ramp=[1, 1, 1.6, 1.6, 1.2, 1, 1]))
    schedule.add(Event.with_gaps(
        "facup", ["liverpool", "arsenal", "anfield", "goal"],
        active_intervals=[0, 3, 4], posts=50))
    schedule.extend(drifting_event(
        "iphone", shared=["apple", "iphone"],
        first_phase=["touchscreen", "keynote", "features"],
        second_phase=["cisco", "lawsuit", "trademark"],
        start=3, phase1_len=2, phase2_len=2, posts=55))
    return schedule


def cmd_demo(args: argparse.Namespace) -> int:
    """Run the synthetic-week walkthrough (Section 5.3 demo)."""
    vocab = ZipfVocabulary(args.vocabulary, seed=args.seed)
    generator = BlogosphereGenerator(
        vocab, _demo_schedule(), background_posts=args.background,
        seed=args.seed)
    corpus = generator.generate_corpus(7)
    print(f"generated {corpus.num_documents} posts over 7 days")
    result = find_stable_clusters(corpus, l=args.length, k=args.k,
                                  gap=args.gap, problem=args.problem,
                                  solver=args.solver,
                                  workers=args.workers)
    sizes = [len(c) for c in result.interval_clusters]
    print(f"clusters per day: {sizes}")
    print(f"cluster graph: {result.cluster_graph}")
    if not result.paths:
        print("no stable paths found")
        return 1
    for path in result.paths:
        print()
        print(render_stable_path(result, path))
    return 0


def _read_corpus(path: str) -> IntervalCorpus:
    corpus = IntervalCorpus()
    corpus.extend(read_jsonl_documents(path))
    return corpus


def cmd_clusters(args: argparse.Namespace) -> int:
    """Print per-interval keyword clusters for a JSONL corpus."""
    corpus = _read_corpus(args.input)
    for interval in corpus.interval_indices:
        clusters = generate_interval_clusters(
            corpus, interval, rho_threshold=args.rho)
        print(f"interval {interval}: {len(clusters)} clusters")
        for cluster in sorted(clusters, key=len, reverse=True)[:args.top]:
            print(f"  {' '.join(sorted(cluster.keywords))}")
    return 0


def _memory_budget_bytes(args: argparse.Namespace) -> Optional[int]:
    if getattr(args, "memory_budget", None) is None:
        return None
    return int(args.memory_budget * 1024 * 1024)


def cmd_stable(args: argparse.Namespace) -> int:
    """Run the full stable-cluster pipeline on a JSONL corpus."""
    corpus = _read_corpus(args.input)
    result = find_stable_clusters(corpus, l=args.length, k=args.k,
                                  gap=args.gap, problem=args.problem,
                                  rho_threshold=args.rho,
                                  theta=args.theta,
                                  solver=args.solver,
                                  memory_budget=_memory_budget_bytes(args),
                                  workers=args.workers)
    if args.explain and result.plan is not None:
        print(result.plan.explain())
        print()
    if not result.paths:
        print("no stable paths found")
        return 1
    for path in result.paths:
        print(render_stable_path(result, path))
        print()
    return 0


def _render_stream_path(pipeline: StreamingDocumentPipeline,
                        path) -> str:
    """Render one maintained path; clusters older than the window
    have been evicted and render as such."""
    return render_path_clusters(
        path, pipeline.cluster_for,
        missing="(evicted from the g + 1 window)")


def cmd_stream(args: argparse.Namespace) -> int:
    """Replay a JSONL corpus interval by interval through the
    streaming ingestion pipeline (Section 4.6 serving mode)."""
    query = StableQuery(problem=args.problem, l=args.length,
                        k=args.k, gap=args.gap,
                        memory_budget=_memory_budget_bytes(args),
                        workers=args.workers)
    if args.solver not in ("auto", query.streaming_solver):
        raise ValueError(
            f"solver {args.solver!r} cannot stream "
            f"problem={args.problem!r}; the streaming engine for it "
            f"is {query.streaming_solver!r}")
    all_documents = read_jsonl_documents(args.input)
    if not all_documents:
        print("error: no documents in input", file=sys.stderr)
        return 2
    first_seen = min(doc.interval for doc in all_documents)
    num_intervals = max(doc.interval
                        for doc in all_documents) - first_seen + 1

    # Cluster the first interval up front: its cluster count is the
    # planner's estimate of the per-interval shape (a live deployment
    # would measure the first intervals the same way); the remaining
    # batches are consumed lazily as the replay reaches them.
    batches = interval_batches(all_documents)
    first_interval, first_docs = next(batches)
    corpus0 = IntervalCorpus()
    corpus0.extend(first_docs)
    clustering_started = time.perf_counter()
    clusters0 = generate_interval_clusters(
        corpus0, first_interval, rho_threshold=args.rho)
    clustering_seconds = time.perf_counter() - clustering_started
    graph_stats = GraphStats(
        num_intervals=num_intervals,
        max_interval_nodes=max(1, len(clusters0)),
        avg_out_degree=0.0, gap=args.gap)
    execution = plan_streaming(query, graph_stats)
    if args.backend != "auto":
        execution.backend = args.backend
        if args.backend == "sharded" and execution.num_shards < 2:
            execution.num_shards = 4
        execution.reasons.append(
            f"backend {args.backend!r} forced by --backend")
    if args.explain:
        print(execution.explain())
        print()

    owned_dir: Optional[str] = None
    store = None
    pipeline = None
    try:
        if execution.backend != "memory":
            state_dir = args.state_dir
            if state_dir is None:
                owned_dir = tempfile.mkdtemp(prefix="repro-stream-")
                state_dir = owned_dir
            store = open_store(
                execution.backend, directory=state_dir,
                num_shards=execution.num_shards,
                compact_garbage_bytes=execution.compact_garbage_bytes)
        # from_query forwards the query's --workers request; the
        # plan's clamped figure is an estimate from the first
        # interval's shape, not a cap on later (larger) intervals.
        pipeline = StreamingDocumentPipeline.from_query(
            query, rho_threshold=args.rho, theta=args.theta,
            store=store)

        def emit(report) -> None:
            if not args.follow:
                return
            print(report.describe())
            for path in pipeline.top_k():
                print(f"  {path}")

        report = pipeline.add_clusters(clusters0)
        report.num_documents = len(first_docs)
        report.seconds_clustering = clustering_seconds
        emit(report)
        for interval, documents in batches:
            emit(pipeline.add_documents(documents))
        paths = pipeline.top_k()
        if not paths:
            print("no stable paths found")
            return 1
        if args.follow:
            print()
        for path in paths:
            print(_render_stream_path(pipeline, path))
            print()
    finally:
        if pipeline is not None:
            pipeline.close()
        if store is not None:
            store.close()
        if owned_dir is not None:
            shutil.rmtree(owned_dir, ignore_errors=True)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Print the planner's decision for a described workload."""
    length = None if args.length == 0 else args.length
    if args.problem == "normalized" and length is None:
        print("explain: --problem normalized needs --length (lmin)",
              file=sys.stderr)
        return 2
    query = StableQuery(problem=args.problem, l=length,
                        k=args.k, gap=args.gap, workers=args.workers)
    graph_stats = GraphStats(
        num_intervals=args.m, max_interval_nodes=args.n,
        avg_out_degree=float(args.d), gap=args.gap,
        num_nodes=args.m * args.n,
        num_edges=int(args.m * args.n * args.d))
    execution = plan_query(graph_stats, query,
                           memory_budget=_memory_budget_bytes(args))
    print(execution.explain())
    return 0


def cmd_bench_graph(args: argparse.Namespace) -> int:
    """Time registered solvers on a synthetic graph and report each
    one's unified SolverStats counters."""
    graph = synthetic_cluster_graph(m=args.m, n=args.n, d=args.d,
                                    g=args.gap, seed=args.seed)
    print(f"graph: {graph}")
    length = args.length if args.length else graph.num_intervals - 1
    query = StableQuery(problem="kl", l=length, k=args.k, gap=args.gap,
                        workers=args.workers)
    if args.workers is not None:
        # The parallel stages (generation, window join) never run
        # here — bench-graph starts from a pre-built cluster graph —
        # so the request only shapes the reported plan.  Say so
        # rather than letting identical timings mislead.
        print("note: bench-graph times solvers on a pre-built graph; "
              "--workers affects the plan dimension only, not these "
              "timings")
    names = [name.strip() for name in args.solvers.split(",")
             if name.strip()]
    for name in names:
        solver = get_solver(name)
        unsupported = solver.supports(query, graph.num_intervals)
        if unsupported is not None:
            print(f"{name}: skipped ({unsupported})")
            continue
        stats = solver.new_stats()
        started = time.perf_counter()
        report = solve_report(graph, query, solver=name, stats=stats)
        elapsed = time.perf_counter() - started
        best = (f"{report.paths[0].weight:.3f}"
                if report.paths else "none")
        print(f"{name.upper()}: {elapsed:.3f}s  top weight: {best}")
        print(f"  stats: {stats.summary()}")
    return 0


def _add_workers_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None,
                        metavar="N",
                        help="parallel worker processes for the "
                             "per-partition stages (0 = all cores; "
                             "default: serial)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="stable-clusters",
        description="Stable keyword clusters in temporal text "
                    "(Bansal et al., VLDB 2007 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="synthetic week walkthrough")
    demo.add_argument("--vocabulary", type=int, default=3000)
    demo.add_argument("--background", type=int, default=600)
    demo.add_argument("--seed", type=int, default=2007)
    demo.add_argument("--length", type=int, default=3)
    demo.add_argument("-k", type=int, default=5)
    demo.add_argument("--gap", type=int, default=1)
    demo.add_argument("--problem", choices=["kl", "normalized"],
                      default="kl")
    demo.add_argument("--solver", choices=SOLVER_CHOICES,
                      default="auto")
    _add_workers_option(demo)
    demo.set_defaults(func=cmd_demo)

    clusters = sub.add_parser("clusters",
                              help="per-interval keyword clusters")
    clusters.add_argument("input", help="JSONL file of posts")
    clusters.add_argument("--rho", type=float, default=0.2)
    clusters.add_argument("--top", type=int, default=10)
    clusters.set_defaults(func=cmd_clusters)

    stable = sub.add_parser("stable", help="full stable-cluster search")
    stable.add_argument("input", help="JSONL file of posts")
    stable.add_argument("--length", type=int, default=3)
    stable.add_argument("-k", type=int, default=5)
    stable.add_argument("--gap", type=int, default=0)
    stable.add_argument("--rho", type=float, default=0.2)
    stable.add_argument("--theta", type=float, default=0.1)
    stable.add_argument("--problem", choices=["kl", "normalized"],
                        default="kl")
    stable.add_argument("--solver", choices=SOLVER_CHOICES,
                        default="auto",
                        help="search algorithm; 'auto' lets the "
                             "cost-based planner pick")
    stable.add_argument("--memory-budget", type=float, default=None,
                        metavar="MIB",
                        help="planner memory budget in MiB")
    stable.add_argument("--explain", action="store_true",
                        help="print the execution plan before results")
    _add_workers_option(stable)
    stable.set_defaults(func=cmd_stable)

    stream = sub.add_parser(
        "stream",
        help="incremental top-k maintenance over a JSONL stream")
    stream.add_argument("input", help="JSONL file of posts, replayed "
                                      "interval by interval")
    stream.add_argument("--length", type=int, default=3,
                        help="target path length (lmin for "
                             "--problem normalized)")
    stream.add_argument("-k", type=int, default=5)
    stream.add_argument("--gap", type=int, default=0)
    stream.add_argument("--rho", type=float, default=0.2)
    stream.add_argument("--theta", type=float, default=0.1)
    stream.add_argument("--problem", choices=["kl", "normalized"],
                        default="kl")
    stream.add_argument("--solver",
                        choices=["auto", "bfs", "normalized"],
                        default="auto",
                        help="streaming engine; 'auto' follows "
                             "--problem (bfs for kl)")
    stream.add_argument("--memory-budget", type=float, default=None,
                        metavar="MIB",
                        help="planner memory budget in MiB")
    stream.add_argument("--backend",
                        choices=["auto", "memory", "disk", "sharded"],
                        default="auto",
                        help="node-state backend; 'auto' lets the "
                             "streaming planner pick")
    stream.add_argument("--state-dir", default=None,
                        help="directory for disk-backed state "
                             "(default: a temporary directory)")
    stream.add_argument("--follow", action="store_true",
                        help="print each interval's ingest report "
                             "and the evolving top-k")
    stream.add_argument("--explain", action="store_true",
                        help="print the streaming execution plan "
                             "before replaying")
    _add_workers_option(stream)
    stream.set_defaults(func=cmd_stream)

    explain = sub.add_parser(
        "explain",
        help="print the planner's decision for a workload shape")
    explain.add_argument("-m", type=int, default=9,
                         help="temporal intervals")
    explain.add_argument("-n", type=int, default=400,
                         help="clusters per interval")
    explain.add_argument("-d", type=int, default=5,
                         help="average out degree")
    explain.add_argument("--gap", type=int, default=0)
    explain.add_argument("--length", type=int, default=0,
                         help="0 means full paths (m - 1)")
    explain.add_argument("-k", type=int, default=5)
    explain.add_argument("--problem", choices=["kl", "normalized"],
                         default="kl")
    explain.add_argument("--memory-budget", type=float, default=None,
                         metavar="MIB",
                         help="planner memory budget in MiB")
    _add_workers_option(explain)
    explain.set_defaults(func=cmd_explain)

    bench = sub.add_parser("bench-graph",
                           help="time solvers on a synthetic graph")
    bench.add_argument("-m", type=int, default=9)
    bench.add_argument("-n", type=int, default=400)
    bench.add_argument("-d", type=int, default=5)
    bench.add_argument("--gap", type=int, default=0)
    bench.add_argument("--length", type=int, default=0,
                       help="0 means full paths (m - 1)")
    bench.add_argument("-k", type=int, default=5)
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--solvers", default="bfs,dfs",
                       help="comma-separated registry names to time")
    _add_workers_option(bench)
    bench.set_defaults(func=cmd_bench_graph)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Domain errors (unsupported solver/problem combination,
        # invalid query bounds) become clean CLI errors, not
        # tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
