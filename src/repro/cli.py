"""Command-line front end: ``stable-clusters``.

Subcommands (all documented in ``docs/cli.md``):

* ``demo`` — generate a synthetic blogosphere week with scripted
  events and print the stable clusters it discovers (the qualitative
  study of Section 5.3 in miniature).
* ``clusters`` — run Section 3 cluster generation over documents read
  from a file (one JSON object per line: ``{"interval": 0, "text":
  "..."}``) and print the per-interval keyword clusters.
* ``stable`` — full pipeline over the same input format, printing the
  top-k stable paths; ``--index-dir`` persists the run as a queryable
  cluster index.
* ``stream`` — replay the same JSONL input *incrementally* (Section
  4.6); ``--index-dir`` maintains a live index a concurrent ``query
  --follow`` can tail.
* ``corpus`` — real-corpus ingestion (:mod:`repro.corpus`): ``stats``
  measures a DBLP-XML/JSONL/CSV file (ingest report + per-interval
  histogram), ``ingest`` converts any of those formats to the
  canonical JSONL wire format; the same adapters mount on
  ``stable``/``stream``/``index build``/``explain`` via ``--corpus
  FILE --format dblp|jsonl|csv``.
* ``index`` — ``build`` a persistent cluster index from a corpus,
  ``inspect`` an existing one (``--segments`` lists the live segment
  tier), or ``merge`` (compact) its sealed segments.
* ``query`` — serve from a persisted index without recomputing:
  ``refine`` (Section 1's query-refinement suggestions), ``lookup``
  (keyword -> cluster point lookup), ``paths`` (stable paths,
  optionally filtered by keyword).
* ``serve`` — expose a persisted (or live) index over HTTP: the
  concurrent JSON endpoints of :mod:`repro.serving`, with admission
  control under ``--memory-budget`` and single-flight request
  batching.
* ``explain`` — print the planner's decision for a described workload
  (graph shape + query) without running anything; ``--serve`` adds
  the serving dimension (cache split + hit-rate forecast).
* ``bench-graph`` — generate a Section 5.2 synthetic cluster graph and
  time any set of registered solvers on it.

Every search path goes through the unified engine layer
(:mod:`repro.engine`); all serving paths go through
:mod:`repro.index` / :mod:`repro.service`.  Flags shared by several
subcommands (``--length``/``-k``/``--gap``/``--problem``, ``--rho``/
``--theta``, ``--solver``, ``--memory-budget``, ``--workers``, the
graph-shape flags) are defined once as parent parsers below, so their
help text and defaults cannot drift between subcommands.
"""

from __future__ import annotations

import argparse
import shutil
import signal
import sys
import tempfile
import time
from typing import List, Optional

from repro.datagen import (
    BlogosphereGenerator,
    Event,
    EventSchedule,
    ZipfVocabulary,
    synthetic_cluster_graph,
)
from repro.datagen.events import drifting_event
from repro.distributed import (
    DistributedQueryService,
    build_sharded_index,
)
from repro.corpus import (
    ADAPTERS,
    CorpusAdapter,
    IntervalBucketing,
    dump_jsonl,
    open_adapter,
)
from repro.engine import (
    CorpusStats,
    GraphStats,
    StableQuery,
    apply_corpus_dimension,
    apply_distributed_dimension,
    apply_index_dimension,
    apply_serving_dimension,
    estimate_corpus_graph,
    estimate_index_bytes,
    explain as plan_query,
    get_solver,
    plan_streaming,
    solve_report,
    solver_names,
)
from repro.index import (
    DEFAULT_FLUSH_INTERVALS,
    compact_index,
    load_manifest,
)
from repro.pipeline import (
    find_stable_clusters,
    generate_interval_clusters,
    render_path_clusters,
    render_stable_path,
)
from repro.search import render_refinement
from repro.service import ClusterQueryService
from repro.serving import ClusterServer
from repro.storage import open_store
from repro.streaming import (
    StreamingDocumentPipeline,
    interval_batches,
    read_jsonl_documents,
)
from repro.text.documents import IntervalCorpus

SOLVER_CHOICES = ["auto"] + solver_names()
STREAM_SOLVER_CHOICES = ["auto", "bfs", "normalized"]


def _demo_schedule() -> EventSchedule:
    schedule = EventSchedule()
    schedule.add(Event.burst(
        "stemcell", ["stem", "cell", "amniotic", "research", "atala"],
        interval=2, posts=60))
    schedule.add(Event.persistent(
        "somalia", ["somalia", "mogadishu", "ethiopian", "islamist",
                    "kamboni"],
        start=0, duration=7, posts=45, ramp=[1, 1, 1.6, 1.6, 1.2, 1, 1]))
    schedule.add(Event.with_gaps(
        "facup", ["liverpool", "arsenal", "anfield", "goal"],
        active_intervals=[0, 3, 4], posts=50))
    schedule.extend(drifting_event(
        "iphone", shared=["apple", "iphone"],
        first_phase=["touchscreen", "keynote", "features"],
        second_phase=["cisco", "lawsuit", "trademark"],
        start=3, phase1_len=2, phase2_len=2, posts=55))
    return schedule


def cmd_demo(args: argparse.Namespace) -> int:
    """Run the synthetic-week walkthrough (Section 5.3 demo)."""
    vocab = ZipfVocabulary(args.vocabulary, seed=args.seed)
    generator = BlogosphereGenerator(
        vocab, _demo_schedule(), background_posts=args.background,
        seed=args.seed)
    corpus = generator.generate_corpus(7)
    print(f"generated {corpus.num_documents} posts over 7 days")
    result = find_stable_clusters(corpus, l=args.length, k=args.k,
                                  gap=args.gap, problem=args.problem,
                                  solver=args.solver,
                                  workers=args.workers)
    sizes = [len(c) for c in result.interval_clusters]
    print(f"clusters per day: {sizes}")
    print(f"cluster graph: {result.cluster_graph}")
    if not result.paths:
        print("no stable paths found")
        return 1
    for path in result.paths:
        print()
        print(render_stable_path(result, path))
    return 0


def _read_corpus(path: str) -> IntervalCorpus:
    corpus = IntervalCorpus()
    corpus.extend(read_jsonl_documents(path))
    return corpus


def _corpus_adapter(args: argparse.Namespace) -> CorpusAdapter:
    """Build the adapter ``--corpus``/``--format`` (and the field-
    mapping/bucketing flags) describe."""
    bucketing = None
    if args.bucket is not None:
        bucketing = IntervalBucketing.parse(args.bucket,
                                            origin=args.origin)
    elif args.origin is not None:
        cls = ADAPTERS[args.format]
        default = cls.default_bucketing()
        bucketing = IntervalBucketing(mode=default.mode,
                                      width=default.width,
                                      origin=args.origin)
    fields = {}
    if args.format != "dblp":
        fields = {"text_field": args.text_field,
                  "time_field": args.time_field,
                  "id_field": args.id_field}
    return open_adapter(args.format, args.corpus, bucketing=bucketing,
                        strict=args.strict, **fields)


def _load_corpus(args: argparse.Namespace):
    """Resolve a subcommand's input into an
    :class:`~repro.text.IntervalCorpus`.

    Either the positional JSONL ``input`` (the historical wire
    format) or ``--corpus FILE --format ...`` through an adapter —
    exactly one of the two.  Returns ``(corpus, adapter)``; the
    adapter is ``None`` on the positional path.
    """
    has_input = getattr(args, "input", None) is not None
    has_corpus = getattr(args, "corpus", None) is not None
    if has_input == has_corpus:
        raise ValueError(
            "supply either a positional JSONL input or "
            "--corpus FILE (with --format), not "
            + ("both" if has_input else "neither"))
    if has_input:
        return _read_corpus(args.input), None
    adapter = _corpus_adapter(args)
    corpus = IntervalCorpus.from_adapter(adapter)
    return corpus, adapter


def cmd_clusters(args: argparse.Namespace) -> int:
    """Print per-interval keyword clusters for a JSONL corpus."""
    corpus = _read_corpus(args.input)
    for interval in corpus.interval_indices:
        clusters = generate_interval_clusters(
            corpus, interval, rho_threshold=args.rho)
        print(f"interval {interval}: {len(clusters)} clusters")
        for cluster in sorted(clusters, key=len, reverse=True)[:args.top]:
            print(f"  {' '.join(sorted(cluster.keywords))}")
    return 0


def _memory_budget_bytes(args: argparse.Namespace) -> Optional[int]:
    if getattr(args, "memory_budget", None) is None:
        return None
    return int(args.memory_budget * 1024 * 1024)


def _run_batch(args: argparse.Namespace,
               index_dir: Optional[str]):
    """The shared ``stable``/``index build`` execution path."""
    corpus, adapter = _load_corpus(args)
    if adapter is not None:
        print(adapter.report.describe())
        print()
    return find_stable_clusters(corpus, l=args.length, k=args.k,
                                gap=args.gap, problem=args.problem,
                                rho_threshold=args.rho,
                                theta=args.theta,
                                solver=args.solver,
                                memory_budget=_memory_budget_bytes(args),
                                workers=args.workers,
                                index_dir=index_dir,
                                index_append=getattr(
                                    args, "index_append", False))


def cmd_stable(args: argparse.Namespace) -> int:
    """Run the full stable-cluster pipeline on a JSONL corpus."""
    result = _run_batch(args, args.index_dir)
    if args.explain and result.plan is not None:
        print(result.plan.explain())
        print()
    if result.index_dir is not None:
        print(f"persisted cluster index: {result.index_dir} "
              f"({result.plan.index_bytes} log bytes, "
              f"{result.plan.index_segments} segments)")
        print()
    if not result.paths:
        print("no stable paths found")
        return 1
    for path in result.paths:
        print(render_stable_path(result, path))
        print()
    return 0


def _render_stream_path(pipeline: StreamingDocumentPipeline,
                        path) -> str:
    """Render one maintained path; clusters older than the window
    have been evicted and render as such."""
    return render_path_clusters(
        path, pipeline.cluster_for,
        missing="(evicted from the g + 1 window)")


def cmd_stream(args: argparse.Namespace) -> int:
    """Replay a JSONL corpus interval by interval through the
    streaming ingestion pipeline (Section 4.6 serving mode)."""
    query = StableQuery(problem=args.problem, l=args.length,
                        k=args.k, gap=args.gap,
                        memory_budget=_memory_budget_bytes(args),
                        workers=args.workers)
    if args.solver not in ("auto", query.streaming_solver):
        raise ValueError(
            f"solver {args.solver!r} cannot stream "
            f"problem={args.problem!r}; the streaming engine for it "
            f"is {query.streaming_solver!r}")
    corpus_in, adapter = _load_corpus(args)
    if adapter is not None:
        print(adapter.report.describe())
        print()
    all_documents = [doc for index in corpus_in.interval_indices
                     for doc in corpus_in.documents(index)]
    if not all_documents:
        print("error: no documents in input", file=sys.stderr)
        return 2
    first_seen = min(doc.interval for doc in all_documents)
    num_intervals = max(doc.interval
                        for doc in all_documents) - first_seen + 1

    # Cluster the first interval up front: its cluster count is the
    # planner's estimate of the per-interval shape (a live deployment
    # would measure the first intervals the same way); the remaining
    # batches are consumed lazily as the replay reaches them.
    batches = interval_batches(all_documents)
    first_interval, first_docs = next(batches)
    corpus0 = IntervalCorpus()
    corpus0.extend(first_docs)
    clustering_started = time.perf_counter()
    clusters0 = generate_interval_clusters(
        corpus0, first_interval, rho_threshold=args.rho)
    clustering_seconds = time.perf_counter() - clustering_started
    graph_stats = GraphStats(
        num_intervals=num_intervals,
        max_interval_nodes=max(1, len(clusters0)),
        avg_out_degree=0.0, gap=args.gap)
    execution = plan_streaming(query, graph_stats)
    if args.backend != "auto":
        execution.backend = args.backend
        if args.backend == "sharded" and execution.num_shards < 2:
            execution.num_shards = 4
        execution.reasons.append(
            f"backend {args.backend!r} forced by --backend")
    if args.index_dir is not None:
        execution.index_dir = args.index_dir
        apply_index_dimension(execution, graph_stats,
                              flush_intervals=args.flush_intervals)
    if args.explain:
        print(execution.explain())
        print()

    owned_dir: Optional[str] = None
    store = None
    pipeline = None
    replayed = False
    try:
        if execution.backend != "memory":
            state_dir = args.state_dir
            if state_dir is None:
                owned_dir = tempfile.mkdtemp(prefix="repro-stream-")
                state_dir = owned_dir
            store = open_store(
                execution.backend, directory=state_dir,
                num_shards=execution.num_shards,
                compact_garbage_bytes=execution.compact_garbage_bytes)
        # from_query forwards the query's --workers request; the
        # plan's clamped figure is an estimate from the first
        # interval's shape, not a cap on later (larger) intervals.
        pipeline = StreamingDocumentPipeline.from_query(
            query, rho_threshold=args.rho, theta=args.theta,
            store=store, index_dir=args.index_dir,
            index_append=not args.index_rebuild,
            flush_intervals=args.flush_intervals)

        def emit(report) -> None:
            if not args.follow:
                return
            print(report.describe())
            for path in pipeline.top_k():
                print(f"  {path}")

        report = pipeline.add_clusters(clusters0)
        report.num_documents = len(first_docs)
        report.seconds_clustering = clustering_seconds
        emit(report)
        for interval, documents in batches:
            emit(pipeline.add_documents(documents))
        replayed = True
        paths = pipeline.top_k()
        if not paths:
            print("no stable paths found")
            return 1
        if args.follow:
            print()
        for path in paths:
            print(_render_stream_path(pipeline, path))
            print()
    finally:
        if pipeline is not None:
            # An interrupted replay leaves the live index marked
            # incomplete rather than stamping a truncated run final.
            pipeline.close(finalize_index=replayed)
        if store is not None:
            store.close()
        if owned_dir is not None:
            shutil.rmtree(owned_dir, ignore_errors=True)
    if args.index_dir is not None:
        manifest = load_manifest(args.index_dir)
        print(f"persisted cluster index: {args.index_dir} "
              f"({len(manifest['segments'])} segments, "
              f"generation {manifest['generation']})")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Print the planner's decision for a described workload."""
    length = None if args.length == 0 else args.length
    if args.problem == "normalized" and length is None:
        print("explain: --problem normalized needs --length (lmin)",
              file=sys.stderr)
        return 2
    query = StableQuery(problem=args.problem, l=length,
                        k=args.k, gap=args.gap, workers=args.workers)
    corpus_stats = None
    if args.corpus is not None:
        # Measure the real source instead of trusting -m/-n/-d: the
        # corpus dimension feeds the planner an estimated graph shape.
        adapter = _corpus_adapter(args)
        corpus = IntervalCorpus.from_adapter(adapter)
        corpus_stats = CorpusStats.measure(corpus,
                                           source=adapter.source_name,
                                           format=adapter.format_name)
        graph_stats = estimate_corpus_graph(corpus_stats, gap=args.gap)
    else:
        graph_stats = GraphStats(
            num_intervals=args.m, max_interval_nodes=args.n,
            avg_out_degree=float(args.d), gap=args.gap,
            num_nodes=args.m * args.n,
            num_edges=int(args.m * args.n * args.d))
    execution = plan_query(graph_stats, query,
                           memory_budget=_memory_budget_bytes(args))
    if corpus_stats is not None:
        apply_corpus_dimension(execution, corpus_stats)
    if args.index_dir is not None:
        # Forecast the persistent-index cost for this shape the same
        # way the window estimate forecasts memory.
        execution.index_dir = args.index_dir
        execution.index_bytes = estimate_index_bytes(graph_stats)
        execution.reasons.append(
            "index size estimated from m*n cluster records "
            "(measured after a real run)")
        apply_index_dimension(execution, graph_stats,
                              flush_intervals=args.flush_intervals)
    if args.serve:
        apply_serving_dimension(execution, graph_stats,
                                skew=args.skew)
    if args.shards:
        apply_distributed_dimension(execution, graph_stats,
                                    args.shards)
    print(execution.explain())
    return 0


def cmd_corpus_stats(args: argparse.Namespace) -> int:
    """Measure a corpus file: ingest report plus interval shape."""
    adapter = _corpus_adapter(args)
    corpus = IntervalCorpus.from_adapter(adapter)
    print(adapter.report.describe())
    stats = CorpusStats.measure(corpus, source=adapter.source_name,
                                format=adapter.format_name)
    print(f"corpus: {stats.describe()}")
    peak = max(stats.max_interval_documents, 1)
    for interval in corpus.interval_indices:
        count = len(corpus.documents(interval))
        bar = "#" * round(40 * count / peak)
        print(f"  interval {interval:>4}: {count:>7} docs  {bar}")
    return 0


def cmd_corpus_ingest(args: argparse.Namespace) -> int:
    """Convert a corpus to the canonical JSONL wire format."""
    adapter = _corpus_adapter(args)
    corpus = IntervalCorpus.from_adapter(adapter)
    if args.output is not None:
        written = dump_jsonl(corpus, args.output)
        print(adapter.report.describe())
        print(f"wrote {written} documents over "
              f"{corpus.num_intervals} intervals to {args.output}")
    else:
        # JSONL to stdout, the report to stderr so pipes stay clean.
        written = dump_jsonl(corpus, sys.stdout)
        print(adapter.report.describe(), file=sys.stderr)
    return 0


def cmd_bench_graph(args: argparse.Namespace) -> int:
    """Time registered solvers on a synthetic graph and report each
    one's unified SolverStats counters."""
    graph = synthetic_cluster_graph(m=args.m, n=args.n, d=args.d,
                                    g=args.gap, seed=args.seed)
    print(f"graph: {graph}")
    length = args.length if args.length else graph.num_intervals - 1
    query = StableQuery(problem="kl", l=length, k=args.k, gap=args.gap,
                        workers=args.workers)
    if args.workers is not None:
        # The parallel stages (generation, window join) never run
        # here — bench-graph starts from a pre-built cluster graph —
        # so the request only shapes the reported plan.  Say so
        # rather than letting identical timings mislead.
        print("note: bench-graph times solvers on a pre-built graph; "
              "--workers affects the plan dimension only, not these "
              "timings")
    names = [name.strip() for name in args.solvers.split(",")
             if name.strip()]
    for name in names:
        solver = get_solver(name)
        unsupported = solver.supports(query, graph.num_intervals)
        if unsupported is not None:
            print(f"{name}: skipped ({unsupported})")
            continue
        stats = solver.new_stats()
        started = time.perf_counter()
        report = solve_report(graph, query, solver=name, stats=stats)
        elapsed = time.perf_counter() - started
        best = (f"{report.paths[0].weight:.3f}"
                if report.paths else "none")
        print(f"{name.upper()}: {elapsed:.3f}s  top weight: {best}")
        print(f"  stats: {stats.summary()}")
    return 0


# ----------------------------------------------------------------------
# Serving subcommands (the persistent index)
# ----------------------------------------------------------------------


def cmd_index_build(args: argparse.Namespace) -> int:
    """Build a persistent cluster index from a JSONL corpus."""
    if args.shards is None:
        result = _run_batch(args, args.dir)
    else:
        # Shard-parallel build: run the pipeline without a writer,
        # then let repro.distributed encode the segment shards in
        # parallel worker processes (byte-identical output).
        result = _run_batch(args, None)
        total = build_sharded_index(
            args.dir, result.interval_clusters, result.paths,
            vocab=result.vocabulary, plan=result.plan,
            num_shards=args.shards, workers=args.workers)
        if result.plan is not None:
            result.plan.index_dir = args.dir
            result.plan.index_bytes = total
            result.plan.index_segments = 1
    if args.explain and result.plan is not None:
        print(result.plan.explain())
        print()
    print(f"indexed {len(result.interval_clusters)} intervals, "
          f"{sum(len(c) for c in result.interval_clusters)} clusters, "
          f"{len(result.paths)} stable paths "
          f"({result.plan.index_bytes} log bytes) at {args.dir}")
    return 0


def cmd_index_inspect(args: argparse.Namespace) -> int:
    """Summarize a persisted index: shape, layout, provenance."""
    with ClusterQueryService(args.dir) as service:
        print(service.describe(segments=args.segments,
                               shards=args.shards))
    return 0


def cmd_index_merge(args: argparse.Namespace) -> int:
    """Compact an index's sealed segments (size-tiered merge)."""
    report = compact_index(args.dir, full=args.full, force=args.force)
    print(f"merged {args.dir}: "
          f"{report['segments_before']} -> "
          f"{report['segments_after']} segments in "
          f"{report['merges']} merge(s), "
          f"{report['bytes_before']} -> {report['bytes_after']} "
          f"log bytes (generation {report['generation']})")
    return 0


def _follow(service: ClusterQueryService, render, args) -> None:
    """Re-render whenever a live index grows, until its run
    finalizes (or --max-polls is exhausted)."""
    polls = 0
    while not service.complete and (args.max_polls is None
                                    or polls < args.max_polls):
        time.sleep(args.poll)
        polls += 1
        if service.refresh():
            print()
            render()


def _maybe_stats(service: ClusterQueryService,
                 args: argparse.Namespace) -> None:
    """Print serving counters when ``query ... --stats`` asked."""
    if args.stats:
        print()
        print(service.describe_stats())


def _query_interval(service: ClusterQueryService,
                    args: argparse.Namespace) -> Optional[int]:
    """The interval a query targets, or None while a live index has
    nothing yet (a --follow loop keeps polling instead of erroring)."""
    if args.interval is not None:
        return args.interval
    if service.num_intervals == 0:
        live = "" if service.complete else " (live)"
        print(f"the index holds no intervals yet{live}")
        return None
    return service.latest_interval


def cmd_query_refine(args: argparse.Namespace) -> int:
    """Refinement suggestions for a keyword, from the index."""
    found = False
    with ClusterQueryService(args.dir) as service:

        def render() -> None:
            nonlocal found
            interval = _query_interval(service, args)
            if interval is None:
                return
            live = "" if service.complete else " (live)"
            print(f"query {args.keyword!r} @ interval "
                  f"{interval}{live}")
            result = service.refine(args.keyword, interval)
            if result is None:
                print("  falls in no cluster this interval")
                return
            found = True
            print(render_refinement(result,
                                    max_suggestions=args.top))

        render()
        if args.follow:
            _follow(service, render, args)
        _maybe_stats(service, args)
    return 0 if found else 1


def cmd_query_lookup(args: argparse.Namespace) -> int:
    """Point lookup: the cluster a keyword falls into."""
    found = False
    with ClusterQueryService(args.dir) as service:

        def render() -> None:
            nonlocal found
            interval = _query_interval(service, args)
            if interval is None:
                return
            cluster = service.lookup(args.keyword, interval)
            if cluster is None:
                print(f"{args.keyword!r} falls in no cluster at "
                      f"interval {interval}")
                return
            found = True
            print(f"interval {interval}: "
                  f"{' '.join(sorted(cluster.keywords))}")
            for u, v, rho in cluster.edges:
                print(f"  {u} -- {v}  (rho {rho:.3f})")

        render()
        if args.follow:
            _follow(service, render, args)
        _maybe_stats(service, args)
    return 0 if found else 1


def cmd_query_paths(args: argparse.Namespace) -> int:
    """The run's stable paths, optionally filtered by keyword."""
    shown = False
    with ClusterQueryService(args.dir) as service:

        def render() -> None:
            nonlocal shown
            paths = (service.paths_for(args.keyword)
                     if args.keyword else service.stable_paths())
            if not paths:
                print("no stable paths"
                      + (f" through {args.keyword!r}"
                         if args.keyword else "")
                      + (" yet" if not service.complete else ""))
                return
            shown = True
            for path in paths:
                print(service.render_path(path))
                print()

        render()
        if args.follow:
            _follow(service, render, args)
        _maybe_stats(service, args)
    return 0 if shown else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a persisted (or live) index over HTTP."""
    try:
        # Exit through the finally blocks on SIGTERM so shard
        # workers get their stop sentinel instead of being orphaned.
        signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    except ValueError:  # not the main thread (in-process tests)
        pass
    coordinator = None
    if args.shards:
        # Scatter-gather mode: the HTTP front door keeps its
        # single-flight batching and admission control, but queries
        # route through the distributed coordinator instead of the
        # in-process service.
        coordinator = DistributedQueryService(
            args.dir, workers=args.shards,
            request_timeout=args.request_timeout,
            hedge_delay=args.hedge_ms / 1000.0)
    try:
        server = ClusterServer(
            coordinator if coordinator is not None else args.dir,
            host=args.host, port=args.port,
            memory_budget=_memory_budget_bytes(args),
            cache_size=args.cache_size,
            max_inflight=args.max_inflight,
            batching=not args.no_batching,
            refresh_seconds=args.poll)
        with server:
            server.start()
            live = "complete" if server.service.complete else "live"
            tier = (f", {args.shards} shard workers"
                    if coordinator is not None else "")
            print(f"serving {args.dir} ({live}, "
                  f"{server.service.num_intervals} intervals{tier}) "
                  f"at {server.url}", flush=True)
            print(f"endpoints: /refine /lookup /paths /stats  "
                  f"(max {server.max_inflight} in flight, batching "
                  f"{'on' if server.batching else 'off'})",
                  flush=True)
            try:
                if args.max_seconds is not None:
                    time.sleep(args.max_seconds)
                else:
                    while True:
                        time.sleep(3600)
            except KeyboardInterrupt:
                print("shutting down")
    finally:
        if coordinator is not None:
            coordinator.close()
    return 0


# ----------------------------------------------------------------------
# Parser construction (shared flag definitions)
# ----------------------------------------------------------------------


def _shape_parent() -> argparse.ArgumentParser:
    """--length/-k/--gap/--problem, the query-shape flags every
    corpus-running subcommand shares."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--length", type=int, default=3,
                        help="target path length (lmin for "
                             "--problem normalized)")
    parent.add_argument("-k", type=int, default=5,
                        help="number of stable paths to report")
    parent.add_argument("--gap", type=int, default=0,
                        help="max intervals a path may skip (g)")
    parent.add_argument("--problem", choices=["kl", "normalized"],
                        default="kl",
                        help="Problem 1 (kl: length exactly l) or "
                             "Problem 2 (normalized: weight/length, "
                             "length >= lmin)")
    return parent


def _generation_parent() -> argparse.ArgumentParser:
    """--rho/--theta, the Section-3/4 thresholds."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--rho", type=float, default=0.2,
                        help="correlation threshold for keyword-graph "
                             "pruning (Section 3)")
    parent.add_argument("--theta", type=float, default=0.1,
                        help="affinity threshold for cluster-graph "
                             "edges (Section 4.1)")
    return parent


def _solver_parent() -> argparse.ArgumentParser:
    """--solver/--memory-budget/--explain for batch search."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--solver", choices=SOLVER_CHOICES,
                        default="auto",
                        help="search algorithm; 'auto' lets the "
                             "cost-based planner pick")
    parent.add_argument("--memory-budget", type=float, default=None,
                        metavar="MIB",
                        help="planner memory budget in MiB")
    parent.add_argument("--explain", action="store_true",
                        help="print the execution plan before results")
    return parent


def _workers_parent() -> argparse.ArgumentParser:
    """--workers, the parallel dimension."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--workers", type=int, default=None,
                        metavar="N",
                        help="parallel worker processes for the "
                             "per-partition stages (0 = all cores; "
                             "default: serial)")
    return parent


def _graph_shape_parent() -> argparse.ArgumentParser:
    """-m/-n/-d/--gap/--length/-k, the synthetic workload shape
    shared by ``explain`` and ``bench-graph``."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("-m", type=int, default=9,
                        help="temporal intervals")
    parent.add_argument("-n", type=int, default=400,
                        help="clusters per interval")
    parent.add_argument("-d", type=int, default=5,
                        help="average out degree")
    parent.add_argument("--gap", type=int, default=0,
                        help="max intervals a path may skip (g)")
    parent.add_argument("--length", type=int, default=0,
                        help="path length l; 0 means full paths "
                             "(m - 1)")
    parent.add_argument("-k", type=int, default=5,
                        help="number of stable paths to report")
    return parent


def _corpus_format_parent() -> argparse.ArgumentParser:
    """--format plus the adapter field-mapping/bucketing flags."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--format", choices=sorted(ADAPTERS),
                        default="jsonl",
                        help="corpus file format (adapter)")
    parent.add_argument("--text-field", default="text",
                        metavar="NAME",
                        help="jsonl/csv: field holding the document "
                             "text")
    parent.add_argument("--time-field", default="interval",
                        metavar="NAME",
                        help="jsonl/csv: field holding the timestamp")
    parent.add_argument("--id-field", default="id", metavar="NAME",
                        help="jsonl/csv: field holding the document "
                             "id (optional in the data)")
    parent.add_argument("--bucket", default=None, metavar="MODE",
                        help="interval bucketing: interval, year, "
                             "month, or epoch[:SECONDS] (default: "
                             "the format's own — year for dblp, "
                             "pass-through interval otherwise)")
    parent.add_argument("--origin", type=int, default=None,
                        metavar="BUCKET",
                        help="bucket value that becomes interval 0 "
                             "(default: the smallest seen)")
    parent.add_argument("--strict", action="store_true",
                        help="fail on the first malformed record "
                             "instead of skip-and-count")
    return parent


def _corpus_parent() -> argparse.ArgumentParser:
    """--corpus + the format flags, for subcommands where an adapter
    source is an alternative to the positional JSONL input."""
    parent = argparse.ArgumentParser(
        add_help=False, parents=[_corpus_format_parent()])
    parent.add_argument("--corpus", default=None, metavar="FILE",
                        help="read documents from FILE through the "
                             "--format adapter instead of a "
                             "positional JSONL input")
    return parent


def _query_service_parent() -> argparse.ArgumentParser:
    """The flags every ``query`` action shares: the index directory
    and the --follow polling loop for live (streaming) indexes."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("dir", help="cluster index directory")
    parent.add_argument("--follow", action="store_true",
                        help="keep polling a live streaming index "
                             "and re-print on growth, until its run "
                             "finalizes")
    parent.add_argument("--poll", type=float, default=0.5,
                        metavar="SECONDS",
                        help="--follow poll interval")
    parent.add_argument("--max-polls", type=int, default=None,
                        metavar="N",
                        help="stop --follow after N polls even if "
                             "the index is still live")
    parent.add_argument("--stats", action="store_true",
                        help="print serving counters after the "
                             "answer: refiner/cluster cache hit "
                             "rates, segments, bytes tailed, mmap")
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="stable-clusters",
        description="Stable keyword clusters in temporal text "
                    "(Bansal et al., VLDB 2007 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)
    shape = _shape_parent()
    generation = _generation_parent()
    solver = _solver_parent()
    workers = _workers_parent()
    graph_shape = _graph_shape_parent()
    query_service = _query_service_parent()
    corpus_source = _corpus_parent()

    demo = sub.add_parser("demo", help="synthetic week walkthrough",
                          parents=[shape, workers])
    demo.add_argument("--vocabulary", type=int, default=3000,
                      help="synthetic Zipf vocabulary size")
    demo.add_argument("--background", type=int, default=600,
                      help="background (non-event) posts per day")
    demo.add_argument("--seed", type=int, default=2007,
                      help="random seed")
    demo.add_argument("--solver", choices=SOLVER_CHOICES,
                      default="auto",
                      help="search algorithm; 'auto' lets the "
                           "cost-based planner pick")
    demo.set_defaults(func=cmd_demo, gap=1)

    clusters = sub.add_parser("clusters",
                              help="per-interval keyword clusters",
                              parents=[generation])
    clusters.add_argument("input", help="JSONL file of posts")
    clusters.add_argument("--top", type=int, default=10,
                          help="clusters to print per interval")
    clusters.set_defaults(func=cmd_clusters)

    stable = sub.add_parser("stable",
                            help="full stable-cluster search",
                            parents=[shape, generation, solver,
                                     workers, corpus_source])
    stable.add_argument("input", nargs="?", default=None,
                        help="JSONL file of posts (or use --corpus)")
    stable.add_argument("--index-dir", default=None, metavar="DIR",
                        help="persist the run as a queryable cluster "
                             "index at DIR")
    stable.add_argument("--index-append", action="store_true",
                        help="continue an existing index at "
                             "--index-dir as a new segment instead "
                             "of rebuilding it")
    stable.set_defaults(func=cmd_stable)

    stream = sub.add_parser(
        "stream",
        help="incremental top-k maintenance over a JSONL stream",
        parents=[shape, generation, workers, corpus_source])
    stream.add_argument("input", nargs="?", default=None,
                        help="JSONL file of posts, replayed interval "
                             "by interval (or use --corpus)")
    # Streaming has exactly one engine per problem (Section 4.6), so
    # its --solver choices are narrower than the batch registry; this
    # is the single place they are defined.
    stream.add_argument("--solver", choices=STREAM_SOLVER_CHOICES,
                        default="auto",
                        help="streaming engine; 'auto' follows "
                             "--problem (bfs for kl)")
    stream.add_argument("--memory-budget", type=float, default=None,
                        metavar="MIB",
                        help="planner memory budget in MiB")
    stream.add_argument("--backend",
                        choices=["auto", "memory", "disk", "sharded"],
                        default="auto",
                        help="node-state backend; 'auto' lets the "
                             "streaming planner pick")
    stream.add_argument("--state-dir", default=None,
                        help="directory for disk-backed state "
                             "(default: a temporary directory)")
    stream.add_argument("--index-dir", default=None, metavar="DIR",
                        help="maintain a live cluster index at DIR "
                             "(append per interval; `query --follow` "
                             "can tail it); an existing index there "
                             "is continued across restarts")
    stream.add_argument("--index-rebuild", action="store_true",
                        help="wipe any existing index at --index-dir "
                             "instead of continuing its timeline")
    stream.add_argument("--flush-intervals", type=int,
                        default=DEFAULT_FLUSH_INTERVALS, metavar="N",
                        help="seal an index segment every N ingested "
                             "intervals")
    stream.add_argument("--follow", action="store_true",
                        help="print each interval's ingest report "
                             "and the evolving top-k")
    stream.add_argument("--explain", action="store_true",
                        help="print the execution plan before results")
    stream.set_defaults(func=cmd_stream)

    index = sub.add_parser(
        "index", help="build or inspect a persistent cluster index")
    index_sub = index.add_subparsers(dest="index_command",
                                     required=True)
    build = index_sub.add_parser(
        "build", help="run the batch pipeline and persist the "
                      "result as a queryable index",
        parents=[shape, generation, solver, workers, corpus_source])
    build.add_argument("input", nargs="?", default=None,
                       help="JSONL file of posts (or use --corpus)")
    build.add_argument("--dir", required=True,
                       help="directory to write the index to")
    build.add_argument("--shards", type=int, default=None,
                       metavar="N",
                       help="shard-parallel build: encode the "
                            "segment's N cluster shards in worker "
                            "processes (byte-identical to the "
                            "serial writer; default: serial write, "
                            "4 shards)")
    build.set_defaults(func=cmd_index_build)
    inspect = index_sub.add_parser(
        "inspect", help="summarize an index: shape, layout, "
                        "provenance")
    inspect.add_argument("dir", help="cluster index directory")
    inspect.add_argument("--segments", action="store_true",
                         help="also list each live segment's "
                              "intervals, clusters, and bytes")
    inspect.add_argument("--shards", action="store_true",
                         help="also list per-shard record counts "
                              "and bytes (the hash skew that bounds "
                              "scatter-gather balance)")
    inspect.set_defaults(func=cmd_index_inspect)
    merge = index_sub.add_parser(
        "merge", help="compact an index's sealed segments (rewrites "
                      "small segments, drops stale path "
                      "generations)")
    merge.add_argument("dir", help="cluster index directory")
    merge.add_argument("--full", action="store_true",
                       help="merge down to a single segment "
                            "regardless of the size-tiered policy")
    merge.add_argument("--force", action="store_true",
                       help="seal and merge unsealed segments too "
                            "(recovery after a crashed run; never "
                            "use against a live writer)")
    merge.set_defaults(func=cmd_index_merge)

    query = sub.add_parser(
        "query", help="serve refinements/lookups/paths from a "
                      "persisted index")
    query_sub = query.add_subparsers(dest="query_command",
                                     required=True)
    refine = query_sub.add_parser(
        "refine", help="refinement suggestions for a keyword "
                       "(Section 1)",
        parents=[query_service])
    refine.add_argument("keyword", help="query keyword (stemmed)")
    refine.add_argument("--interval", type=int, default=None,
                        help="interval to query (default: latest)")
    refine.add_argument("--top", type=int, default=8,
                        help="suggestions to print")
    refine.set_defaults(func=cmd_query_refine)
    lookup = query_sub.add_parser(
        "lookup", help="the cluster a keyword falls into",
        parents=[query_service])
    lookup.add_argument("keyword", help="query keyword (stemmed)")
    lookup.add_argument("--interval", type=int, default=None,
                        help="interval to query (default: latest)")
    lookup.set_defaults(func=cmd_query_lookup)
    paths = query_sub.add_parser(
        "paths", help="the run's stable paths, with clusters read "
                      "from the index",
        parents=[query_service])
    paths.add_argument("--keyword", default=None,
                       help="only paths visiting a cluster that "
                            "contains this keyword")
    paths.set_defaults(func=cmd_query_paths)

    serve = sub.add_parser(
        "serve", help="expose a persisted or live index over "
                      "concurrent HTTP (JSON endpoints)")
    serve.add_argument("dir", help="cluster index directory")
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to bind")
    serve.add_argument("--port", type=int, default=8021,
                       help="port to bind (0 = ephemeral; the banner "
                            "prints the real URL)")
    serve.add_argument("--memory-budget", type=float, default=None,
                       metavar="MIB",
                       help="serving memory budget in MiB, split "
                            "across the hot-answer cache, the "
                            "cluster cache, and request admission")
    serve.add_argument("--cache-size", type=int, default=None,
                       metavar="N",
                       help="hot-keyword answer cache entries "
                            "(overrides the budget split)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       metavar="N",
                       help="admitted concurrent requests; beyond "
                            "this clients get 429 + Retry-After "
                            "(overrides the budget split)")
    serve.add_argument("--no-batching", action="store_true",
                       help="disable single-flight request batching "
                            "(each request pays its own index read)")
    serve.add_argument("--poll", type=float, default=0.5,
                       metavar="SECONDS",
                       help="live-index refresh cadence (0 disables "
                            "tailing)")
    serve.add_argument("--max-seconds", type=float, default=None,
                       metavar="S",
                       help="exit after S seconds (smoke tests; "
                            "default: serve until interrupted)")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="scatter-gather over N shard worker "
                            "processes (answers stay byte-identical "
                            "to in-process serving; 0 = serve "
                            "in-process)")
    serve.add_argument("--request-timeout", type=float, default=10.0,
                       metavar="S",
                       help="with --shards: total deadline per "
                            "scatter-gather query")
    serve.add_argument("--hedge-ms", type=float, default=250.0,
                       metavar="MS",
                       help="with --shards: straggler budget before "
                            "a partial query is re-sent to its "
                            "replica worker")
    serve.set_defaults(func=cmd_serve)

    corpus = sub.add_parser(
        "corpus", help="ingest or measure a real corpus file "
                       "(dblp/jsonl/csv adapters)")
    corpus_sub = corpus.add_subparsers(dest="corpus_command",
                                       required=True)
    ingest = corpus_sub.add_parser(
        "ingest", help="convert any corpus format to the canonical "
                       "JSONL wire format",
        parents=[_corpus_format_parent()])
    ingest.add_argument("corpus", metavar="FILE",
                        help="corpus file to ingest")
    ingest.add_argument("--output", default=None, metavar="OUT",
                        help="write JSONL to OUT (default: stdout, "
                             "report on stderr)")
    ingest.set_defaults(func=cmd_corpus_ingest)
    stats = corpus_sub.add_parser(
        "stats", help="ingest report + per-interval document "
                      "histogram for a corpus file",
        parents=[_corpus_format_parent()])
    stats.add_argument("corpus", metavar="FILE",
                       help="corpus file to measure")
    stats.set_defaults(func=cmd_corpus_stats)

    explain = sub.add_parser(
        "explain",
        help="print the planner's decision for a workload shape",
        parents=[graph_shape, workers, corpus_source])
    explain.add_argument("--problem", choices=["kl", "normalized"],
                         default="kl",
                         help="Problem 1 (kl) or Problem 2 "
                              "(normalized)")
    explain.add_argument("--memory-budget", type=float, default=None,
                         metavar="MIB",
                         help="planner memory budget in MiB")
    explain.add_argument("--index-dir", default=None, metavar="DIR",
                         help="also forecast the persistent-index "
                              "size for this shape")
    explain.add_argument("--flush-intervals", type=int, default=None,
                         metavar="N",
                         help="with --index-dir: forecast the "
                              "segment tier for a streamed index "
                              "sealed every N intervals (default: "
                              "one batch segment)")
    explain.add_argument("--serve", action="store_true",
                         help="also plan the serving tier: cache "
                              "budget split, admission bound, and a "
                              "refine hit-rate forecast from keyword "
                              "skew")
    explain.add_argument("--skew", type=float, default=1.0,
                         metavar="S",
                         help="with --serve: Zipf exponent of the "
                              "query-keyword popularity (1.0 = "
                              "classic web-query skew)")
    explain.add_argument("--shards", type=int, default=0,
                         metavar="N",
                         help="also plan distributed scatter-gather "
                              "over N shard workers: fan-out width, "
                              "per-worker working set, merge "
                              "fan-in, hedging budget")
    explain.set_defaults(func=cmd_explain)

    bench = sub.add_parser("bench-graph",
                           help="time solvers on a synthetic graph",
                           parents=[graph_shape, workers])
    bench.add_argument("--seed", type=int, default=1,
                       help="random seed for the synthetic graph")
    bench.add_argument("--solvers", default="bfs,dfs",
                       help="comma-separated registry names to time")
    bench.set_defaults(func=cmd_bench_graph)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Domain errors (unsupported solver/problem combination,
        # invalid query bounds, unusable index directories) become
        # clean CLI errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
