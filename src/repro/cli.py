"""Command-line front end: ``stable-clusters``.

Subcommands:

* ``demo`` — generate a synthetic blogosphere week with scripted
  events and print the stable clusters it discovers (the qualitative
  study of Section 5.3 in miniature).
* ``clusters`` — run Section 3 cluster generation over documents read
  from a file (one JSON object per line: ``{"interval": 0, "text":
  "..."}``) and print the per-interval keyword clusters.
* ``stable`` — full pipeline over the same input format, printing the
  top-k stable paths.
* ``bench-graph`` — generate a Section 5.2 synthetic cluster graph and
  time the BFS/DFS solvers on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.core import bfs_stable_clusters, dfs_stable_clusters
from repro.datagen import (
    BlogosphereGenerator,
    Event,
    EventSchedule,
    ZipfVocabulary,
    synthetic_cluster_graph,
)
from repro.datagen.events import drifting_event
from repro.pipeline import (
    find_stable_clusters,
    generate_interval_clusters,
    render_stable_path,
)
from repro.text.documents import IntervalCorpus


def _demo_schedule() -> EventSchedule:
    schedule = EventSchedule()
    schedule.add(Event.burst(
        "stemcell", ["stem", "cell", "amniotic", "research", "atala"],
        interval=2, posts=60))
    schedule.add(Event.persistent(
        "somalia", ["somalia", "mogadishu", "ethiopian", "islamist",
                    "kamboni"],
        start=0, duration=7, posts=45, ramp=[1, 1, 1.6, 1.6, 1.2, 1, 1]))
    schedule.add(Event.with_gaps(
        "facup", ["liverpool", "arsenal", "anfield", "goal"],
        active_intervals=[0, 3, 4], posts=50))
    schedule.extend(drifting_event(
        "iphone", shared=["apple", "iphone"],
        first_phase=["touchscreen", "keynote", "features"],
        second_phase=["cisco", "lawsuit", "trademark"],
        start=3, phase1_len=2, phase2_len=2, posts=55))
    return schedule


def cmd_demo(args: argparse.Namespace) -> int:
    """Run the synthetic-week walkthrough (Section 5.3 demo)."""
    vocab = ZipfVocabulary(args.vocabulary, seed=args.seed)
    generator = BlogosphereGenerator(
        vocab, _demo_schedule(), background_posts=args.background,
        seed=args.seed)
    corpus = generator.generate_corpus(7)
    print(f"generated {corpus.num_documents} posts over 7 days")
    result = find_stable_clusters(corpus, l=args.length, k=args.k,
                                  gap=args.gap, problem=args.problem)
    sizes = [len(c) for c in result.interval_clusters]
    print(f"clusters per day: {sizes}")
    print(f"cluster graph: {result.cluster_graph}")
    if not result.paths:
        print("no stable paths found")
        return 1
    for path in result.paths:
        print()
        print(render_stable_path(result, path))
    return 0


def _read_corpus(path: str) -> IntervalCorpus:
    corpus = IntervalCorpus()
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            corpus.add_text(doc_id=record.get("id", f"doc{line_no}"),
                            interval=int(record["interval"]),
                            text=record["text"])
    return corpus


def cmd_clusters(args: argparse.Namespace) -> int:
    """Print per-interval keyword clusters for a JSONL corpus."""
    corpus = _read_corpus(args.input)
    for interval in corpus.interval_indices:
        clusters = generate_interval_clusters(
            corpus, interval, rho_threshold=args.rho)
        print(f"interval {interval}: {len(clusters)} clusters")
        for cluster in sorted(clusters, key=len, reverse=True)[:args.top]:
            print(f"  {' '.join(sorted(cluster.keywords))}")
    return 0


def cmd_stable(args: argparse.Namespace) -> int:
    """Run the full stable-cluster pipeline on a JSONL corpus."""
    corpus = _read_corpus(args.input)
    result = find_stable_clusters(corpus, l=args.length, k=args.k,
                                  gap=args.gap, problem=args.problem,
                                  rho_threshold=args.rho,
                                  theta=args.theta)
    if not result.paths:
        print("no stable paths found")
        return 1
    for path in result.paths:
        print(render_stable_path(result, path))
        print()
    return 0


def cmd_bench_graph(args: argparse.Namespace) -> int:
    """Time the BFS and DFS solvers on a synthetic graph."""
    graph = synthetic_cluster_graph(m=args.m, n=args.n, d=args.d,
                                    g=args.gap, seed=args.seed)
    print(f"graph: {graph}")
    l = args.length if args.length else graph.num_intervals - 1
    for name, solver in (("BFS", bfs_stable_clusters),
                         ("DFS", dfs_stable_clusters)):
        started = time.perf_counter()
        paths = solver(graph, l=l, k=args.k)
        elapsed = time.perf_counter() - started
        best = f"{paths[0].weight:.3f}" if paths else "none"
        print(f"{name}: {elapsed:.3f}s  top weight: {best}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="stable-clusters",
        description="Stable keyword clusters in temporal text "
                    "(Bansal et al., VLDB 2007 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="synthetic week walkthrough")
    demo.add_argument("--vocabulary", type=int, default=3000)
    demo.add_argument("--background", type=int, default=600)
    demo.add_argument("--seed", type=int, default=2007)
    demo.add_argument("--length", type=int, default=3)
    demo.add_argument("-k", type=int, default=5)
    demo.add_argument("--gap", type=int, default=1)
    demo.add_argument("--problem", choices=["kl", "normalized"],
                      default="kl")
    demo.set_defaults(func=cmd_demo)

    clusters = sub.add_parser("clusters",
                              help="per-interval keyword clusters")
    clusters.add_argument("input", help="JSONL file of posts")
    clusters.add_argument("--rho", type=float, default=0.2)
    clusters.add_argument("--top", type=int, default=10)
    clusters.set_defaults(func=cmd_clusters)

    stable = sub.add_parser("stable", help="full stable-cluster search")
    stable.add_argument("input", help="JSONL file of posts")
    stable.add_argument("--length", type=int, default=3)
    stable.add_argument("-k", type=int, default=5)
    stable.add_argument("--gap", type=int, default=0)
    stable.add_argument("--rho", type=float, default=0.2)
    stable.add_argument("--theta", type=float, default=0.1)
    stable.add_argument("--problem", choices=["kl", "normalized"],
                        default="kl")
    stable.set_defaults(func=cmd_stable)

    bench = sub.add_parser("bench-graph",
                           help="time BFS/DFS on a synthetic graph")
    bench.add_argument("-m", type=int, default=9)
    bench.add_argument("-n", type=int, default=400)
    bench.add_argument("-d", type=int, default=5)
    bench.add_argument("--gap", type=int, default=0)
    bench.add_argument("--length", type=int, default=0,
                       help="0 means full paths (m - 1)")
    bench.add_argument("-k", type=int, default=5)
    bench.add_argument("--seed", type=int, default=1)
    bench.set_defaults(func=cmd_bench_graph)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
