"""Unit, integration and property tests for co-occurrence counting."""

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cooccur import (
    KeywordGraph,
    aggregate_sorted_pairs,
    count_pairs_external,
    count_pairs_in_memory,
    emit_pairs,
    write_pair_file,
)
from repro.cooccur.pairs import read_pair_file
from repro.cooccur.keyword_graph import PruneReport

DOCS = [
    frozenset({"saddam", "hussein", "trial"}),
    frozenset({"saddam", "hussein"}),
    frozenset({"soccer", "beckham"}),
    frozenset({"saddam", "trial"}),
]


class TestEmitPairs:
    def test_self_pairs_count_unary(self):
        pairs = list(emit_pairs([frozenset({"b", "a"})]))
        assert ("a", "a") in pairs
        assert ("b", "b") in pairs

    def test_cross_pairs_canonical_order(self):
        pairs = list(emit_pairs([frozenset({"b", "a"})]))
        assert ("a", "b") in pairs
        assert ("b", "a") not in pairs

    def test_pair_multiplicity_equals_document_count(self):
        pairs = list(emit_pairs(DOCS))
        assert pairs.count(("hussein", "saddam")) == 2
        assert pairs.count(("saddam", "saddam")) == 3

    def test_empty_document_emits_nothing(self):
        assert list(emit_pairs([frozenset()])) == []

    def test_singleton_document_emits_only_self_pair(self):
        assert list(emit_pairs([frozenset({"x"})])) == [("x", "x")]


class TestPairFile:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "pairs.tsv")
        count = write_pair_file(DOCS, path)
        pairs = list(read_pair_file(path))
        assert len(pairs) == count
        assert sorted(pairs) == sorted(emit_pairs(DOCS))

    def test_roundtrip_across_write_buffer_boundary(self, tmp_path):
        # One 140-keyword document emits 140 + C(140, 2) = 9870 pairs,
        # past the writelines chunk size, so both the flushed chunks
        # and the final partial chunk are exercised.
        big = [frozenset(f"kw{i:03d}" for i in range(140))]
        path = str(tmp_path / "big-pairs.tsv")
        count = write_pair_file(big, path)
        assert count == 140 + (140 * 139) // 2
        assert list(read_pair_file(path)) == list(emit_pairs(big))


class TestAggregation:
    def test_sorted_aggregation(self):
        pairs = sorted(emit_pairs(DOCS))
        triplets = {(u, v): c for u, v, c in aggregate_sorted_pairs(pairs)}
        assert triplets[("hussein", "saddam")] == 2
        assert triplets[("saddam", "trial")] == 2
        assert triplets[("saddam", "saddam")] == 3
        assert triplets[("beckham", "soccer")] == 1

    def test_external_matches_in_memory(self, tmp_path):
        external = {(u, v): c for u, v, c in count_pairs_external(
            DOCS, max_records=5, directory=str(tmp_path))}
        in_memory = count_pairs_in_memory(DOCS)
        assert external == in_memory

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.frozensets(st.sampled_from("abcdefgh"), max_size=6),
        max_size=12))
    def test_external_equals_memory_property(self, docs):
        with tempfile.TemporaryDirectory() as tmp:
            external = {(u, v): c for u, v, c in count_pairs_external(
                docs, max_records=3, directory=tmp)}
        assert external == count_pairs_in_memory(docs)


class TestKeywordGraph:
    def test_from_keyword_sets_counts(self):
        graph = KeywordGraph.from_keyword_sets(DOCS)
        assert graph.num_documents == 4
        assert graph.count("saddam") == 3
        assert graph.count("beckham") == 1
        assert graph.pair_count("saddam", "hussein") == 2
        assert graph.pair_count("hussein", "saddam") == 2
        assert graph.pair_count("saddam", "saddam") == 3
        assert graph.pair_count("saddam", "beckham") == 0

    def test_external_build_matches_memory_build(self, tmp_path):
        mem = KeywordGraph.from_keyword_sets(DOCS)
        ext = KeywordGraph.from_keyword_sets(
            DOCS, external=True, directory=str(tmp_path), max_records=4)
        assert ext.num_documents == mem.num_documents
        assert sorted(ext.edges()) == sorted(mem.edges())
        assert {k: ext.count(k) for k in ext.keywords()} == \
               {k: mem.count(k) for k in mem.keywords()}

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            KeywordGraph.from_keyword_sets([])

    def test_bad_triplet_count_rejected(self):
        with pytest.raises(ValueError):
            KeywordGraph.from_triplets([("a", "b", 0)], num_documents=5)

    def test_num_keywords_and_edges(self):
        graph = KeywordGraph.from_keyword_sets(DOCS)
        assert graph.num_keywords == 5
        # Edges: saddam-hussein, saddam-trial, hussein-trial,
        # soccer-beckham.
        assert graph.num_edges == 4

    def test_statistics_accessible_per_edge(self):
        graph = KeywordGraph.from_keyword_sets(DOCS)
        assert graph.chi_square("saddam", "hussein") > 0
        assert graph.correlation("saddam", "hussein") > 0
        assert graph.correlation("saddam", "beckham") < 0


class TestPrune:
    def test_correlated_edges_survive(self):
        # 10 documents where {a, b} always co-occur and c floats alone.
        docs = [frozenset({"a", "b"}) for _ in range(5)]
        docs += [frozenset({"c"}) for _ in range(5)]
        graph = KeywordGraph.from_keyword_sets(docs)
        pruned = graph.prune()
        assert pruned.has_edge("a", "b")
        assert pruned.weight("a", "b") == pytest.approx(1.0)

    def test_incidental_cooccurrence_pruned(self):
        # a and b appear in half the docs each, together only ~expected.
        docs = []
        for i in range(40):
            kws = set()
            if i % 2 == 0:
                kws.add("a")
            if i % 4 < 2:
                kws.add("b")
            kws.add(f"filler{i}")
            docs.append(frozenset(kws))
        graph = KeywordGraph.from_keyword_sets(docs)
        pruned = graph.prune()
        assert not pruned.has_edge("a", "b")

    def test_report_stages_monotone(self):
        docs = [frozenset({"a", "b", "c"}) for _ in range(3)]
        docs += [frozenset({"a", "x"}), frozenset({"b", "y"}),
                 frozenset({"c"}), frozenset({"x", "y"})]
        graph = KeywordGraph.from_keyword_sets(docs)
        report = PruneReport()
        graph.prune(report=report)
        assert report.total_edges >= report.after_chi2 >= report.after_rho

    def test_higher_rho_prunes_more(self):
        docs = []
        for i in range(60):
            kws = {f"bg{i % 7}"}
            if i % 3 == 0:
                kws |= {"u", "v"}
            if i % 3 == 1:
                kws.add("u")
            docs.append(frozenset(kws))
        graph = KeywordGraph.from_keyword_sets(docs)
        loose = graph.prune(rho_threshold=0.1)
        tight = graph.prune(rho_threshold=0.9)
        assert tight.num_edges <= loose.num_edges

    def test_pruned_weights_are_rho(self):
        docs = [frozenset({"a", "b"})] * 4 + [frozenset({"a"})] * 2 \
            + [frozenset({"z"})] * 4
        graph = KeywordGraph.from_keyword_sets(docs)
        pruned = graph.prune(rho_threshold=0.2)
        if pruned.has_edge("a", "b"):
            assert pruned.weight("a", "b") == pytest.approx(
                graph.correlation("a", "b"))
