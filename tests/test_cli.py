"""Tests for the command-line front end."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.problem == "kl"
        assert args.k == 5

    def test_bench_graph_args(self):
        args = build_parser().parse_args(
            ["bench-graph", "-m", "5", "-n", "50", "--gap", "1"])
        assert args.m == 5
        assert args.n == 50
        assert args.gap == 1

    def test_stable_solver_defaults_to_auto(self):
        args = build_parser().parse_args(["stable", "posts.jsonl"])
        assert args.solver == "auto"
        assert args.memory_budget is None
        assert args.explain is False

    def test_solver_choices_cover_registry(self):
        from repro.engine import solver_names
        args = build_parser().parse_args(
            ["stable", "posts.jsonl", "--solver", "dfs"])
        assert args.solver == "dfs"
        for name in solver_names():
            build_parser().parse_args(
                ["stable", "posts.jsonl", "--solver", name])

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stable", "posts.jsonl", "--solver", "quantum"])

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream", "posts.jsonl"])
        assert args.solver == "auto"
        assert args.backend == "auto"
        assert args.follow is False
        assert args.memory_budget is None

    def test_stream_rejects_batch_only_solver(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stream", "posts.jsonl", "--solver", "dfs"])


class TestCommands:
    def _write_posts(self, tmp_path):
        """A tiny corpus with one obvious event on both days."""
        lines = []
        doc = 0
        for interval in range(2):
            for i in range(30):
                lines.append({"interval": interval,
                              "text": "beckham galaxy madrid transfer",
                              "id": f"e{doc}"})
                doc += 1
            for i in range(10):
                lines.append({"interval": interval,
                              "text": f"filler{i} words{i} noise{doc}",
                              "id": f"b{doc}"})
                doc += 1
        path = tmp_path / "posts.jsonl"
        path.write_text("\n".join(json.dumps(x) for x in lines))
        return str(path)

    def test_clusters_command(self, tmp_path, capsys):
        exit_code = main(["clusters", self._write_posts(tmp_path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "interval 0" in out
        assert "beckham" in out

    def test_stable_command(self, tmp_path, capsys):
        exit_code = main(["stable", self._write_posts(tmp_path),
                          "--length", "1", "-k", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "stable path" in out
        assert "beckham" in out

    def test_stable_command_no_paths(self, tmp_path, capsys):
        # Only one interval: no length-3 paths exist.
        lines = [{"interval": 0, "text": "solitary words here"}]
        path = tmp_path / "single.jsonl"
        path.write_text("\n".join(json.dumps(x) for x in lines))
        exit_code = main(["stable", str(path), "--length", "3"])
        assert exit_code == 1
        assert "no stable paths" in capsys.readouterr().out

    def test_bench_graph_command(self, capsys):
        exit_code = main(["bench-graph", "-m", "4", "-n", "20",
                          "-d", "2", "-k", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "BFS" in out and "DFS" in out

    def test_bench_graph_reports_unified_stats(self, capsys):
        exit_code = main(["bench-graph", "-m", "4", "-n", "15",
                          "-d", "2", "-k", "2",
                          "--solvers", "bfs,dfs,ta"])
        out = capsys.readouterr().out
        assert exit_code == 0
        # Every timed solver prints its SolverStats counters.
        assert out.count("stats:") == 3
        assert "nodes_processed=" in out   # BFS counters
        assert "node_reads=" in out        # DFS counters
        assert "sorted_accesses=" in out   # TA counters

    def test_bench_graph_skips_unsupported_solver(self, capsys):
        # TA cannot answer a partial-length query; it must be
        # skipped with a reason, not crash the benchmark.
        exit_code = main(["bench-graph", "-m", "4", "-n", "15",
                          "-d", "2", "-k", "2", "--length", "2",
                          "--solvers", "ta,bfs"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "skipped" in out
        assert "BFS" in out

    def test_explain_command(self, capsys):
        exit_code = main(["explain", "-m", "9", "-n", "400", "-d", "5",
                          "--memory-budget", "1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "execution plan" in out
        assert "solver:" in out
        assert "estimated" in out
        assert "1.0MiB" in out

    def test_explain_flips_solver_with_budget(self, capsys):
        main(["explain", "-m", "9", "-n", "400", "-d", "5",
              "--length", "4"])
        unbounded = capsys.readouterr().out
        main(["explain", "-m", "9", "-n", "400", "-d", "5",
              "--length", "4", "--memory-budget", "0.001"])
        starved = capsys.readouterr().out
        assert "solver:   bfs" in unbounded
        assert "solver:   dfs" in starved

    def test_stable_command_explain_flag(self, tmp_path, capsys):
        exit_code = main(["stable", self._write_posts(tmp_path),
                          "--length", "1", "-k", "2", "--explain"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "execution plan" in out
        assert "stable path" in out

    def test_stable_command_forced_solver(self, tmp_path, capsys):
        posts = self._write_posts(tmp_path)
        outputs = []
        for solver in ("auto", "bfs", "dfs", "bruteforce"):
            exit_code = main(["stable", posts, "--length", "1",
                              "-k", "2", "--solver", solver])
            assert exit_code == 0
            outputs.append(capsys.readouterr().out)
        assert len(set(outputs)) == 1  # identical answers

    def _write_stream_posts(self, tmp_path, m=4):
        lines = []
        doc = 0
        for interval in range(m):
            for i in range(25):
                lines.append({"interval": interval,
                              "text": "beckham galaxy madrid transfer",
                              "id": f"e{doc}"})
                doc += 1
            for i in range(8):
                lines.append({"interval": interval,
                              "text": f"filler{i} words{i} noise{doc}",
                              "id": f"b{doc}"})
                doc += 1
        path = tmp_path / "stream.jsonl"
        path.write_text("\n".join(json.dumps(x) for x in lines))
        return str(path)

    def test_stream_command(self, tmp_path, capsys):
        exit_code = main(["stream", self._write_stream_posts(tmp_path),
                          "--length", "2", "-k", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "stable path" in out
        assert "beckham" in out

    def test_stream_follow_prints_per_interval(self, tmp_path, capsys):
        exit_code = main(["stream", self._write_stream_posts(tmp_path),
                          "--length", "2", "-k", "2", "--follow",
                          "--explain"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "execution plan" in out
        assert "solver:   bfs" in out
        assert "interval 0" in out and "interval 3" in out
        assert "docs ->" in out

    def test_stream_matches_batch_results(self, tmp_path, capsys):
        """The streamed top-k equals the batch pipeline's over the
        same file (the Section 4.6 claim, end to end via the CLI)."""
        posts = self._write_stream_posts(tmp_path)
        assert main(["stable", posts, "--length", "2", "-k", "2"]) == 0
        batch = capsys.readouterr().out
        assert main(["stream", posts, "--length", "2", "-k", "2"]) == 0
        streamed = capsys.readouterr().out
        batch_weights = [line for line in batch.splitlines()
                         if line.startswith("stable path")]
        stream_weights = [line for line in streamed.splitlines()
                          if line.startswith("stable path")]
        assert batch_weights == stream_weights

    def test_stream_normalized_with_disk_backend(self, tmp_path,
                                                 capsys):
        state_dir = tmp_path / "state"
        exit_code = main(["stream", self._write_stream_posts(tmp_path),
                          "--length", "2", "-k", "2",
                          "--problem", "normalized",
                          "--backend", "disk",
                          "--state-dir", str(state_dir)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "stable path" in out
        assert (state_dir / "state.bin").exists()

    def test_stream_solver_problem_mismatch(self, tmp_path, capsys):
        exit_code = main(["stream", self._write_stream_posts(tmp_path),
                          "--solver", "normalized"])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "cannot stream" in err

    def test_stream_empty_input(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        exit_code = main(["stream", str(path)])
        assert exit_code == 2
        assert "no documents" in capsys.readouterr().err

    def test_demo_command_small(self, capsys):
        exit_code = main(["demo", "--vocabulary", "800",
                          "--background", "300", "--length", "2",
                          "-k", "3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "stable path" in out
