"""Tests for the command-line front end."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.problem == "kl"
        assert args.k == 5

    def test_bench_graph_args(self):
        args = build_parser().parse_args(
            ["bench-graph", "-m", "5", "-n", "50", "--gap", "1"])
        assert args.m == 5
        assert args.n == 50
        assert args.gap == 1


class TestCommands:
    def _write_posts(self, tmp_path):
        """A tiny corpus with one obvious event on both days."""
        lines = []
        doc = 0
        for interval in range(2):
            for i in range(30):
                lines.append({"interval": interval,
                              "text": "beckham galaxy madrid transfer",
                              "id": f"e{doc}"})
                doc += 1
            for i in range(10):
                lines.append({"interval": interval,
                              "text": f"filler{i} words{i} noise{doc}",
                              "id": f"b{doc}"})
                doc += 1
        path = tmp_path / "posts.jsonl"
        path.write_text("\n".join(json.dumps(x) for x in lines))
        return str(path)

    def test_clusters_command(self, tmp_path, capsys):
        exit_code = main(["clusters", self._write_posts(tmp_path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "interval 0" in out
        assert "beckham" in out

    def test_stable_command(self, tmp_path, capsys):
        exit_code = main(["stable", self._write_posts(tmp_path),
                          "--length", "1", "-k", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "stable path" in out
        assert "beckham" in out

    def test_stable_command_no_paths(self, tmp_path, capsys):
        # Only one interval: no length-3 paths exist.
        lines = [{"interval": 0, "text": "solitary words here"}]
        path = tmp_path / "single.jsonl"
        path.write_text("\n".join(json.dumps(x) for x in lines))
        exit_code = main(["stable", str(path), "--length", "3"])
        assert exit_code == 1
        assert "no stable paths" in capsys.readouterr().out

    def test_bench_graph_command(self, capsys):
        exit_code = main(["bench-graph", "-m", "4", "-n", "20",
                          "-d", "2", "-k", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "BFS" in out and "DFS" in out

    def test_demo_command_small(self, capsys):
        exit_code = main(["demo", "--vocabulary", "800",
                          "--background", "300", "--length", "2",
                          "-k", "3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "stable path" in out
