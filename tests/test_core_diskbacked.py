"""Secondary-storage behaviour of the stable-cluster algorithms.

The paper's central systems claim is that BFS runs in one sequential
pass over the intervals while DFS trades I/O for memory: one random
read per child consideration, one random write per pop.  These tests
pin the algorithms' disk access patterns using the accounted DiskDict.
"""

from repro.core import (
    DFSStats,
    bfs_stable_clusters,
    dfs_stable_clusters,
)
from repro.core.dfs import DFSEngine
from repro.datagen import synthetic_cluster_graph
from repro.storage import DiskDict, IOStats
from tests.test_core_cluster_graph import paper_example_graph


class TestDFSDiskStore:
    def test_results_identical_with_disk_store(self, tmp_path):
        graph = synthetic_cluster_graph(m=5, n=6, d=2, g=1, seed=21)
        in_memory = dfs_stable_clusters(graph, l=3, k=3)
        stats = IOStats()
        with DiskDict(str(tmp_path / "nodes.bin"), stats=stats) as store:
            on_disk = dfs_stable_clusters(graph, l=3, k=3, store=store)
        assert [(p.weight, p.nodes) for p in on_disk] == \
            [(p.weight, p.nodes) for p in in_memory]
        assert stats.reads > 0
        assert stats.writes > 0

    def test_read_per_child_write_per_pop(self, tmp_path):
        graph = paper_example_graph()
        dfs_stats = DFSStats()
        io_stats = IOStats()
        with DiskDict(str(tmp_path / "nodes.bin"),
                      stats=io_stats) as store:
            dfs_stable_clusters(graph, l=2, k=1, store=store,
                                stats=dfs_stats)
        # Every child consideration reads the node annotation; every
        # pop writes it back (the paper's cost model for Algorithm 3).
        assert io_stats.reads <= dfs_stats.node_reads
        assert io_stats.writes == dfs_stats.pops

    def test_unpruned_dfs_io_bounded_by_edges(self, tmp_path):
        graph = synthetic_cluster_graph(m=4, n=5, d=2, g=0, seed=3)
        stats = DFSStats()
        dfs_stable_clusters(graph, l=3, k=2, prune=False, stats=stats)
        # Without pruning: reads bounded by edges + source fan-out,
        # writes bounded by node count (each node popped once).
        source_children = graph.interval_size(0)
        assert stats.node_reads <= graph.num_edges + source_children
        assert stats.pops <= graph.num_nodes

    def test_pruning_never_increases_global_heap_quality(self):
        graph = synthetic_cluster_graph(m=6, n=8, d=3, g=1, seed=9)
        pruned = dfs_stable_clusters(graph, l=4, k=3, prune=True)
        unpruned = dfs_stable_clusters(graph, l=4, k=3, prune=False)
        assert [p.nodes for p in pruned] == [p.nodes for p in unpruned]

    def test_stack_depth_bounded_by_m(self):
        """The paper: 'the size of the stack is at most m entries'."""
        graph = synthetic_cluster_graph(m=7, n=4, d=2, g=1, seed=4)

        max_depth = 0
        original_consider = DFSEngine._consider_child

        def tracking_consider(self, stack, frame, child, weight):
            nonlocal max_depth
            max_depth = max(max_depth, len(stack))
            return original_consider(self, stack, frame, child, weight)

        DFSEngine._consider_child = tracking_consider
        try:
            dfs_stable_clusters(graph, l=6, k=2)
        finally:
            DFSEngine._consider_child = original_consider
        # Stack = source frame + at most one frame per interval.
        assert max_depth <= graph.num_intervals + 1


class TestBFSDiskStore:
    def test_heaps_persisted_per_node(self, tmp_path):
        graph = paper_example_graph()
        stats = IOStats()
        with DiskDict(str(tmp_path / "heaps.bin"), stats=stats) as store:
            bfs_stable_clusters(graph, l=2, k=2, store=store)
            # Algorithm 2 line 17: every node's heaps are saved once.
            assert len(store) == graph.num_nodes
            assert stats.writes == graph.num_nodes
            # The persisted heaps are the per-length top-k path lists.
            c22_heaps = store[(1, 1)]
            assert set(c22_heaps) == {1}
            assert len(c22_heaps[1]) == 2

    def test_bfs_is_single_pass(self, tmp_path):
        """BFS performs no random reads at all: the window keeps the
        previous g+1 intervals in memory."""
        graph = synthetic_cluster_graph(m=6, n=5, d=2, g=1, seed=2)
        stats = IOStats()
        with DiskDict(str(tmp_path / "heaps.bin"), stats=stats) as store:
            bfs_stable_clusters(graph, l=4, k=3, store=store)
        assert stats.reads == 0
        assert stats.writes == graph.num_nodes
